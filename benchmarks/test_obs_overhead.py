"""Micro-benchmark: cost of the always-present instrumentation.

The tracing instrumentation stays in the hot paths permanently -- every
``evaluate_many``, engine round, and task execution enters a
``get_tracer().span(...)`` context even when no tracer is installed.
This bench certifies the no-op path is cheap enough to leave on: it
runs one clapton search at the engine working point (the span-heaviest
configuration per second of work), counts the spans such a run opens,
measures the per-span cost of the null path directly, and asserts the
implied overhead is under 2% of the uninstrumented run's wall time.

Emits one BENCH JSON line/file like the other micro-benchmarks (CI
uploads it).  The JSON lands at ``CLAPTON_BENCH_JSON`` (default
``benchmarks/bench_results/obs_overhead.json``).
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_banner, run_once

from repro.backends import ALL_BACKENDS
from repro.experiments import Experiment, bench_engine
from repro.hamiltonians import get_benchmark
from repro.obs import KERNEL, RecordingTracer, get_tracer, use_tracer

#: Hard acceptance bar: instrumentation must cost < 2% with no tracer.
MAX_OVERHEAD_FRACTION = 0.02

#: Iterations of the null-span timing loop (amortizes timer resolution).
NULL_LOOP = 200_000


def _working_point_run():
    """One clapton search at the bench engine working point."""
    bench = get_benchmark("ising_J1.00", 4)
    experiment = Experiment(bench.hamiltonian(),
                            backend=ALL_BACKENDS["nairobi"](),
                            name=bench.name)
    config = replace(bench_engine(), seed=0)
    return experiment.run(methods=("clapton",), config=config, seed=0)


def _null_span_seconds() -> float:
    """Per-entry cost of ``with get_tracer().span(...)`` on the no-op."""
    tracer = get_tracer()
    assert not tracer.enabled, "bench must run with the default tracer"
    start = time.perf_counter()
    for i in range(NULL_LOOP):
        with tracer.span("bench.noop", batch=i, loss="clapton"):
            pass
    return (time.perf_counter() - start) / NULL_LOOP


def _emit_bench_json(payload: dict) -> None:
    path = Path(os.environ.get(
        "CLAPTON_BENCH_JSON",
        Path(__file__).parent / "bench_results" / "obs_overhead.json"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"BENCH {json.dumps(payload)}")


def test_noop_tracing_overhead_under_budget(benchmark):
    # wall time of the instrumented run with the *null* tracer -- this
    # is what users pay by default, instrumentation included (the
    # always-on kernel counters are part of this measured path)
    kernel_before = KERNEL.snapshot()
    seconds_plain = run_once(
        benchmark,
        lambda: (lambda t0: (_working_point_run(),
                             time.perf_counter() - t0)[1])(
            time.perf_counter()))
    kernel_delta = KERNEL.delta(kernel_before)
    # the working point runs the packed hot path, so the kernel
    # counters must have advanced inside the budgeted wall time
    assert kernel_delta["words"] > 0 and kernel_delta["rows"] > 0, \
        kernel_delta

    # span volume of the identical run (recording tracer counts them)
    with use_tracer(RecordingTracer()) as tracer:
        _working_point_run()
    num_spans = len(tracer.spans)

    per_span = _null_span_seconds()
    overhead = num_spans * per_span / seconds_plain

    print_banner("Observability no-op overhead | clapton working point")
    print(f"run wall time (null tracer) : {seconds_plain:.3f}s")
    print(f"spans per run               : {num_spans}")
    print(f"null span cost              : {per_span * 1e9:.0f} ns")
    print(f"kernel words per run        : {kernel_delta['words']}")
    print(f"implied overhead            : {overhead * 100:.4f}% "
          f"(budget {MAX_OVERHEAD_FRACTION * 100:.0f}%)")

    _emit_bench_json({
        "bench": "obs_overhead",
        "seconds_plain": round(seconds_plain, 6),
        "spans_per_run": num_spans,
        "null_span_ns": round(per_span * 1e9, 1),
        "kernel_words": kernel_delta["words"],
        "kernel_rows": kernel_delta["rows"],
        "overhead_fraction": round(overhead, 8),
        "budget_fraction": MAX_OVERHEAD_FRACTION,
    })

    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"null-tracer instrumentation costs {overhead * 100:.2f}% of the "
        f"working-point run ({num_spans} spans x {per_span * 1e9:.0f} ns "
        f"over {seconds_plain:.2f}s); the no-op path has become too "
        f"heavy")
