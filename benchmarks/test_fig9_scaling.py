"""Figure 9: classical-compute scaling of the Clapton optimization.

The paper measures total optimization wall-time and per-round time tau(N)
for the Ising model (J=0.25) at N = 11..40, finding tau(N) quadratic for
Clapton (noise locations x circuit volume) and linear for CAFQA (noiseless,
one evaluation per Pauli expectation), with total time growing faster from
the increasing round count.

Reductions: N in {8, 16, 32, 48, 64}, one seed per size, a small engine;
the asserted shape claims are (a) Clapton's per-round time grows
superlinearly and does not fall below CAFQA's (the noise walk is strictly
extra work; with the packed kernel the two can tie at small N where
engine overhead dominates), and (b) the quadratic fit of tau(N) explains
Clapton's measurements better than a linear one, whereas CAFQA's tau(N)
is consistent with linear growth.
"""

import numpy as np
from conftest import print_banner, run_once

from repro.core import VQEProblem, cafqa, clapton
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig

SIZES = [8, 16, 32, 48, 64]  # paper: 11..40; extended past it to probe
# the packed-layout regime (the word-packed conjugation kernel keeps the
# per-round cost quadratic rather than cubic out to 64+ qubits)
ENGINE = EngineConfig(num_instances=2, generations_per_round=10, top_k=5,
                      population_size=20, retry_rounds=1, seed=0)


def _run_method(driver, num_qubits):
    hamiltonian = ising_model(num_qubits, 0.25)
    noise = NoiseModel.uniform(num_qubits, depol_1q=1e-3, depol_2q=1e-2,
                               readout=2e-2, t1=100e-6)
    problem = VQEProblem.logical(hamiltonian, noise_model=noise)
    result = driver(problem, config=ENGINE)
    return (result.engine.total_seconds, result.engine.seconds_per_round,
            result.engine.num_rounds)


def _fit(ns, taus, degree):
    coeffs = np.polyfit(ns, taus, degree)
    residual = np.sum((np.polyval(coeffs, ns) - taus) ** 2)
    return coeffs, residual


def test_fig9_scaling(benchmark):
    def experiment():
        measurements = {"clapton": [], "cafqa": []}
        for n in SIZES:
            measurements["clapton"].append(_run_method(clapton, n))
            measurements["cafqa"].append(_run_method(cafqa, n))
        return measurements

    data = run_once(benchmark, experiment)

    print_banner("Figure 9 | Ising J=0.25 | optimization time scaling")
    print(f"{'N':>4} {'clapton total[s]':>17} {'tau[s]':>8} {'rounds':>7} "
          f"{'cafqa total[s]':>15} {'tau[s]':>8}")
    for i, n in enumerate(SIZES):
        ct, ctau, crounds = data["clapton"][i]
        bt, btau, _ = data["cafqa"][i]
        print(f"{n:>4} {ct:>17.2f} {ctau:>8.3f} {crounds:>7} "
              f"{bt:>15.2f} {btau:>8.3f}")

    ns = np.array(SIZES, dtype=float)
    clapton_tau = np.array([m[1] for m in data["clapton"]])
    cafqa_tau = np.array([m[1] for m in data["cafqa"]])

    quad, quad_res = _fit(ns, clapton_tau, 2)
    lin, lin_res = _fit(ns, clapton_tau, 1)
    print(f"\nClapton tau(N) quadratic fit: "
          f"{quad[0]:.4g} N^2 + {quad[1]:.4g} N + {quad[2]:.4g} "
          f"(residual {quad_res:.3g} vs linear {lin_res:.3g})")
    cafqa_lin, _ = _fit(ns, cafqa_tau, 1)
    print(f"CAFQA tau(N) linear fit: {cafqa_lin[0]:.4g} N + {cafqa_lin[1]:.4g}")
    print("(paper fits: Clapton 0.65 N^2 + 22.15 N - 19.38; "
          "CAFQA 2.7 N + 9.34 -- absolute scales differ, shapes compared)")

    # shape (a): Clapton rounds cost at least as much as CAFQA rounds --
    # the noise walk is strictly extra work.  With the packed conjugation
    # kernel both methods' rounds are engine-overhead-bound at the small
    # sizes and can tie within timer noise, so near-ties pass there; the
    # separation must be real at the largest size, where the walk's
    # noise-locations x circuit-volume cost dominates.
    assert (clapton_tau >= cafqa_tau * 0.9).all()
    assert clapton_tau[-1] > cafqa_tau[-1]
    # shape (b): Clapton per-round time grows superlinearly: the ratio of
    # successive tau increments increases with N
    increments = np.diff(clapton_tau)
    assert increments[-1] > increments[0] * 0.9
    # quadratic fit strictly better for Clapton
    assert quad_res <= lin_res + 1e-12
