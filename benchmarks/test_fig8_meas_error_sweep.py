"""Figure 8: relative improvement vs measurement-error strength.

Sweeps the readout misassignment probability with gate errors fixed, the
isolated-measurement-noise counterpart of Fig. 7 (Sec. 6.2).  The paper's
observations asserted here: the Ising model is comparatively robust to
readout error (modest eta) while chemistry still profits significantly.
"""

from conftest import print_banner, run_once

from repro.experiments import sweep_relative_improvement
from repro.hamiltonians import get_benchmark
from repro.noise import NoiseModel

MEAS_ERRORS = [5e-3, 3e-2, 9.5e-2]
GATE_1Q = 5e-4
T1 = 150e-6


def _sweep(hamiltonian, config):
    models = [NoiseModel.uniform(hamiltonian.num_qubits, depol_1q=GATE_1Q,
                                 depol_2q=10 * GATE_1Q, readout=p, t1=T1)
              for p in MEAS_ERRORS]
    return sweep_relative_improvement(hamiltonian, models, config=config)


def test_fig8_ising(benchmark, bench_config):
    hamiltonian = get_benchmark("ising_J1.00", 6).hamiltonian()
    etas = run_once(benchmark, lambda: _sweep(hamiltonian, bench_config))
    print_banner("Figure 8(a) | Ising J=1.00, 6q | eta vs nCAFQA over meas error")
    for p, eta in zip(MEAS_ERRORS, etas):
        print(f"p = {p:.1e}:  eta = {eta:.2f}")
    assert min(etas) > 0.7


def test_fig8_lih_chemistry(benchmark, bench_config):
    hamiltonian = get_benchmark("LiH_l4.5", 10).hamiltonian()
    etas = run_once(benchmark, lambda: _sweep(hamiltonian, bench_config))
    print_banner("Figure 8(d) | LiH l=4.5, 10q | eta vs nCAFQA over meas error")
    for p, eta in zip(MEAS_ERRORS, etas):
        print(f"p = {p:.1e}:  eta = {eta:.2f}")
    assert max(etas) >= 1.0
