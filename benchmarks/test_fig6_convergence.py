"""Figure 6: VQE convergence from each initialization.

Regenerates the convergence panels: XXZ at J=0.25 (stabilizer states
approximate the ground state well) and J=1.00 (they do not), SPSA traces
from all three initializations on the toronto model, and -- mirroring the
hanoi stars -- initial/final energies on the hanoi hardware twin.

Reductions: 6 qubits and 50 SPSA iterations (paper: 10 qubits, hundreds);
shape claims asserted: Clapton starts at least as low as the baselines and
stays competitive through convergence.
"""

from conftest import print_banner, run_once

from repro.backends import FakeHanoi, FakeToronto
from repro.core import VQEProblem
from repro.experiments import convergence_traces
from repro.hamiltonians import ground_state_energy, xxz_model

NUM_QUBITS = 6
VQE_ITERATIONS = 50


def _panel(benchmark, bench_config, coupling, backend, hardware=None):
    hamiltonian = xxz_model(NUM_QUBITS, coupling)
    problem = VQEProblem.from_backend(hamiltonian, backend,
                                      hardware=hardware)
    traces = run_once(benchmark, lambda: convergence_traces(
        hamiltonian, problem, bench_config, VQE_ITERATIONS))
    e0 = ground_state_energy(hamiltonian)

    print_banner(f"Figure 6 | XXZ J={coupling:.2f}, {NUM_QUBITS}q, "
                 f"{backend.name} | E0={e0:.4f}")
    print(f"{'method':<9} {'initial':>9} {'final':>9}"
          + ("" if hardware is None else f" {'hw init':>9} {'hw final':>9}"))
    for method, trace in traces.items():
        line = f"{method:<9} {trace.initial_energy:>9.4f} {trace.final_energy:>9.4f}"
        if hardware is not None:
            line += f" {trace.hardware_initial:>9.4f} {trace.hardware_final:>9.4f}"
        print(line)
    print("\nconvergence traces (every 10th SPSA loss estimate):")
    for method, trace in traces.items():
        samples = " ".join(f"{v:7.3f}" for v in trace.history[::10])
        print(f"  {method:<8} {samples}")
    return traces


def test_fig6_xxz_j025_toronto(benchmark, bench_config):
    traces = _panel(benchmark, bench_config, 0.25, FakeToronto())
    # Clapton's starting point is at least as good as CAFQA's
    assert (traces["clapton"].initial_energy
            <= traces["cafqa"].initial_energy + 1e-6)


def test_fig6_xxz_j100_toronto(benchmark, bench_config):
    traces = _panel(benchmark, bench_config, 1.00, FakeToronto())
    assert (traces["clapton"].initial_energy
            <= traces["cafqa"].initial_energy + 1e-6)


def test_fig6_xxz_j100_hanoi_hardware(benchmark, bench_config):
    backend = FakeHanoi()
    traces = _panel(benchmark, bench_config, 1.00, backend,
                    hardware=backend.hardware_twin(seed=2024))
    # the paper's observation: hardware evaluation may deviate from the
    # model (it even reverses final-point orderings there); assert only
    # that hardware numbers exist and are finite
    for trace in traces.values():
        assert trace.hardware_initial is not None
        assert trace.hardware_final is not None
