"""Figure 5: initialization quality across benchmarks and backends.

Regenerates the paper's main result table: for each benchmark and backend,
the three methods' initial points under noise-free / Clifford-model /
device-model evaluation, the post-VQE final points, and the relative
improvements eta with their geometric means.

Reductions vs the paper (EXPERIMENTS.md records the full mapping):
* physics models at 5-6 qubits instead of 7/10 and one chemistry benchmark
  (LiH) instead of six -- wall-time, not capability, the 10-qubit suite runs
  with CLAPTON_BENCH_PRESET=paper;
* VQE final points from 30 SPSA iterations on the nairobi rows only;
* hanoi "hardware" energies come from the hardware twin.
"""

import pytest
from conftest import print_banner, run_once

from repro.backends import FakeHanoi, FakeMumbai, FakeNairobi, FakeToronto
from repro.core import VQEProblem
from repro.experiments import compare_initializations, format_comparison_table
from repro.hamiltonians import get_benchmark
from repro.metrics import geometric_mean


def _gather(backend, names, num_qubits, config, vqe_iterations=0,
            hardware=None):
    rows = []
    for name in names:
        hamiltonian = get_benchmark(name, num_qubits).hamiltonian()
        problem = VQEProblem.from_backend(hamiltonian, backend,
                                          hardware=hardware)
        rows.append(compare_initializations(name, hamiltonian, problem,
                                            config=config,
                                            vqe_iterations=vqe_iterations))
    return rows


def test_fig5_nairobi_physics(benchmark, bench_config):
    backend = FakeNairobi()
    names = ["ising_J1.00", "xxz_J0.50"]

    rows = run_once(benchmark, lambda: _gather(
        backend, names, 5, bench_config, vqe_iterations=30))

    print_banner("Figure 5 | nairobi (model) | physics, 5q | initial+final")
    print(format_comparison_table(rows))
    print(f"\n{'benchmark':<14} {'eta_f vs cafqa':>15} {'eta_f vs ncafqa':>16}")
    for row in rows:
        print(f"{row.benchmark:<14} {row.eta_final('cafqa'):>15.2f} "
              f"{row.eta_final('ncafqa'):>16.2f}")
    gmean_i = geometric_mean([max(r.eta_initial("cafqa"), 1e-3) for r in rows])
    gmean_f = geometric_mean([max(r.eta_final("cafqa"), 1e-3) for r in rows])
    print(f"\ngeometric mean eta vs CAFQA: initial {gmean_i:.2f}, "
          f"final {gmean_f:.2f}  (paper: 1.7-3.7 initial, 1.5-3.5 final)")
    # headline shape: Clapton's initial point beats CAFQA's on average
    assert gmean_i > 1.0


def test_fig5_toronto_physics_and_chemistry(benchmark, bench_config):
    backend = FakeToronto()

    def experiment():
        rows = _gather(backend, ["xxz_J0.25", "xxz_J1.00"], 6, bench_config)
        rows += _gather(backend, ["LiH_l1.5"], 10, bench_config)
        return rows

    rows = run_once(benchmark, experiment)

    print_banner("Figure 5 | toronto (model) | physics 6q + LiH 10q | initial")
    print(format_comparison_table(rows))
    etas_cafqa = [max(r.eta_initial("cafqa"), 1e-3) for r in rows]
    etas_ncafqa = [max(r.eta_initial("ncafqa"), 1e-3) for r in rows]
    print(f"\ngeometric mean eta: vs CAFQA {geometric_mean(etas_cafqa):.2f}, "
          f"vs nCAFQA {geometric_mean(etas_ncafqa):.2f}")
    assert geometric_mean(etas_cafqa) > 1.0
    # paper: chemistry profits most from the transformation
    chem_eta = rows[-1].eta_initial("cafqa")
    print(f"chemistry (LiH) eta vs CAFQA: {chem_eta:.2f}")


def test_fig5_mumbai_physics(benchmark, bench_config):
    backend = FakeMumbai()
    names = ["ising_J0.25", "xxz_J0.50"]

    rows = run_once(benchmark, lambda: _gather(backend, names, 6,
                                               bench_config))

    print_banner("Figure 5 | mumbai (model) | physics, 6q | initial points")
    print(format_comparison_table(rows))
    etas = [max(r.eta_initial("cafqa"), 1e-3) for r in rows]
    print(f"\ngeometric mean eta vs CAFQA: {geometric_mean(etas):.2f}")
    # mumbai is the cleanest fake model; gains are smaller but present
    assert geometric_mean(etas) > 0.9


def test_fig5_hanoi_hardware(benchmark, bench_config):
    backend = FakeHanoi()
    twin = backend.hardware_twin(seed=2024)

    rows = run_once(benchmark, lambda: _gather(
        backend, ["xxz_J0.25", "ising_J0.50"], 6, bench_config,
        hardware=twin))

    print_banner("Figure 5 | hanoi (model + hardware twin) | initial points")
    print(f"{'benchmark':<14} {'method':<9} {'model':>9} {'hardware':>9}")
    for row in rows:
        for method, ev in row.evaluations.items():
            print(f"{row.benchmark:<14} {method:<9} {ev.device_model:>9.4f} "
                  f"{ev.hardware:>9.4f}")
    for row in rows:
        eta_hw = row.eta_initial("cafqa", tier="hardware")
        print(f"{row.benchmark}: hardware eta vs CAFQA = {eta_hw:.2f}")
        # the paper's hardware claim: improvements survive the twin
        assert eta_hw > 0.8  # allow mild degradation, must not collapse
