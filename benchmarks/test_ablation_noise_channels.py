"""Ablation: which modeled channel earns Clapton its advantage (Sec. 4.2/6.2).

Runs Clapton with systematically impoverished Clifford noise models --
no readout modeling, no gate-error modeling, and the enriched variant with
Pauli-twirled relaxation -- and evaluates every resulting initialization
under the *same* full device model.  Also times one L_N evaluation against
its stim-style sampling counterpart, quantifying what the closed-form
evaluator buys over the paper's Monte-Carlo approach.
"""

import numpy as np
from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.core import VQEProblem, clapton, evaluate_initial_point
from repro.hamiltonians import get_benchmark, ground_state_energy
from repro.noise import CliffordNoiseModel, sample_noisy_energy


def test_ablation_noise_channels(benchmark, bench_config):
    hamiltonian = get_benchmark("xxz_J0.50", 6).hamiltonian()
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    e0 = ground_state_energy(hamiltonian)
    nm = problem.noise_model

    variants = {
        "full model": CliffordNoiseModel(nm),
        "no readout": CliffordNoiseModel(
            nm.with_overrides(readout_p01=np.zeros(nm.num_qubits),
                              readout_p10=np.zeros(nm.num_qubits))),
        "no gate err": CliffordNoiseModel(
            nm.with_overrides(depol_1q=np.zeros(nm.num_qubits),
                              depol_2q_default=0.0, depol_2q={})),
        "+ twirled T1": CliffordNoiseModel(nm,
                                           include_twirled_relaxation=True),
    }

    def experiment():
        out = {}
        for name, model in variants.items():
            result = clapton(problem, config=bench_config,
                             clifford_model=model)
            out[name] = evaluate_initial_point(result)
        return out

    evaluations = run_once(benchmark, experiment)
    print_banner(f"Ablation | Clifford-model channels | XXZ J=0.50, 6q | "
                 f"E0={e0:.4f}")
    print(f"{'variant':<14} {'device':>10} {'gap to E0':>10}")
    for name, ev in evaluations.items():
        print(f"{name:<14} {ev.device_model:>10.4f} "
              f"{ev.device_model - e0:>10.4f}")
    print("(note: at reduced GA budgets an impoverished L_N can land a "
          "better device point by accident -- the richer landscape needs "
          "more search; see EXPERIMENTS.md)")
    # what is guaranteed regardless of budget: every variant stays physical
    # and beats the untransformed theta=0 starting point by a wide margin
    trivial = hamiltonian.expectation_all_zeros()
    for name, ev in evaluations.items():
        assert e0 - 1e-9 <= ev.device_model < trivial, name


def test_deterministic_ln_vs_sampling(benchmark):
    """Cost of one exact L_N evaluation vs stim-style shot sampling."""
    import time

    hamiltonian = get_benchmark("xxz_J0.50", 6).hamiltonian()
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    model = CliffordNoiseModel(problem.noise_model)
    skeleton = problem.skeleton()
    mapped = problem.mapped_hamiltonian()

    exact = benchmark.pedantic(
        lambda: model.noisy_zero_state_energy(skeleton, mapped),
        rounds=20, iterations=1)

    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    sampled = sample_noisy_energy(skeleton, mapped, problem.noise_model,
                                  shots=300, rng=rng)
    sample_seconds = time.perf_counter() - t0
    value = model.noisy_zero_state_energy(skeleton, mapped)

    print_banner("Deterministic L_N vs stim-style sampling (300 shots)")
    print(f"exact value {value:.4f}; sampled {sampled:.4f}; "
          f"sampling took {sample_seconds:.2f}s for 300 shots")
    assert abs(sampled - value) < 0.5
