"""Search-strategy shoot-out: evaluations-to-target at the Figure-4 point.

Runs every built-in search strategy on the same noiseless Clifford loss
(CAFQA's cost: the noiseless stabilizer energy) and records how many
*distinct* loss evaluations each needs to match the reference searcher --
the converged Figure-4 engine -- to within a small slack (2% of the
E0 -> mixed-state span; the exact ground state is not a stabilizer state,
so a target relative to E0 would be unreachable for *every* Clifford
search).  All strategies share one evaluation envelope, the engine
preset's own ceiling.  The committed trajectory baseline is
``benchmarks/bench_results/search_baseline.json``; per-run JSON lands at
``CLAPTON_BENCH_JSON`` (default
``benchmarks/bench_results/search_strategies.json``).

Engine preset: ``CLAPTON_BENCH_PRESET`` (``smoke`` shrinks the problem
for CI; ``paper`` runs the full Figure-4 working point).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.core import CafqaLoss, VQEProblem
from repro.experiments import bench_engine
from repro.hamiltonians import ground_state_energy, ising_model
from repro.search import SearchBudget, get_strategy, strategy_names

SMOKE = os.environ.get("CLAPTON_BENCH_PRESET", "fast").lower() == "smoke"
NUM_QUBITS = 4 if SMOKE else 6
#: Slack around the reference loss, as a fraction of the E0 -> e_mixed
#: span.
SLACK_FRACTION = 0.02


def _setup():
    hamiltonian = ising_model(NUM_QUBITS, 1.0)
    problem = VQEProblem.logical(hamiltonian)
    e0 = ground_state_energy(hamiltonian)
    e_mixed = hamiltonian.mixed_state_energy()
    return problem, e0, e_mixed


def _emit_bench_json(rows, e0, reference, target):
    payload = {
        "bench": "search_strategies",
        "preset": os.environ.get("CLAPTON_BENCH_PRESET", "fast"),
        "num_qubits": NUM_QUBITS,
        "e0": round(e0, 6),
        "reference_loss": round(reference, 6),
        "target_loss": round(target, 6),
        "strategies": {
            name: {
                "evaluations": evaluations,
                "reached_target": reached,
                "best_loss": round(best, 6),
                "rounds": rounds,
                "stopped_by": stopped_by,
                "seconds": round(seconds, 4),
            }
            for name, evaluations, reached, best, rounds, stopped_by,
            seconds in rows
        },
    }
    path = Path(os.environ.get(
        "CLAPTON_BENCH_JSON",
        Path(__file__).parent / "bench_results" / "search_strategies.json"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"BENCH {json.dumps(payload)}")
    return path


def test_evaluations_to_target():
    from dataclasses import replace

    problem, e0, e_mixed = _setup()
    config = bench_engine()
    envelope = SearchBudget.from_engine(config)
    # reference: the converged Figure-4 engine defines "the answer"
    reference = get_strategy("multi_ga").minimize(
        CafqaLoss(problem, noise_aware=False),
        problem.num_vqe_parameters, budget=envelope, config=config)
    target = reference.best_loss + SLACK_FRACTION * (e_mixed - e0)
    budget = replace(envelope, target_loss=target)
    print_banner(
        f"Search strategies: evaluations to reach {target:.4f} "
        f"(engine reference {reference.best_loss:.4f} in "
        f"{reference.num_evaluations} evaluations; E0 = {e0:.4f}, "
        f"{NUM_QUBITS}q ising)")
    rows = []
    for name in strategy_names():
        loss = CafqaLoss(problem, noise_aware=False)
        start = time.perf_counter()
        result = get_strategy(name).minimize(
            loss, problem.num_vqe_parameters, budget=budget, config=config)
        seconds = time.perf_counter() - start
        reached = bool(result.best_loss <= target + 1e-12)
        rows.append((name, int(result.num_evaluations), reached,
                     float(result.best_loss), result.num_rounds,
                     result.stopped_by, seconds))
        print(f"{name:>14}: {result.num_evaluations:>6} evaluations, "
              f"best {result.best_loss:+.4f} "
              f"({'target reached' if reached else result.stopped_by}), "
              f"{seconds:.2f}s")
        # contract half: the budget envelope is never exceeded
        assert result.num_evaluations <= budget.max_evaluations
        assert np.isfinite(result.best_loss)
    _emit_bench_json(rows, e0, reference.best_loss, target)
    # the reference searcher must reproduce its own answer
    multi_ga = next(r for r in rows if r[0] == "multi_ga")
    assert multi_ga[2], "multi_ga failed to re-reach its reference loss"
