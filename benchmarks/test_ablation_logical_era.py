"""Extension: Clapton in the error-corrected era (the paper's Sec. 8 claim).

"Errors on these machines are discretized and typically expressed in terms
of bit flips and phase flips, which directly suggests the depolarizing
error model.  Therefore ... [Clapton] might prove itself to be even more
relevant and accurate in the future."

This bench runs Clapton vs nCAFQA under the discrete logical-flip model --
where the Clifford noise model is *exact* (every channel is Pauli) -- and
verifies the conclusion's prediction: the model-device gap vanishes and the
transformation still buys accuracy.
"""

from conftest import print_banner, run_once

from repro.core import VQEProblem, clapton, evaluate_initial_point, ncafqa
from repro.hamiltonians import get_benchmark, ground_state_energy
from repro.noise import NoiseModel


def test_logical_era_exact_modeling(benchmark, bench_config):
    hamiltonian = get_benchmark("xxz_J0.50", 6).hamiltonian()
    e0 = ground_state_energy(hamiltonian)
    nm = NoiseModel.logical(6, flip_x=2e-3, flip_z=2e-3, readout=1e-3)
    problem = VQEProblem.logical(hamiltonian, noise_model=nm)

    def experiment():
        out = {}
        for name, driver in [("ncafqa", ncafqa), ("clapton", clapton)]:
            out[name] = evaluate_initial_point(driver(problem,
                                                      config=bench_config))
        return out

    evaluations = run_once(benchmark, experiment)
    print_banner(f"Extension | logical-qubit era | XXZ J=0.50, 6q | "
                 f"E0={e0:.4f}")
    print(f"{'method':<9} {'clifford':>10} {'device':>10} {'|gap|':>10}")
    for name, ev in evaluations.items():
        print(f"{name:<9} {ev.clifford_model:>10.4f} {ev.device_model:>10.4f} "
              f"{ev.model_gap():>10.2e}")

    # Sec. 8's prediction: with purely discrete Pauli errors the Clifford
    # model is exact -- no model-device discrepancy for any method
    for name, ev in evaluations.items():
        assert ev.model_gap() < 1e-8, name
    # and Clapton still at least matches the noise-aware baseline
    assert (evaluations["clapton"].device_model
            <= evaluations["ncafqa"].device_model + 1e-6)
