"""Ablation: expressiveness of the transformation ansatz (Sec. 4, Eq. 8).

The paper motivates the four-way two-qubit slot {II, CX k->l, CX l->k, SWAP}
by the conjugation structure of CX and the ability of SWAPs to move Pauli
components between qubits.  This bench restricts the slot alphabet and
measures what each option buys on the device-model initial point:

* ``full``      -- the paper's ansatz;
* ``no-swap``   -- slots limited to {II, CX k->l, CX l->k};
* ``rot-only``  -- slots forced to II (single-qubit transformation only).
"""

import numpy as np
from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.core import ClaptonLoss, VQEProblem, evaluate_initial_point
from repro.core.clapton import InitializationResult, clapton
from repro.hamiltonians import get_benchmark, ground_state_energy
from repro.optim import multi_ga_minimize


def _restricted_clapton(problem, config, slot_values):
    """Clapton with the two-qubit slot genes mapped into ``slot_values``."""
    n = problem.num_logical_qubits
    num_pairs = problem.num_transformation_parameters - 4 * n
    loss = ClaptonLoss(problem)

    def restrict(gamma):
        gamma = np.asarray(gamma).copy()
        slots = gamma[2 * n:2 * n + num_pairs]
        gamma[2 * n:2 * n + num_pairs] = np.asarray(slot_values)[
            slots % len(slot_values)]
        return gamma

    engine = multi_ga_minimize(lambda g: loss(restrict(g)),
                               problem.num_transformation_parameters,
                               num_values=4, config=config)
    gamma = restrict(engine.best_genome)
    from repro.core.transformation import transform_hamiltonian

    return InitializationResult(
        method="clapton", problem=problem, genome=gamma,
        loss=engine.best_loss, engine=engine,
        vqe_hamiltonian=transform_hamiltonian(problem.hamiltonian, gamma),
        initial_theta=np.zeros(problem.num_vqe_parameters))


def test_ablation_transform_ansatz(benchmark, bench_config):
    hamiltonian = get_benchmark("xxz_J1.00", 6).hamiltonian()
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    e0 = ground_state_energy(hamiltonian)

    def experiment():
        out = {}
        out["full"] = evaluate_initial_point(
            clapton(problem, config=bench_config))
        out["no-swap"] = evaluate_initial_point(
            _restricted_clapton(problem, bench_config, [0, 1, 2]))
        out["rot-only"] = evaluate_initial_point(
            _restricted_clapton(problem, bench_config, [0]))
        return out

    evaluations = run_once(benchmark, experiment)
    print_banner(f"Ablation | transformation ansatz slots | XXZ J=1.00, 6q | "
                 f"E0={e0:.4f}")
    print(f"{'variant':<10} {'noise-free':>11} {'device':>10}")
    for name, ev in evaluations.items():
        print(f"{name:<10} {ev.noiseless:>11.4f} {ev.device_model:>10.4f}")

    # two-qubit slots must help: the full alphabet should not lose to the
    # rotation-only transformation on the device tier
    assert (evaluations["full"].device_model
            <= evaluations["rot-only"].device_model + 0.02 * abs(e0))
