"""Figure 7: relative improvement vs gate-error strength.

Sweeps the single-qubit depolarizing error ``p`` (two-qubit error ``10p``)
with thermal relaxation fixed, and reports eta(Clapton vs nCAFQA) at the
initial VQE point -- the paper's isolated-gate-noise study (Sec. 6.2).

Reductions: Ising at 6 qubits plus LiH (l=4.5, 10 qubits) as the chemistry
representative; three sweep points; two T1 values (paper: four benchmarks,
seven points, three T1 values).  Shape claims asserted: eta >= ~1 across
the sweep and stronger relaxation (shorter T1) does not hurt Clapton.
"""

import numpy as np
from conftest import print_banner, run_once

from repro.experiments import sweep_relative_improvement
from repro.hamiltonians import get_benchmark
from repro.noise import NoiseModel

GATE_ERRORS = [5e-4, 2e-3, 5e-3]
T1_VALUES = [50e-6, 150e-6]
READOUT = 2e-2


def _sweep(hamiltonian, config, t1):
    models = [NoiseModel.uniform(hamiltonian.num_qubits, depol_1q=p,
                                 depol_2q=10 * p, readout=READOUT, t1=t1)
              for p in GATE_ERRORS]
    return sweep_relative_improvement(hamiltonian, models, config=config)


def test_fig7_ising(benchmark, bench_config):
    hamiltonian = get_benchmark("ising_J1.00", 6).hamiltonian()

    def experiment():
        return {t1: _sweep(hamiltonian, bench_config, t1)
                for t1 in T1_VALUES}

    results = run_once(benchmark, experiment)
    print_banner("Figure 7(a) | Ising J=1.00, 6q | eta vs nCAFQA over gate error")
    print(f"{'T1 [us]':<9} " + " ".join(f"p={p:.0e}" for p in GATE_ERRORS))
    for t1, etas in results.items():
        print(f"{t1 * 1e6:<9.0f} " + "   ".join(f"{v:6.2f}" for v in etas))
    all_etas = [v for etas in results.values() for v in etas]
    # Clapton should never be substantially worse than nCAFQA
    assert min(all_etas) > 0.7
    assert max(all_etas) >= 1.0


def test_fig7_lih_chemistry(benchmark, bench_config):
    hamiltonian = get_benchmark("LiH_l4.5", 10).hamiltonian()

    results = run_once(benchmark,
                       lambda: _sweep(hamiltonian, bench_config, 150e-6))
    print_banner("Figure 7(d) | LiH l=4.5, 10q | eta vs nCAFQA over gate error")
    print(" ".join(f"p={p:.0e}" for p in GATE_ERRORS))
    print("   ".join(f"{v:6.2f}" for v in results))
    # chemistry is where the transformation helps most (paper Sec. 6.2)
    assert max(results) >= 1.0
