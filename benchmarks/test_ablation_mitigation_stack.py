"""Extension: composing Clapton with downstream error mitigation (Sec. 8).

The paper proposes combining its pre-processing transformation with other
mitigation methods as future work.  This bench quantifies the composition
through the mitigation registry: CAFQA and Clapton initial points, each
evaluated under every built-in mitigation stack (raw, ZNE variants,
readout inversion, and the composed ``zne|readout``) on the full device
model, all driven through ``Experiment.run(mitigation=...)`` -- the same
path campaigns take.

Per-run JSON lands at ``CLAPTON_BENCH_JSON`` (default
``benchmarks/bench_results/mitigation_baseline.json``, the committed
artifact) with one error-vs-unmitigated row per stack and method.

Engine preset: ``CLAPTON_BENCH_PRESET`` (``smoke`` shrinks the problem
for CI; the committed baseline records the default ``fast`` preset).
"""

import json
import os
from pathlib import Path

from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.experiments import Experiment
from repro.hamiltonians import get_benchmark, ground_state_energy

SMOKE = os.environ.get("CLAPTON_BENCH_PRESET", "fast").lower() == "smoke"
NUM_QUBITS = 3 if SMOKE else 6
METHODS = ("cafqa", "clapton")
#: Every built-in family plus the paper's proposed composition, by the
#: registry grammar.  "none" is the unmitigated reference row.
STACKS = ("none", "zne:folds=3", "zne:folds=3,fit=richardson", "readout",
          "zne:folds=3|readout")


def _emit_bench_json(rows, e0):
    payload = {
        "bench": "mitigation_stack",
        "preset": os.environ.get("CLAPTON_BENCH_PRESET", "fast"),
        "benchmark": "xxz_J0.50",
        "num_qubits": NUM_QUBITS,
        "e0": round(e0, 6),
        "stacks": {
            stack: {
                method: {
                    "raw": round(raw, 6),
                    "mitigated": round(mitigated, 6),
                    "gap_raw": round(raw - e0, 6),
                    "gap_mitigated": round(mitigated - e0, 6),
                    "gap_recovered": round(abs(raw - e0)
                                           - abs(mitigated - e0), 6),
                }
                for method, (raw, mitigated) in methods.items()
            }
            for stack, methods in rows.items()
        },
    }
    path = Path(os.environ.get(
        "CLAPTON_BENCH_JSON",
        Path(__file__).parent / "bench_results" / "mitigation_baseline.json"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"BENCH {json.dumps(payload)}")
    return path


def test_mitigation_stacks_through_experiment(benchmark, bench_config):
    hamiltonian = get_benchmark("xxz_J0.50", NUM_QUBITS).hamiltonian()
    e0 = ground_state_energy(hamiltonian)

    def experiment():
        rows = {}
        for stack in STACKS:
            # identical config + seed => identical search output per
            # stack; only the evaluation phase differs
            result = Experiment(hamiltonian, backend=FakeToronto(),
                                e0=e0).run(methods=METHODS,
                                           config=bench_config,
                                           mitigation=stack)
            rows[stack] = {}
            for method in METHODS:
                evaluation = result.runs[method].evaluation
                raw = (evaluation.device_model_raw
                       if evaluation.device_model_raw is not None
                       else evaluation.device_model)
                rows[stack][method] = (raw, evaluation.device_model)
        return rows

    rows = run_once(benchmark, experiment)
    _emit_bench_json(rows, e0)

    print_banner(f"Extension | mitigation stacks x methods | XXZ J=0.50, "
                 f"{NUM_QUBITS}q, toronto | E0={e0:.4f}")
    print(f"{'stack':<28} {'method':<10} {'raw':>9} {'mitigated':>10} "
          f"{'gap raw':>9} {'gap mit':>9}")
    for stack, methods in rows.items():
        for method, (raw, mitigated) in methods.items():
            print(f"{stack:<28} {method:<10} {raw:>9.4f} {mitigated:>10.4f} "
                  f"{raw - e0:>9.4f} {mitigated - e0:>9.4f}")

    # the reference stack is a true no-op: mitigated == raw
    for method, (raw, mitigated) in rows["none"].items():
        assert mitigated == raw, method
    # every stack sees the same unmitigated energies (same search output)
    for stack in STACKS[1:]:
        for method in METHODS:
            assert rows[stack][method][0] == rows["none"][method][0], stack
    # composition claim: ZNE, readout, and their stack each shrink the
    # device-model gap, and composed clapton is the best configuration
    for stack in ("zne:folds=3", "readout", "zne:folds=3|readout"):
        for method, (raw, mitigated) in rows[stack].items():
            assert abs(mitigated - e0) <= abs(raw - e0) + 1e-9, \
                (stack, method)
    best = min(mitigated for methods in rows.values()
               for _, mitigated in methods.values())
    assert rows["zne:folds=3|readout"]["clapton"][1] <= best + 1e-9
