"""Extension: composing Clapton with downstream error mitigation (Sec. 8).

The paper proposes combining its pre-processing transformation with other
mitigation methods as future work.  This bench quantifies the composition
on one benchmark: CAFQA and Clapton initial points, each evaluated raw and
with zero-noise extrapolation, under the full device model.
"""

from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.core import VQEProblem, cafqa, clapton, evaluate_initial_point
from repro.hamiltonians import get_benchmark, ground_state_energy
from repro.mitigation import zne_energy


def test_clapton_composes_with_zne(benchmark, bench_config):
    hamiltonian = get_benchmark("xxz_J0.50", 6).hamiltonian()
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    e0 = ground_state_energy(hamiltonian)

    def experiment():
        out = {}
        for name, driver in [("cafqa", cafqa), ("clapton", clapton)]:
            result = driver(problem, config=bench_config)
            circuit = result.initial_circuit()
            observable = result.initial_observable()
            raw = evaluate_initial_point(result).device_model
            zne = zne_energy(circuit, observable, problem.noise_model,
                             scales=(1, 3, 5), method="exponential")
            out[name] = (raw, zne.mitigated)
        return out

    results = run_once(benchmark, experiment)
    print_banner(f"Extension | Clapton x ZNE | XXZ J=0.50, 6q, toronto | "
                 f"E0={e0:.4f}")
    print(f"{'method':<10} {'raw device':>11} {'with ZNE':>10} "
          f"{'gap raw':>9} {'gap ZNE':>9}")
    for name, (raw, mitigated) in results.items():
        print(f"{name:<10} {raw:>11.4f} {mitigated:>10.4f} "
              f"{raw - e0:>9.4f} {mitigated - e0:>9.4f}")

    # composition claim: ZNE shrinks each method's gap, and the composed
    # clapton+ZNE stack is the best configuration overall
    for name, (raw, mitigated) in results.items():
        assert mitigated - e0 <= (raw - e0) + 1e-9, name
    best = min(v[1] for v in results.values())
    assert results["clapton"][1] <= best + 1e-9
