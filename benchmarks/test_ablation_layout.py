"""Ablation: does the noise-aware layout search matter?

The transpiler scores candidate physical lines by accumulated two-qubit and
readout error (Sec. 5.2.2's noise-aware placement).  This bench compares the
chosen layout against the *worst* scoring line of the same length under the
full device model, holding the method (Clapton) fixed.
"""

import numpy as np
from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.core import VQEProblem, clapton, evaluate_initial_point
from repro.hamiltonians import get_benchmark, ground_state_energy
from repro.transpiler.layout import path_score


def _worst_line(backend, length: int) -> list[int]:
    """Highest-error simple path (exhaustive over DFS enumeration)."""
    import networkx as nx

    worst, worst_score = None, -1.0
    graph = backend.graph

    def dfs(path, used):
        nonlocal worst, worst_score
        if len(path) == length:
            score = path_score(backend, path)
            if score > worst_score:
                worst_score, worst = score, list(path)
            return
        for v in graph.neighbors(path[-1]):
            if v not in used:
                path.append(v)
                used.add(v)
                dfs(path, used)
                used.remove(v)
                path.pop()

    for start in graph.nodes:
        dfs([start], {start})
    return worst


def test_ablation_layout(benchmark, bench_config):
    hamiltonian = get_benchmark("ising_J1.00", 6).hamiltonian()
    backend = FakeToronto()
    e0 = ground_state_energy(hamiltonian)

    def experiment():
        out = {}
        best_problem = VQEProblem.from_backend(hamiltonian, backend)
        out["noise-aware"] = (best_problem.transpiled.physical_qubits,
                              evaluate_initial_point(
                                  clapton(best_problem, config=bench_config)))
        worst = _worst_line(backend, 6)
        worst_problem = VQEProblem.from_backend(hamiltonian, backend,
                                                layout=worst)
        out["worst-line"] = (worst_problem.transpiled.physical_qubits,
                             evaluate_initial_point(
                                 clapton(worst_problem, config=bench_config)))
        return out

    results = run_once(benchmark, experiment)
    print_banner(f"Ablation | layout choice | Ising J=1.00, 6q, toronto | "
                 f"E0={e0:.4f}")
    for name, (qubits, ev) in results.items():
        print(f"{name:<12} qubits={qubits}  device={ev.device_model:.4f}")
    assert (results["noise-aware"][1].device_model
            <= results["worst-line"][1].device_model + 1e-6)
