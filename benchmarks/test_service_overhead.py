"""Micro-benchmark: campaign-service scheduling overhead per task.

The service wraps every task in lease bookkeeping: a ``lease`` event and
a ``release`` event appended (fsync'd) to ``leases.jsonl``, plus the
fsync'd record append the store always paid.  This bench drives a
:class:`~repro.campaigns.service.scheduler.CampaignScheduler` through a
full lease -> report cycle for several hundred *synthetic* tasks (no
engines run -- this isolates pure scheduling cost) and asserts the
scheduler sustains a floor throughput that real campaigns (tasks of
seconds to minutes) will never notice.

Emits one BENCH JSON line/file like the other micro-benchmarks (CI
uploads it).  The JSON lands at ``CLAPTON_BENCH_JSON`` (default
``benchmarks/bench_results/service_overhead.json``).
"""

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import print_banner, run_once

from repro.campaigns import CampaignSpec, ResultStore
from repro.campaigns.service import CampaignScheduler

#: Grid size: 2 methods x 200 seeds = 400 synthetic tasks, enough for a
#: stable per-task figure with three fsyncs each (lease, release, record).
NUM_SEEDS = 200

#: Floor, not target: an fsync-bound scheduler on a shared CI runner
#: still clears this by an order of magnitude on local disks.
MIN_TASKS_PER_SECOND = 25.0

TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}

SPEC = CampaignSpec(name="service-overhead", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0],
                    methods=["ncafqa", "clapton"],
                    seeds=list(range(NUM_SEEDS)),
                    engine_preset="smoke", engine_overrides=TINY_OVERRIDES)


def _drive_full_cycle(tmp: Path) -> tuple[int, float]:
    """lease -> report every task once, synthetic records, timed."""
    store = ResultStore.create(tmp / "store", SPEC)
    scheduler = CampaignScheduler(SPEC, store)
    completed = 0
    start = time.perf_counter()
    while (grant := scheduler.next_task("bench-worker")) is not None:
        task, _lease = grant
        scheduler.report("bench-worker", {
            "task_id": task.task_id, "status": "done", "seconds": 0.0,
            "task": task.to_dict(), "result": {"ok": True}, "error": None,
        })
        completed += 1
    seconds = time.perf_counter() - start
    assert scheduler.done and completed == len(SPEC.tasks())
    scheduler.close()
    return completed, seconds


def _emit_bench_json(completed, seconds):
    payload = {
        "bench": "service_overhead",
        "tasks": completed,
        "seconds": round(seconds, 6),
        "tasks_per_second": round(completed / seconds, 1),
        "per_task_ms": round(1000.0 * seconds / completed, 3),
    }
    path = Path(os.environ.get(
        "CLAPTON_BENCH_JSON",
        Path(__file__).parent / "bench_results" / "service_overhead.json"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"BENCH {json.dumps(payload)}")


def test_scheduler_lease_report_throughput(benchmark):
    def experiment():
        with tempfile.TemporaryDirectory() as tmp:
            return _drive_full_cycle(Path(tmp))

    completed, seconds = run_once(benchmark, experiment)
    rate = completed / seconds

    print_banner("Campaign-service scheduling overhead | synthetic tasks")
    print(f"tasks (lease -> report)  : {completed}")
    print(f"wall time                : {seconds:.3f}s "
          f"({1000.0 * seconds / completed:.2f} ms/task, "
          f"3 fsync'd events each)")
    print(f"throughput               : {rate:.0f} tasks/s "
          f"(floor {MIN_TASKS_PER_SECOND:.0f})")
    _emit_bench_json(completed, seconds)

    assert rate > MIN_TASKS_PER_SECOND, (
        f"scheduler sustained only {rate:.1f} tasks/s; lease bookkeeping "
        f"has become heavier than the {MIN_TASKS_PER_SECOND:.0f}/s floor")
