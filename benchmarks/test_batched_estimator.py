"""Micro-benchmark: batched ``estimate_many`` vs the per-call loop.

The unified estimator's batched path groups a theta batch by circuit
structure and evolves each group as one ``(B, 2^n, 2^n)`` tensor in
cache-sized chunks, paying the per-instruction gate/channel dispatch once
per chunk instead of once per point.  This bench times both paths on a
GA-population-sized batch (60 points >= the 50-point target) at two
register sizes and asserts the batch wins while agreeing numerically.
"""

import time

import numpy as np
from conftest import print_banner, run_once

from repro.core import VQEProblem
from repro.execution import make_estimator
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel

BATCH = 60
SIZES = (4, 6)


def _setup(num_qubits: int):
    hamiltonian = ising_model(num_qubits, 1.0)
    noise = NoiseModel.uniform(num_qubits, depol_1q=1e-3, depol_2q=8e-3,
                               readout=2e-2, t1=80e-6)
    problem = VQEProblem.logical(hamiltonian, noise_model=noise)
    estimator = make_estimator(problem, mode="exact")
    thetas = np.random.default_rng(0).uniform(
        0, 2 * np.pi, (BATCH, problem.num_vqe_parameters))
    return estimator, thetas


def _time_paths(estimator, thetas):
    # warm both paths (binding-plan construction, numpy caches)
    estimator.estimate(thetas[0])
    estimator.estimate_many(thetas[:2])
    start = time.perf_counter()
    sequential = np.array([estimator.estimate(t).value for t in thetas])
    loop_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batch = estimator.estimate_many(thetas)
    batch_seconds = time.perf_counter() - start
    return sequential, loop_seconds, batch, batch_seconds


def test_batched_estimator_beats_per_call_loop(benchmark):
    def experiment():
        rows = []
        for n in SIZES:
            estimator, thetas = _setup(n)
            rows.append((n,) + _time_paths(estimator, thetas))
        return rows

    rows = run_once(benchmark, experiment)

    print_banner(f"Batched estimation | {BATCH}-point batch | exact mode")
    print(f"{'N':>4} {'per-call loop[s]':>17} {'estimate_many[s]':>17} "
          f"{'speedup':>8}")
    for n, sequential, loop_seconds, batch, batch_seconds in rows:
        print(f"{n:>4} {loop_seconds:>17.3f} {batch_seconds:>17.3f} "
              f"{loop_seconds / batch_seconds:>7.2f}x")

    for n, sequential, loop_seconds, batch, batch_seconds in rows:
        # identical numbers out of both paths
        np.testing.assert_allclose(batch.values, sequential, atol=1e-12)
        # the batched path must beat the per-call loop at every size
        assert batch_seconds < loop_seconds, (
            f"batched path slower at {n} qubits: "
            f"{batch_seconds:.3f}s vs {loop_seconds:.3f}s")
