"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark prints the rows/series the corresponding paper figure
reports (run with ``-s`` to see them) and times the end-to-end experiment
through pytest-benchmark with a single round (the experiments are minutes-
scale; statistical repetition happens *inside* them via seeds).

Engine preset: ``CLAPTON_BENCH_PRESET`` env var (``smoke``/``fast``/``paper``,
default ``fast``).  EXPERIMENTS.md records results from the default preset.
"""

import numpy as np
import pytest


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def bench_config():
    from repro.experiments import bench_engine

    return bench_engine()


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
