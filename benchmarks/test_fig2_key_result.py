"""Figure 2: the key result on one benchmark.

The paper's Fig. 2 magnifies a single benchmark to show (a) Clapton's
initial point reaching the lowest device-model energy and (b) Clapton's
Clifford-noise-model estimate sitting closest to the device-model value
(best modeling accuracy).  This bench regenerates both observations for the
XXZ (J=0.50) chain on the toronto model and asserts their direction.
"""

from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.core import VQEProblem, cafqa, clapton, evaluate_initial_point, ncafqa
from repro.hamiltonians import ground_state_energy, xxz_model
from repro.metrics import normalized_energy

NUM_QUBITS = 6  # paper: 10; reduced for bench wall-time (see EXPERIMENTS.md)


def test_fig2_key_result(benchmark, bench_config):
    hamiltonian = xxz_model(NUM_QUBITS, 0.50)
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    e0 = ground_state_energy(hamiltonian)
    e_mixed = hamiltonian.mixed_state_energy()

    def experiment():
        out = {}
        for name, driver in [("cafqa", cafqa), ("ncafqa", ncafqa),
                             ("clapton", clapton)]:
            result = driver(problem, config=bench_config)
            out[name] = evaluate_initial_point(result)
        return out

    evaluations = run_once(benchmark, experiment)

    print_banner(f"Figure 2 | XXZ J=0.50, {NUM_QUBITS}q, toronto model | "
                 f"E0={e0:.4f}")
    print(f"{'method':<10} {'noise-free':>11} {'clifford':>10} {'device':>10} "
          f"{'|model gap|':>12} {'norm(device)':>13}")
    for name, ev in evaluations.items():
        print(f"{name:<10} {ev.noiseless:>11.4f} {ev.clifford_model:>10.4f} "
              f"{ev.device_model:>10.4f} {ev.model_gap():>12.4f} "
              f"{normalized_energy(ev.device_model, e0, e_mixed):>13.3f}")

    # paper claim (a): Clapton's device-model energy is the lowest
    assert (evaluations["clapton"].device_model
            <= min(evaluations["cafqa"].device_model,
                   evaluations["ncafqa"].device_model) + 1e-6)
    # paper claim (b): Clapton's Clifford model is the most faithful
    assert (evaluations["clapton"].model_gap()
            <= evaluations["cafqa"].model_gap() + 1e-6)
