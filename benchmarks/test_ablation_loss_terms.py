"""Ablation: why Clapton's cost needs both L_N and L_0 (Sec. 4.1).

The paper argues that optimizing L_N alone admits "deceptively good"
solutions -- error-resilient states far from the true ground state -- while
L_0 alone reproduces noise-blind CAFQA behaviour.  This bench runs Clapton
with each weighting and evaluates the resulting initial points under both
the device model and the noise-free tier.
"""

from conftest import print_banner, run_once

from repro.backends import FakeToronto
from repro.core import VQEProblem, clapton, evaluate_initial_point
from repro.hamiltonians import get_benchmark, ground_state_energy

VARIANTS = {
    "L_N + L_0 (paper)": (1.0, 1.0),
    "L_N only": (1.0, 0.0),
    "L_0 only": (0.0, 1.0),
}


def test_ablation_loss_terms(benchmark, bench_config):
    hamiltonian = get_benchmark("xxz_J0.50", 6).hamiltonian()
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    e0 = ground_state_energy(hamiltonian)

    def experiment():
        out = {}
        for name, (w_noisy, w_noiseless) in VARIANTS.items():
            result = clapton(problem, config=bench_config,
                             noisy_weight=w_noisy,
                             noiseless_weight=w_noiseless)
            out[name] = evaluate_initial_point(result)
        return out

    evaluations = run_once(benchmark, experiment)
    print_banner(f"Ablation | Clapton loss terms | XXZ J=0.50, 6q, toronto | "
                 f"E0={e0:.4f}")
    print(f"{'variant':<20} {'noise-free':>11} {'device':>10}")
    for name, ev in evaluations.items():
        print(f"{name:<20} {ev.noiseless:>11.4f} {ev.device_model:>10.4f}")

    full = evaluations["L_N + L_0 (paper)"]
    noisy_only = evaluations["L_N only"]
    noiseless_only = evaluations["L_0 only"]
    # the combined loss must match or beat both ablations on the device tier
    assert full.device_model <= noisy_only.device_model + 0.05 * abs(e0)
    assert full.device_model <= noiseless_only.device_model + 0.05 * abs(e0)
    # L_N-only drifts in algorithmic quality (its noise-free point is no
    # better than the combined loss's)
    assert noisy_only.noiseless >= full.noiseless - 1e-6
