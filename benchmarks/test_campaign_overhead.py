"""Micro-benchmark: campaign orchestration overhead on toy tasks.

The campaign subsystem adds spec expansion, content hashing, JSON
serialization of every result, and an fsync'd store append per task on
top of the underlying ``Experiment.run`` calls.  This bench runs the same
toy grid (a) as a bare loop of Experiment runs and (b) through
``CampaignRunner`` + a file-backed ``ResultStore``, and asserts the
orchestration tax stays under ~10% of task wall time.
"""

import tempfile
import time
from pathlib import Path

from conftest import print_banner, run_once

from repro.campaigns import CampaignRunner, CampaignSpec, ResultStore
from repro.campaigns.spec import engine_from_dict

#: Toy engine: every task lands around 100 ms, so 8 tasks give a stable
#: sub-second baseline while store costs (hashing, JSON, fsync) would
#: still show up well above the 10% line if they regressed.
TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}

SPEC = CampaignSpec(name="overhead", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0, 2.0],
                    methods=["ncafqa", "clapton"], seeds=[0, 1],
                    engine_preset="smoke", engine_overrides=TINY_OVERRIDES)

MAX_OVERHEAD = 0.10


def _run_direct(tasks) -> float:
    """The same cells as bare Experiment runs (no store, no hashing)."""
    start = time.perf_counter()
    for task in tasks:
        experiment = task.build_experiment()
        experiment.run(methods=(task.method,),
                       config=engine_from_dict(task.engine),
                       seed=task.seed)
    return time.perf_counter() - start


def _run_campaign() -> float:
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore.create(Path(tmp) / "store", SPEC)
        start = time.perf_counter()
        progress = CampaignRunner(SPEC, store).run()
        seconds = time.perf_counter() - start
        assert progress.failed == 0
    return seconds


def test_campaign_overhead_under_ten_percent(benchmark):
    tasks = SPEC.tasks()
    # warm benchmark/Hamiltonian caches and numpy paths off the clock
    _run_direct(tasks[:1])

    def experiment():
        # best of two rounds per leg: wall-clock assertions on shared CI
        # runners must not fail on one noisy-neighbor scheduling stall
        direct = min(_run_direct(tasks) for _ in range(2))
        campaign = min(_run_campaign() for _ in range(2))
        return direct, campaign

    direct, campaign = run_once(benchmark, experiment)

    overhead = campaign / direct - 1.0
    print_banner(f"Campaign orchestration overhead | {len(tasks)} toy tasks")
    print(f"direct Experiment loop : {direct:.3f}s (best of 2)")
    print(f"CampaignRunner + store : {campaign:.3f}s (best of 2)")
    print(f"overhead               : {overhead * 100:+.1f}% "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")

    assert campaign < direct * (1.0 + MAX_OVERHEAD), (
        f"campaign orchestration overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% of task wall time")
