"""Micro-benchmark: population-batched Clifford losses vs the per-genome loop.

The Figure-4 engine spends nearly all of its runtime evaluating GA
populations against the Clifford losses.  This bench times one population
evaluation -- the paper's working point, |S| = 100 genomes -- through the
batched ``evaluate_many`` seam against the historical one-genome-at-a-time
loop for all three losses, asserts the batch wins by at least the 3x the
acceptance bar demands on Clapton's loss (the engine hot path), checks the
numbers are **bit-identical**, and records the measurement as a BENCH JSON
artifact so the perf trajectory has a baseline to compare against.

Reduced working point: ``CLAPTON_BENCH_PRESET=smoke`` shrinks the problem
(CI runs this).  The JSON lands at ``CLAPTON_BENCH_JSON`` (default
``benchmarks/bench_results/batched_loss.json``, gitignored); the committed
trajectory baseline is ``benchmarks/bench_results/baseline.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import print_banner, run_once

from repro.core import CafqaLoss, ClaptonLoss, NcafqaLoss, VQEProblem
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel

#: The paper's GA population size |S| (Figure 4); the smoke preset shrinks
#: the problem, not the batch semantics.
POPULATION = 100
SMOKE = os.environ.get("CLAPTON_BENCH_PRESET", "fast").lower() == "smoke"
NUM_QUBITS = 6 if SMOKE else 12
SPEEDUP_FLOOR = 3.0

#: Qubit-scaling axis: the packed layout must beat the boolean oracle by
#: >= PACKED_SPEEDUP_FLOOR at every size >= PACKED_FLOOR_FROM.
SCALING_SIZES = [8, 16] if SMOKE else [8, 16, 32, 48, 64]
PACKED_SPEEDUP_FLOOR = 3.0
PACKED_FLOOR_FROM = 48


def _setup():
    hamiltonian = ising_model(NUM_QUBITS, 1.0)
    noise = NoiseModel.uniform(NUM_QUBITS, depol_1q=1e-3, depol_2q=8e-3,
                               readout=2e-2, t1=80e-6)
    return VQEProblem.logical(hamiltonian, noise_model=noise)


def _time_paths(loss, genomes):
    loss.evaluate_many(genomes[:2])  # warm plans and LUT caches
    loss(genomes[0])
    start = time.perf_counter()
    serial = np.array([loss(g) for g in genomes])
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = loss.evaluate_many(genomes)
    batched_seconds = time.perf_counter() - start
    return serial, serial_seconds, batched, batched_seconds


def _emit_bench_json(rows):
    payload = {
        "bench": "batched_loss",
        "preset": os.environ.get("CLAPTON_BENCH_PRESET", "fast"),
        "population": POPULATION,
        "num_qubits": NUM_QUBITS,
        "losses": {
            name: {
                "serial_seconds": round(serial_seconds, 6),
                "batched_seconds": round(batched_seconds, 6),
                "speedup": round(serial_seconds / batched_seconds, 2),
            }
            for name, serial_seconds, batched_seconds in rows
        },
    }
    path = Path(os.environ.get(
        "CLAPTON_BENCH_JSON",
        Path(__file__).parent / "bench_results" / "batched_loss.json"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"BENCH {json.dumps(payload)}")
    return path


def test_batched_population_beats_per_genome_loop(benchmark):
    problem = _setup()
    rng = np.random.default_rng(0)
    cases = [
        ("clapton", ClaptonLoss(problem),
         problem.num_transformation_parameters),
        ("cafqa", CafqaLoss(problem), problem.num_vqe_parameters),
        ("ncafqa", NcafqaLoss(problem), problem.num_vqe_parameters),
    ]

    def experiment():
        rows = []
        for name, loss, genome_length in cases:
            genomes = rng.integers(0, 4, size=(POPULATION, genome_length))
            rows.append((name,) + _time_paths(loss, genomes))
        return rows

    rows = run_once(benchmark, experiment)

    print_banner(f"Population-batched losses | |S| = {POPULATION} | "
                 f"{NUM_QUBITS}-qubit ising")
    print(f"{'loss':>8} {'per-genome[s]':>14} {'evaluate_many[s]':>17} "
          f"{'speedup':>8}")
    timing_rows = []
    for name, serial, serial_seconds, batched, batched_seconds in rows:
        print(f"{name:>8} {serial_seconds:>14.3f} {batched_seconds:>17.3f} "
              f"{serial_seconds / batched_seconds:>7.1f}x")
        timing_rows.append((name, serial_seconds, batched_seconds))
    _emit_bench_json(timing_rows)

    for name, serial, serial_seconds, batched, batched_seconds in rows:
        # the contract: batching moves no number at all
        np.testing.assert_array_equal(batched, serial, err_msg=name)
    speedups = {name: serial_seconds / batched_seconds
                for name, serial_seconds, batched_seconds in timing_rows}
    assert speedups["clapton"] >= SPEEDUP_FLOOR, (
        f"batched Clapton loss only {speedups['clapton']:.1f}x faster "
        f"(floor {SPEEDUP_FLOOR}x)")


def _scaling_setup(num_qubits):
    hamiltonian = ising_model(num_qubits, 1.0)
    noise = NoiseModel.uniform(num_qubits, depol_1q=1e-3, depol_2q=8e-3,
                               readout=2e-2, t1=80e-6)
    return VQEProblem.logical(hamiltonian, noise_model=noise)


def _best_of(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _emit_scaling_json(rows):
    payload = {
        "bench": "packed_qubit_scaling",
        "preset": os.environ.get("CLAPTON_BENCH_PRESET", "fast"),
        "population": POPULATION,
        "loss": "clapton",
        "sizes": [
            {
                "num_qubits": n,
                "packed_seconds": round(packed_seconds, 6),
                "bool_seconds": round(bool_seconds, 6),
                "speedup": round(bool_seconds / packed_seconds, 2),
            }
            for n, packed_seconds, bool_seconds in rows
        ],
    }
    path = Path(os.environ.get(
        "CLAPTON_BENCH_SCALING_JSON",
        Path(__file__).parent / "bench_results" / "qubit_scaling.json"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"BENCH {json.dumps(payload)}")
    return path


def test_packed_qubit_scaling(benchmark):
    """Packed vs boolean Clapton loss across the qubit-scaling axis.

    One full-population ``evaluate_many`` at the Figure-4 working point
    (|S| = 100) per size, packed layout against the boolean oracle.  The
    contract is twofold: the losses are **bit-identical** at every size,
    and the packed path wins by >= 3x from 48 qubits up (where the
    byte-per-bit layout's memory traffic dominates).
    """

    def experiment():
        rows = []
        for n in SCALING_SIZES:
            problem = _scaling_setup(n)
            rng = np.random.default_rng(0)
            genomes = rng.integers(
                0, 4,
                size=(POPULATION, problem.num_transformation_parameters))
            packed_loss = ClaptonLoss(problem, packed=True)
            bool_loss = ClaptonLoss(problem, packed=False)
            packed_values = packed_loss.evaluate_many(genomes)  # warm
            bool_values = bool_loss.evaluate_many(genomes)
            np.testing.assert_array_equal(packed_values, bool_values,
                                          err_msg=f"n={n}")
            packed_seconds = _best_of(
                lambda: packed_loss.evaluate_many(genomes))
            bool_seconds = _best_of(
                lambda: bool_loss.evaluate_many(genomes))
            rows.append((n, packed_seconds, bool_seconds))
        return rows

    rows = run_once(benchmark, experiment)

    print_banner(f"Packed vs bool Clapton loss | |S| = {POPULATION} | "
                 f"ising, sizes {SCALING_SIZES}")
    print(f"{'N':>4} {'packed[s]':>10} {'bool[s]':>9} {'speedup':>8}")
    for n, packed_seconds, bool_seconds in rows:
        print(f"{n:>4} {packed_seconds:>10.3f} {bool_seconds:>9.3f} "
              f"{bool_seconds / packed_seconds:>7.1f}x")
    _emit_scaling_json(rows)

    for n, packed_seconds, bool_seconds in rows:
        if n < PACKED_FLOOR_FROM:
            continue
        speedup = bool_seconds / packed_seconds
        assert speedup >= PACKED_SPEEDUP_FLOOR, (
            f"packed path only {speedup:.1f}x faster at n={n} "
            f"(floor {PACKED_SPEEDUP_FLOOR}x from {PACKED_FLOOR_FROM} "
            f"qubits)")
