"""Measurement grouping: qubit-wise commuting Pauli families.

Real experiments cannot measure hundreds of Pauli terms one by one; terms
whose single-qubit factors agree (up to identities) on every qubit share a
measurement basis and are estimated from the same shots.  This is the
standard qubit-wise-commuting grouping used by estimator pipelines, and the
counts-based estimator in :mod:`repro.vqe.counts_estimator` is built on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from ..paulis.pauli_sum import PauliSum

_CODE_TO_CHAR = {0: "I", 1: "X", 2: "Z", 3: "Y"}


def _term_codes(hamiltonian: PauliSum) -> np.ndarray:
    """Per-term, per-qubit basis codes: 0=I, 1=X, 2=Z, 3=Y."""
    return (hamiltonian.table.x.astype(np.int8)
            + 2 * hamiltonian.table.z.astype(np.int8))


@dataclass
class MeasurementGroup:
    """Terms sharing one measurement basis.

    Attributes:
        basis: Per-qubit measurement basis characters ("I" where no grouped
            term acts; those qubits are measured in Z and ignored).
        term_indices: Indices into the Hamiltonian's term list.
    """

    basis: list[str]
    term_indices: list[int]

    def basis_rotation(self, num_qubits: int) -> Circuit:
        """Gates rotating this basis into the computational (Z) basis.

        X is measured after H; Y after S† then H (``H S† Y S H = Z``).
        """
        circ = Circuit(num_qubits)
        for q, ch in enumerate(self.basis):
            if ch == "X":
                circ.h(q)
            elif ch == "Y":
                circ.sdg(q)
                circ.h(q)
        return circ


def group_qubit_wise_commuting(hamiltonian: PauliSum) -> list[MeasurementGroup]:
    """Greedy first-fit grouping, largest coefficients placed first.

    Guarantees: every non-identity term lands in exactly one group; within a
    group all terms agree (up to I) on every qubit.  Identity terms are
    skipped -- their coefficient is a constant energy offset.
    """
    codes = _term_codes(hamiltonian)
    order = np.argsort(-np.abs(hamiltonian.coefficients))
    groups: list[dict] = []
    for idx in order:
        idx = int(idx)
        term = codes[idx]
        if not term.any():
            continue  # identity term: constant offset, nothing to measure
        placed = False
        for group in groups:
            basis = group["codes"]
            compatible = np.all((term == 0) | (basis == 0) | (term == basis))
            if compatible:
                group["codes"] = np.where(basis == 0, term, basis)
                group["indices"].append(idx)
                placed = True
                break
        if not placed:
            groups.append({"codes": term.copy(), "indices": [idx]})
    return [MeasurementGroup(
        basis=[_CODE_TO_CHAR[int(c)] for c in g["codes"]],
        term_indices=sorted(g["indices"])) for g in groups]


def num_measurement_bases(hamiltonian: PauliSum) -> int:
    """How many circuit executions one energy estimate needs."""
    return len(group_qubit_wise_commuting(hamiltonian))
