"""Counts-based energy estimation: the full experimental measurement flow.

Where :class:`~repro.vqe.estimator.EnergyEstimator` computes exact noisy
expectations (with optional Gaussian shot-noise emulation), this estimator
reproduces what actually happens on hardware: group terms into shared
measurement bases, append (noisy) basis-rotation gates, sample bitstring
counts through the asymmetric readout confusion, and reconstruct each
term's expectation from the bits -- optionally applying tensored readout
mitigation (:mod:`repro.mitigation.readout`) first.

It is the slow-but-faithful reference path; tests pin the fast estimator
against it.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import VQEProblem
from ..densesim.evaluator import evolve_with_noise
from ..mitigation.readout import (
    confusion_matrices,
    mitigate_probabilities,
    z_expectation_from_probabilities,
)
from ..noise.model import NoiseModel
from ..paulis.pauli_sum import PauliSum
from .grouping import MeasurementGroup, group_qubit_wise_commuting


class CountsEnergyEstimator:
    """Estimate energies from sampled measurement outcomes.

    Args:
        problem: Problem bundle (ansatz + register).
        observable: Hamiltonian on the evaluation register.
        noise_model: Device model (defaults to the problem's).
        shots: Shots per measurement basis.
        seed: Sampling seed.
        readout_mitigation: Apply tensored confusion-matrix inversion to
            every sampled distribution before estimating expectations.
    """

    def __init__(self, problem: VQEProblem, observable: PauliSum,
                 noise_model: NoiseModel | None = None, shots: int = 4096,
                 seed: int | None = 0, readout_mitigation: bool = False):
        self.problem = problem
        self.observable = observable
        self.noise_model = noise_model or problem.noise_model
        self.shots = shots
        self.rng = np.random.default_rng(seed)
        self.readout_mitigation = readout_mitigation
        self.groups: list[MeasurementGroup] = group_qubit_wise_commuting(
            observable)
        self._constant = observable.identity_constant()
        self._matrices = confusion_matrices(self.noise_model)

    @property
    def num_bases(self) -> int:
        return len(self.groups)

    def energy(self, theta: np.ndarray) -> float:
        """One full (sampled) energy estimate at ansatz parameters."""
        circuit = self.problem.bound_ansatz(theta)
        total = self._constant
        coefficients = self.observable.coefficients
        supports = self.observable.table.supports_mask()
        for group in self.groups:
            rotated = circuit.compose(
                group.basis_rotation(self.problem.num_eval_qubits))
            sim = evolve_with_noise(rotated, self.noise_model)
            probs = sim.probabilities_with_readout_error(
                self.noise_model.readout_p01, self.noise_model.readout_p10)
            sampled = self._sample_distribution(probs)
            if self.readout_mitigation:
                sampled = mitigate_probabilities(sampled, self._matrices)
            for idx in group.term_indices:
                qubits = [int(q) for q in np.flatnonzero(supports[idx])]
                total += coefficients[idx] * z_expectation_from_probabilities(
                    sampled, qubits)
        return float(total)

    def _sample_distribution(self, probs: np.ndarray) -> np.ndarray:
        counts = self.rng.multinomial(self.shots, probs)
        return counts / self.shots

    def __call__(self, theta: np.ndarray) -> float:
        return self.energy(theta)
