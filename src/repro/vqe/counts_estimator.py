"""Deprecated home of the counts-based energy estimator.

The implementation moved to :class:`repro.execution.ShotSamplingEstimator`
(with a batched ``estimate_many`` sharing the bound-circuit skeleton and
the precomputed basis rotations).  :class:`CountsEnergyEstimator` remains
as a compatibility shim; prefer::

    from repro.execution import make_estimator
    estimator = make_estimator(problem, observable, mode="shots", shots=4096)
"""

from __future__ import annotations

import warnings

import numpy as np

from ..execution.estimator import ShotSamplingEstimator


class CountsEnergyEstimator(ShotSamplingEstimator):
    """Deprecated alias of :class:`repro.execution.ShotSamplingEstimator`.

    Same constructor, grouping, and sampling streams for identical seeds;
    emits a :class:`DeprecationWarning` and otherwise delegates everything
    to the new estimator.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "repro.vqe.CountsEnergyEstimator is deprecated; use "
            "repro.execution.make_estimator(problem, observable, "
            "mode='shots') instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)

    def energy(self, theta: np.ndarray) -> float:
        """One full (sampled) energy estimate at ansatz parameters."""
        return super().energy(theta)
