"""The online VQE phase: energy estimation (exact and counts-based), SPSA loop."""

from .estimator import EnergyEstimator
from .grouping import MeasurementGroup, group_qubit_wise_commuting, num_measurement_bases
from .counts_estimator import CountsEnergyEstimator
from .runner import VQETrace, run_vqe

__all__ = [
    "CountsEnergyEstimator", "EnergyEstimator", "MeasurementGroup",
    "VQETrace", "group_qubit_wise_commuting", "num_measurement_bases",
    "run_vqe",
]
