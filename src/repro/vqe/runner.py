"""The online VQE phase: SPSA iterations from a method's initial point.

Reproduces the paper's Sec. 6.1 flow: start from the initialization an
:class:`~repro.core.clapton.InitializationResult` provides (``theta = 0`` on
the transformed problem for Clapton, the found Clifford angles on the
original problem for CAFQA/nCAFQA), iterate SPSA against the noisy device
model, and report the convergence trace plus final-point energies under the
model and -- when a hardware twin exists -- the "real device".

Estimation runs through :func:`repro.execution.make_estimator`, and the
trace accounts every tier's evaluations separately (``noisy`` for the SPSA
loop, ``exact`` for the endpoint energies, ``hardware`` for the twin), not
just the noisy estimator's calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.clapton import InitializationResult
from ..execution.estimator import make_estimator
from ..optim.spsa import SPSAConfig, minimize_spsa


@dataclass
class VQETrace:
    """Result of one VQE run.

    Attributes:
        initial_theta / final_theta: Ansatz parameters before/after SPSA.
        initial_energy / final_energy: Exact (infinite-shot) device-model
            energies at those parameters.
        history: Per-iteration SPSA loss estimates (the convergence curves
            of Fig. 6).
        hardware_initial / hardware_final: Twin-model energies when a
            hardware model is attached to the problem (the stars in Fig. 6).
        num_evaluations: Total energy evaluations spent across all tiers
            (SPSA pays 2/iteration on the noisy tier, plus calibration
            probes, endpoint and twin evaluations).
        evaluations_by_tier: The full breakdown: ``noisy`` (SPSA loop),
            ``exact`` (endpoint energies), ``hardware`` (twin endpoints,
            present only with a hardware model).
    """

    initial_theta: np.ndarray
    final_theta: np.ndarray
    initial_energy: float
    final_energy: float
    history: list[float] = field(default_factory=list)
    hardware_initial: float | None = None
    hardware_final: float | None = None
    num_evaluations: int = 0
    evaluations_by_tier: dict[str, int] = field(default_factory=dict)

    @property
    def best_energy(self) -> float:
        return min(self.initial_energy, self.final_energy)

    def running_minimum(self) -> np.ndarray:
        """Monotone best-so-far curve (how Fig. 6 convergence is read)."""
        return np.minimum.accumulate(np.asarray(self.history, dtype=float))

    def smoothed_history(self, window: int = 10) -> np.ndarray:
        """Moving average of the loss estimates (denoised trace)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        values = np.asarray(self.history, dtype=float)
        if len(values) == 0:
            return values
        kernel = np.ones(min(window, len(values))) / min(window, len(values))
        return np.convolve(values, kernel, mode="valid")


def run_vqe(result: InitializationResult, maxiter: int = 300,
            shots: int | None = None, seed: int | None = 0,
            spsa_config: SPSAConfig | None = None,
            mitigation=None) -> VQETrace:
    """Run SPSA-driven VQE from an initialization result.

    Args:
        result: Output of ``clapton`` / ``cafqa`` / ``ncafqa``.
        maxiter: SPSA iterations ("a couple hundred" in Fig. 5; up to a
            thousand in Sec. 6.1).
        shots: Optional per-term shot budget for sampling-noise emulation.
        seed: Seed shared by SPSA perturbations and shot noise.
        spsa_config: Full SPSA override (``maxiter``/``seed`` ignored then).
        mitigation: Mitigation name / ``"zne:folds=3|readout"`` spec /
            strategy instance applied to the *endpoint* energies (the
            reported initial/final and hardware-twin values); ``None``
            falls back to the mitigation recorded on ``result``.  The SPSA
            loop itself always optimizes raw noisy energies -- the paper's
            online phase -- so ``"none"`` runs are bit-identical to the
            pre-mitigation flow.
    """
    from ..mitigation import resolve_mitigation

    problem = result.problem
    observable = result.initial_observable()
    if mitigation is None:
        mitigation = getattr(result, "mitigation", None)
    strategy = resolve_mitigation(mitigation)
    noisy = make_estimator(problem, observable, mode="exact", shots=shots,
                           seed=seed)
    exact = make_estimator(problem, observable, mode="exact")
    if strategy.name != "none":
        exact = strategy.wrap(exact)

    config = spsa_config or SPSAConfig(maxiter=maxiter, seed=seed)
    theta0 = np.asarray(result.initial_theta, dtype=float)
    spsa = minimize_spsa(noisy.energy, theta0, config)

    initial_energy = exact.energy(theta0)
    final_energy = exact.energy(spsa.x)
    hardware_initial = None
    hardware_final = None
    tiers = {"noisy": noisy.num_evaluations, "exact": exact.num_evaluations}
    if problem.hardware_noise_model is not None:
        hardware = make_estimator(problem, observable, mode="exact",
                                  noise_model=problem.hardware_noise_model)
        if strategy.name != "none":
            hardware = strategy.wrap(hardware)
        hardware_initial = hardware.energy(theta0)
        hardware_final = hardware.energy(spsa.x)
        tiers["hardware"] = hardware.num_evaluations
    return VQETrace(
        initial_theta=theta0,
        final_theta=spsa.x,
        initial_energy=initial_energy,
        final_energy=final_energy,
        history=spsa.history,
        hardware_initial=hardware_initial,
        hardware_final=hardware_final,
        num_evaluations=sum(tiers.values()),
        evaluations_by_tier=tiers,
    )
