"""Deprecated home of the exact energy estimator.

The implementation moved to :class:`repro.execution.ExactEstimator` (with a
batched ``estimate_many`` and the full :class:`~repro.execution.EstimateResult`
provenance).  :class:`EnergyEstimator` remains as a compatibility shim with
the historical scalar ``energy(theta)`` surface; prefer::

    from repro.execution import make_estimator
    estimator = make_estimator(problem, observable, mode="exact")
"""

from __future__ import annotations

import warnings

import numpy as np

from ..execution.estimator import ExactEstimator


class EnergyEstimator(ExactEstimator):
    """Deprecated alias of :class:`repro.execution.ExactEstimator`.

    Same constructor and numerics (identical energies and shot-noise
    streams for identical seeds); emits a :class:`DeprecationWarning` and
    otherwise delegates everything to the new estimator.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "repro.vqe.EnergyEstimator is deprecated; use "
            "repro.execution.make_estimator(problem, observable, "
            "mode='exact') instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)

    def energy(self, theta: np.ndarray) -> float:
        """Noisy (optionally shot-sampled) energy at ansatz parameters."""
        return super().energy(theta)
