"""Noisy energy estimation for the online VQE phase.

Each VQE iteration needs ``<H>`` of the bound ansatz under the full device
model.  The estimator evolves the density matrix exactly (the paper's
AerSimulator role) and optionally emulates measurement shot noise by adding
Gaussian noise with the exact per-term sampling variance

    Var[E_hat] = sum_i c_i^2 (1 - <P_i>^2) / shots_i

(each term measured with ``shots`` shots; covariance between qubit-wise
commuting terms measured in shared bases is neglected, which is the usual
conservative emulation).
"""

from __future__ import annotations

import numpy as np

from ..densesim.evaluator import evolve_with_noise, measurement_attenuations
from ..noise.model import NoiseModel
from ..paulis.pauli_sum import PauliSum
from ..core.problem import VQEProblem


class EnergyEstimator:
    """Estimate noisy energies of ``A'(theta)`` against one observable.

    Args:
        problem: The VQE problem bundle (supplies the ansatz and register).
        observable: Hamiltonian on the evaluation register (the transformed
            one for post-Clapton VQE).
        noise_model: Device model; defaults to the problem's.  Pass the
            hardware twin's model to emulate on-device evaluation.
        shots: ``None`` for exact (infinite-shot) estimates, otherwise the
            per-term shot budget used for noise emulation.
        seed: Seed of the shot-noise generator.
    """

    def __init__(self, problem: VQEProblem, observable: PauliSum,
                 noise_model: NoiseModel | None = None,
                 shots: int | None = None, seed: int | None = None):
        self.problem = problem
        self.observable = observable
        self.noise_model = noise_model or problem.noise_model
        if self.noise_model.num_qubits != problem.num_eval_qubits:
            raise ValueError("noise model width must match the eval register")
        self.shots = shots
        self.rng = np.random.default_rng(seed)
        self._attenuation = measurement_attenuations(observable,
                                                     self.noise_model)
        self.num_evaluations = 0

    def energy(self, theta: np.ndarray) -> float:
        """Noisy (optionally shot-sampled) energy at ansatz parameters."""
        self.num_evaluations += 1
        circuit = self.problem.bound_ansatz(theta)
        sim = evolve_with_noise(circuit, self.noise_model)
        values = np.array([sim.pauli_expectation(p)
                           for _, p in self.observable.terms()])
        values = values * self._attenuation
        energy = float(self.observable.coefficients @ values)
        if self.shots is None:
            return energy
        variances = (self.observable.coefficients ** 2
                     * np.clip(1.0 - values ** 2, 0.0, 1.0) / self.shots)
        return energy + float(self.rng.normal(0.0, np.sqrt(variances.sum())))

    def __call__(self, theta: np.ndarray) -> float:
        return self.energy(theta)
