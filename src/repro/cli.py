"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Thin wrappers over the :class:`~repro.experiments.Experiment` façade and
the campaign subsystem:

    repro list                      # benchmark suite (fixed names)
    repro benchmarks --kind physics # registered benchmarks + families
    repro methods                   # registered initialization methods
    repro strategies                # registered search strategies
    repro ground-energy xxz_J0.50   # exact E0
    repro run ising:n=6,J=0.5 --backend nairobi --methods cafqa,clapton
    repro run ising:n=6 --strategy annealing --engine-population 20
    repro molecule LiH 1.5          # chemistry pipeline summary
    repro sweep grid.json --jobs 4  # sharded campaign (resume: --resume)
    repro status grid.campaign      # done/failed/pending counts
    repro report grid.campaign      # markdown figure tables (+ --csv)

The Figure-4 engine working point (s / m / k / |S| / retry rounds) is
adjustable from the command line via the ``--engine-*`` flags shared by
``run`` and ``sweep``.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from .hamiltonians import paper_benchmarks

    for bench in paper_benchmarks(args.qubits):
        print(f"{bench.name:<14} {bench.kind:<10} {bench.num_qubits}q")
    return 0


def _cmd_methods(args) -> int:
    from .methods import available_methods

    for name, method in available_methods().items():
        print(f"{name:<18} {method.description}")
    return 0


def _cmd_strategies(args) -> int:
    from .search import available_strategies

    for name, strategy in available_strategies().items():
        print(f"{name:<18} {strategy.description}")
    return 0


def _cmd_benchmarks(args) -> int:
    from .hamiltonians import (benchmark_families, paper_benchmarks,
                               suite_benchmarks, suite_names)

    for bench in paper_benchmarks(args.qubits):
        if args.kind and bench.kind != args.kind:
            continue
        print(f"{bench.name:<22} {bench.kind:<10} {bench.num_qubits:>2}q  "
              f"{bench.description}")
    families = [f for f in benchmark_families().values()
                if not args.kind or f.kind == args.kind]
    if families:
        print("\nparameterized families (use as 'family:key=value,...'):")
        for family in families:
            print(f"{family.spec_syntax:<34} {family.kind:<10} "
                  f"{family.description}")
    if not args.kind:
        print("\nsuites (use as 'suite:<name>' in campaign benchmark "
              "lists):")
        for name in suite_names():
            print(f"suite:{name:<16} -> "
                  f"{', '.join(suite_benchmarks(name))}")
    return 0


def _resolve_benchmark(name: str, qubits: int):
    """Registry lookup; ``None`` (after a stderr message) when unknown."""
    from .hamiltonians import get_benchmark

    try:
        return get_benchmark(name, qubits)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        print(f"see `repro list --qubits {qubits}` and `repro benchmarks`",
              file=sys.stderr)
        return None


def _cmd_ground_energy(args) -> int:
    from .hamiltonians import ground_state_energy

    bench = _resolve_benchmark(args.benchmark, args.qubits)
    if bench is None:
        return 2
    hamiltonian = bench.hamiltonian()
    print(f"{bench.name}: {hamiltonian.num_terms} terms, "
          f"E0 = {ground_state_energy(hamiltonian):.6f}")
    return 0


def _resolve_method_names(text: str) -> list[str] | None:
    """Split + validate a comma-separated method list; ``None`` (after a
    stderr message with a did-you-mean hint) on any unknown name."""
    from .methods import get_method

    names = list(dict.fromkeys(  # dedupe, preserving order
        m.strip() for m in text.split(",") if m.strip()))
    if not names:
        print("no methods given; see `repro methods`", file=sys.stderr)
        return None
    for name in names:
        try:
            get_method(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            print("see `repro methods`", file=sys.stderr)
            return None
    return names


#: ``--engine-*`` flag destinations -> EngineConfig field names (the
#: Figure-4 working point: s, m, k, |S|, retry rounds).
_ENGINE_FLAGS = {
    "engine_instances": "num_instances",
    "engine_generations": "generations_per_round",
    "engine_top_k": "top_k",
    "engine_population": "population_size",
    "engine_retry_rounds": "retry_rounds",
}


def _engine_overrides(args) -> dict:
    """EngineConfig overrides collected from the ``--engine-*`` flags."""
    return {field: getattr(args, dest)
            for dest, field in _ENGINE_FLAGS.items()
            if getattr(args, dest, None) is not None}


def _resolve_strategy_name(name: str) -> str | None:
    """Validate one strategy name; ``None`` (after a stderr message with
    a did-you-mean hint) when unknown."""
    from .search import get_strategy

    try:
        get_strategy(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        print("see `repro strategies`", file=sys.stderr)
        return None
    return name


def _cmd_run(args) -> int:
    from dataclasses import replace

    from .backends import ALL_BACKENDS
    from .execution import ProcessExecutor
    from .experiments import Experiment, bench_engine

    methods = _resolve_method_names(args.methods or args.method)
    if methods is None:
        return 2
    strategy = _resolve_strategy_name(args.strategy)
    if strategy is None:
        return 2
    if args.backend not in ALL_BACKENDS:
        print(f"unknown backend {args.backend!r}", file=sys.stderr)
        return 2
    backend = ALL_BACKENDS[args.backend]()
    num_qubits = args.qubits
    bench = _resolve_benchmark(args.benchmark, num_qubits)
    if bench is None:
        return 2
    try:
        hamiltonian = bench.hamiltonian()
    except (TypeError, ValueError) as exc:
        # a well-formed spec with a bad parameter *value* only surfaces
        # when the builder runs, e.g. ising:n=abc
        print(f"cannot build benchmark {args.benchmark!r}: {exc}",
              file=sys.stderr)
        return 2
    print(f"{args.benchmark} ({hamiltonian.num_qubits}q) on "
          f"{backend.name}, methods={','.join(methods)}, "
          f"strategy={strategy}, seed={args.seed}")
    executor = ProcessExecutor(args.jobs) if args.jobs > 1 else None
    experiment = Experiment(hamiltonian, backend=backend,
                            name=args.benchmark)
    config = replace(bench_engine(), seed=args.seed,
                     **_engine_overrides(args))
    try:
        result = experiment.run(methods=tuple(methods),
                                config=config,
                                vqe_iterations=args.vqe_iterations,
                                seed=args.seed,
                                executor=executor,
                                strategy=strategy)
    finally:
        if executor is not None:
            executor.close()
    print(f"E0              = {result.e0:.6f}")
    for method in methods:
        run = result.runs[method]
        evaluation = run.evaluation
        if len(methods) > 1:
            print(f"-- {method} --")
        print(f"noise-free      = {evaluation.noiseless:.6f}")
        print(f"clifford model  = {evaluation.clifford_model:.6f}")
        print(f"device model    = {evaluation.device_model:.6f}")
        if run.vqe is not None:
            print(f"VQE final       = {run.vqe.final_energy:.6f} "
                  f"({run.vqe.num_evaluations} evaluations: "
                  f"{run.vqe.evaluations_by_tier})")
        print(f"search: {run.strategy}, {run.engine_rounds} rounds, "
              f"{run.engine_evaluations} evaluations, "
              f"{run.engine_seconds:.1f}s")
    if args.save:
        import json

        with open(args.save, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"saved to {args.save}")
    return 0


def _cmd_molecule(args) -> int:
    from .chem import molecular_hamiltonian
    from .hamiltonians import ground_state_energy

    problem = molecular_hamiltonian(args.name, args.bond_length)
    h = problem.hamiltonian
    print(f"{args.name} at l = {args.bond_length} A (STO-3G, "
          f"{problem.active_space.num_active} active orbitals)")
    print(f"RHF energy = {problem.hf_energy:.6f} Ha "
          f"(converged: {problem.scf.converged})")
    print(f"qubit Hamiltonian: {h.num_qubits} qubits, {h.num_terms} terms")
    print(f"FCI (active space) E0 = {ground_state_energy(h):.6f} Ha")
    if args.save:
        from .paulis.serialization import save_pauli_sum

        save_pauli_sum(h, args.save)
        print(f"saved to {args.save}")
    return 0


def _default_store(spec_path: str) -> str:
    from pathlib import Path

    path = Path(spec_path)
    return str(path.with_suffix(".campaign") if path.suffix
               else path.with_name(path.name + ".campaign"))


def _open_store(path):
    """Open a store for the CLI; ``None`` after a stderr message on any
    unusable path (missing, not a store, corrupt spec)."""
    from .campaigns import ResultStore

    try:
        return ResultStore.open(path)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"cannot open campaign store {str(path)!r}: {exc}",
              file=sys.stderr)
        return None


def _cmd_sweep(args) -> int:
    from dataclasses import replace
    from pathlib import Path

    from .campaigns import CampaignRunner, CampaignSpec, ResultStore
    from .execution import ProcessExecutor

    try:
        spec = CampaignSpec.load(args.spec)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"cannot load campaign spec {args.spec!r}: {exc}",
              file=sys.stderr)
        return 2
    changes = {}
    if args.strategies:
        names = list(dict.fromkeys(  # dedupe, preserving order
            s.strip() for s in args.strategies.split(",") if s.strip()))
        if not names:
            print("no strategies given; see `repro strategies`",
                  file=sys.stderr)
            return 2
        for name in names:
            if _resolve_strategy_name(name) is None:
                return 2
        changes["strategies"] = names
    overrides = _engine_overrides(args)
    if overrides:
        changes["engine_overrides"] = {**spec.engine_overrides,
                                       **overrides}
    if changes:
        try:  # replace re-runs the spec's declaration-time validation
            spec = replace(spec, **changes)
        except ValueError as exc:
            print(f"bad sweep overrides: {exc}", file=sys.stderr)
            return 2
    # fail on a typo'd benchmark now, not as N failed task records
    # (resolution is lazy: nothing is built here, and registry names do
    # not depend on the qubit-size axis)
    from .hamiltonians import get_benchmark

    unknown = []
    for name in spec.expanded_benchmarks():
        try:
            get_benchmark(name)
        except (KeyError, ValueError) as exc:
            unknown.append(name)
            print(exc.args[0], file=sys.stderr)
    if unknown:
        print(f"unknown benchmarks {unknown}; see `repro benchmarks`",
              file=sys.stderr)
        return 2
    store_path = Path(args.store or _default_store(args.spec))
    try:
        store = ResultStore.create(store_path, spec)
    except NotADirectoryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except FileExistsError:
        if not args.resume:
            print(f"store {store_path} already has results; pass --resume "
                  f"to continue it or choose a fresh --store",
                  file=sys.stderr)
            return 2
        store = _open_store(store_path)
        if store is None:
            return 2
        if store.spec.to_dict() != spec.to_dict():
            print(f"spec {args.spec} no longer matches the spec recorded "
                  f"in {store_path}; resume against the original spec "
                  f"(including any sweep overrides) or start a fresh "
                  f"--store", file=sys.stderr)
            return 2
        skipping = len({t.task_id for t in spec.tasks()}
                       & store.completed_ids())
        print(f"resume: skipping {skipping} completed task id(s) "
              f"already in {store_path}")
    total = spec.num_tasks
    done = {"n": len(store.completed_ids())}
    print(f"campaign {spec.name!r}: {total} tasks, "
          f"{done['n']} already done, jobs={args.jobs}, "
          f"store={store_path}")

    def on_record(record):
        done["n"] += 1
        status = record["status"]
        label = record["task"]["benchmark"]
        method = record["task"]["method"]
        print(f"[{done['n']}/{total}] {label}/{method} "
              f"{status} ({record['seconds']:.1f}s)")

    executor = ProcessExecutor(args.jobs) if args.jobs > 1 else None
    runner = CampaignRunner(spec, store, executor=executor)
    try:
        progress = runner.run(on_record=on_record)
    finally:
        if executor is not None:
            executor.close()
    counts = store.counts()
    print(f"done: {counts['done']}/{counts['total']} "
          f"({counts['failed']} failed, {progress.skipped} skipped, "
          f"{progress.seconds:.1f}s)")
    print(f"next: repro report {store_path}")
    return 0 if counts["failed"] == 0 else 1


def _print_strategy_progress(store) -> None:
    """Per-strategy done/failed/pending lines for multi-strategy sweeps."""
    from collections import Counter

    from .campaigns.store import STATUS_DONE, STATUS_FAILED

    try:
        totals = Counter(t.strategy for t in store.spec.tasks())
    except (KeyError, ValueError):
        # unregistered suite/benchmark in this process: per-strategy
        # totals are unknowable; fall back to recorded tasks only
        totals = Counter()
    done: Counter = Counter()
    failed: Counter = Counter()
    for record in store.records():
        strategy = (record.get("task") or {}).get("strategy", "multi_ga")
        if record["status"] == STATUS_DONE:
            done[strategy] += 1
        elif record["status"] == STATUS_FAILED:
            failed[strategy] += 1
    for strategy in store.spec.strategies:
        total = totals.get(strategy, done[strategy] + failed[strategy])
        pending = max(0, total - done[strategy] - failed[strategy])
        print(f"          {strategy:<14} {done[strategy]} done, "
              f"{failed[strategy]} failed, {pending} pending")


def _cmd_status(args) -> int:
    store = _open_store(args.store)
    if store is None:
        return 2
    counts = store.counts()
    print(f"campaign  {store.spec.name}")
    print(f"store     {store.path}")
    print(f"tasks     {counts['total']} total: {counts['done']} done, "
          f"{counts['failed']} failed, {counts['pending']} pending")
    if len(store.spec.strategies) > 1:
        _print_strategy_progress(store)
    unresolved = store.spec.unresolved_suites()
    if unresolved:
        print(f"warning   {unresolved} not registered in this process; "
              f"totals are lower bounds (pending may be underestimated)")
    print(f"wall time {store.total_seconds():.1f}s recorded")
    for task_id in sorted(store.failed_ids()):
        record = store.record(task_id)
        error = (record.get("error") or "").strip().splitlines()
        print(f"  failed {task_id} "
              f"({record['task']['benchmark']}/{record['task']['method']}): "
              f"{error[-1] if error else 'unknown error'}")
    return 0


def _cmd_report(args) -> int:
    from .campaigns import CampaignAggregate, render_report

    store = _open_store(args.store)
    if store is None:
        return 2
    improver = args.improver or "clapton"
    if args.improver is not None and improver not in store.spec.methods:
        # an explicit but typo'd improver would silently drop every eta
        # table (the default may legitimately be absent, e.g. a
        # single-method campaign, and then skips them as before)
        print(f"improver {improver!r} is not a method of this campaign; "
              f"methods: {store.spec.methods}", file=sys.stderr)
        return 2
    aggregate = CampaignAggregate.from_store(store)
    print(render_report(store, tier=args.tier, aggregate=aggregate,
                        improver=improver), end="")
    if args.csv:
        aggregate.write_csv(args.csv)
        print(f"\nrow-level CSV written to {args.csv}")
    return 0


def _add_engine_flags(parser) -> None:
    """The Figure-4 working-point flags shared by ``run`` and ``sweep``.

    Unset flags keep the engine preset's value (``run``) or the spec's
    ``engine_overrides`` (``sweep``).
    """
    group = parser.add_argument_group(
        "engine working point (Figure 4: s / m / k / |S| / retries)")
    group.add_argument("--engine-instances", type=int, metavar="S",
                       help="GA instances per round (s)")
    group.add_argument("--engine-generations", type=int, metavar="M",
                       help="generations per round (m)")
    group.add_argument("--engine-top-k", type=int, metavar="K",
                       help="elites pooled per instance (k)")
    group.add_argument("--engine-population", type=int, metavar="P",
                       help="population size per instance (|S|)")
    group.add_argument("--engine-retry-rounds", type=int, metavar="R",
                       help="non-improving rounds before convergence")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Clapton reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the benchmark suite")
    p_list.add_argument("--qubits", type=int, default=10)
    p_list.set_defaults(fn=_cmd_list)

    p_methods = sub.add_parser(
        "methods", help="list registered initialization methods")
    p_methods.set_defaults(fn=_cmd_methods)

    p_strategies = sub.add_parser(
        "strategies", help="list registered search strategies")
    p_strategies.set_defaults(fn=_cmd_strategies)

    p_bench = sub.add_parser(
        "benchmarks",
        help="list registered benchmarks, families, and suites")
    p_bench.add_argument("--kind", choices=["physics", "chemistry"],
                         help="only list benchmarks of this kind")
    p_bench.add_argument("--qubits", type=int, default=10)
    p_bench.set_defaults(fn=_cmd_benchmarks)

    p_ge = sub.add_parser("ground-energy", help="exact E0 of a benchmark")
    p_ge.add_argument("benchmark")
    p_ge.add_argument("--qubits", type=int, default=10)
    p_ge.set_defaults(fn=_cmd_ground_energy)

    p_run = sub.add_parser("run", help="run one initialization method")
    p_run.add_argument("benchmark")
    p_run.add_argument("--backend", default="toronto")
    p_run.add_argument("--method", default="clapton",
                       help="one registered method (see `repro methods`)")
    p_run.add_argument("--methods",
                       help="comma-separated registered methods; "
                            "overrides --method")
    p_run.add_argument("--strategy", default="multi_ga",
                       help="search strategy every method searches with "
                            "(see `repro strategies`)")
    p_run.add_argument("--qubits", type=int, default=6)
    p_run.add_argument("--vqe-iterations", type=int, default=0,
                       help="SPSA iterations of the online VQE phase")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the engine's GA rounds")
    p_run.add_argument("--seed", type=int, default=0,
                       help="engine + VQE seed (same seed, same numbers)")
    p_run.add_argument("--save", help="write the ExperimentResult JSON here")
    _add_engine_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a campaign grid from a CampaignSpec JSON file")
    p_sweep.add_argument("spec", help="CampaignSpec JSON file")
    p_sweep.add_argument("--store",
                         help="store directory (default: <spec>.campaign)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes tasks are sharded over")
    p_sweep.add_argument("--resume", action="store_true",
                         help="continue an interrupted store, skipping "
                              "completed task ids")
    p_sweep.add_argument("--strategies", "--strategy", dest="strategies",
                         help="comma-separated search strategies "
                              "overriding the spec's strategy axis "
                              "(see `repro strategies`)")
    _add_engine_flags(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_status = sub.add_parser("status", help="campaign store progress")
    p_status.add_argument("store", help="campaign store directory")
    p_status.set_defaults(fn=_cmd_status)

    p_report = sub.add_parser(
        "report", help="markdown figure tables from a campaign store")
    p_report.add_argument("store", help="campaign store directory")
    p_report.add_argument("--tier", default="device_model",
                          choices=["noiseless", "clifford_model",
                                   "device_model", "hardware"],
                          help="noise tier for the eta tables")
    p_report.add_argument("--csv", help="also write row-level CSV here")
    p_report.add_argument("--improver", default=None,
                          help="method the eta tables credit improvements "
                               "to (default: clapton); must be one of the "
                               "campaign's methods")
    p_report.set_defaults(fn=_cmd_report)

    p_mol = sub.add_parser("molecule", help="build a molecular Hamiltonian")
    p_mol.add_argument("name", choices=["H2O", "H6", "LiH"])
    p_mol.add_argument("bond_length", type=float)
    p_mol.add_argument("--save", help="write the Hamiltonian to a JSON file")
    p_mol.set_defaults(fn=_cmd_molecule)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
