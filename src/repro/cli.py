"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Thin wrappers over the :class:`~repro.experiments.Experiment` façade for
quick exploration:

    repro list                      # benchmark suite
    repro ground-energy xxz_J0.50   # exact E0
    repro run ising_J1.00 --backend nairobi --method clapton --jobs 4
    repro molecule LiH 1.5          # chemistry pipeline summary
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from .hamiltonians import paper_benchmarks

    for bench in paper_benchmarks(args.qubits):
        print(f"{bench.name:<14} {bench.kind:<10} {bench.num_qubits}q")
    return 0


def _cmd_ground_energy(args) -> int:
    from .hamiltonians import get_benchmark, ground_state_energy

    bench = get_benchmark(args.benchmark, args.qubits)
    hamiltonian = bench.hamiltonian()
    print(f"{bench.name}: {hamiltonian.num_terms} terms, "
          f"E0 = {ground_state_energy(hamiltonian):.6f}")
    return 0


def _cmd_run(args) -> int:
    from .backends import ALL_BACKENDS
    from .execution import ProcessExecutor
    from .experiments import METHODS, Experiment, bench_engine
    from .hamiltonians import get_benchmark

    if args.method not in METHODS:
        print(f"unknown method {args.method!r}", file=sys.stderr)
        return 2
    if args.backend not in ALL_BACKENDS:
        print(f"unknown backend {args.backend!r}", file=sys.stderr)
        return 2
    backend = ALL_BACKENDS[args.backend]()
    num_qubits = args.qubits
    hamiltonian = get_benchmark(args.benchmark, num_qubits).hamiltonian()
    print(f"{args.benchmark} ({num_qubits}q) on {backend.name}, "
          f"method={args.method}")
    executor = ProcessExecutor(args.jobs) if args.jobs > 1 else None
    experiment = Experiment(hamiltonian, backend=backend,
                            name=args.benchmark)
    try:
        result = experiment.run(methods=(args.method,),
                                config=bench_engine(),
                                vqe_iterations=args.vqe_iterations,
                                executor=executor)
    finally:
        if executor is not None:
            executor.close()
    run = result.runs[args.method]
    evaluation = run.evaluation
    print(f"E0              = {result.e0:.6f}")
    print(f"noise-free      = {evaluation.noiseless:.6f}")
    print(f"clifford model  = {evaluation.clifford_model:.6f}")
    print(f"device model    = {evaluation.device_model:.6f}")
    if run.vqe is not None:
        print(f"VQE final       = {run.vqe.final_energy:.6f} "
              f"({run.vqe.num_evaluations} evaluations: "
              f"{run.vqe.evaluations_by_tier})")
    print(f"engine: {run.engine_rounds} rounds, "
          f"{run.engine_evaluations} evaluations, "
          f"{run.engine_seconds:.1f}s")
    if args.save:
        import json

        with open(args.save, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"saved to {args.save}")
    return 0


def _cmd_molecule(args) -> int:
    from .chem import molecular_hamiltonian
    from .hamiltonians import ground_state_energy

    problem = molecular_hamiltonian(args.name, args.bond_length)
    h = problem.hamiltonian
    print(f"{args.name} at l = {args.bond_length} A (STO-3G, "
          f"{problem.active_space.num_active} active orbitals)")
    print(f"RHF energy = {problem.hf_energy:.6f} Ha "
          f"(converged: {problem.scf.converged})")
    print(f"qubit Hamiltonian: {h.num_qubits} qubits, {h.num_terms} terms")
    print(f"FCI (active space) E0 = {ground_state_energy(h):.6f} Ha")
    if args.save:
        from .paulis.serialization import save_pauli_sum

        save_pauli_sum(h, args.save)
        print(f"saved to {args.save}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Clapton reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the benchmark suite")
    p_list.add_argument("--qubits", type=int, default=10)
    p_list.set_defaults(fn=_cmd_list)

    p_ge = sub.add_parser("ground-energy", help="exact E0 of a benchmark")
    p_ge.add_argument("benchmark")
    p_ge.add_argument("--qubits", type=int, default=10)
    p_ge.set_defaults(fn=_cmd_ground_energy)

    p_run = sub.add_parser("run", help="run one initialization method")
    p_run.add_argument("benchmark")
    p_run.add_argument("--backend", default="toronto")
    p_run.add_argument("--method", default="clapton")
    p_run.add_argument("--qubits", type=int, default=6)
    p_run.add_argument("--vqe-iterations", type=int, default=0,
                       help="SPSA iterations of the online VQE phase")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the engine's GA rounds")
    p_run.add_argument("--save", help="write the ExperimentResult JSON here")
    p_run.set_defaults(fn=_cmd_run)

    p_mol = sub.add_parser("molecule", help="build a molecular Hamiltonian")
    p_mol.add_argument("name", choices=["H2O", "H6", "LiH"])
    p_mol.add_argument("bond_length", type=float)
    p_mol.add_argument("--save", help="write the Hamiltonian to a JSON file")
    p_mol.set_defaults(fn=_cmd_molecule)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
