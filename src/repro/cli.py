"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Thin wrappers over the :class:`~repro.experiments.Experiment` façade and
the campaign subsystem:

    repro list                      # benchmark suite (fixed names)
    repro benchmarks --kind physics # registered benchmarks + families
    repro methods                   # registered initialization methods
    repro strategies                # registered search strategies
    repro mitigations               # registered mitigation strategies
    repro ground-energy xxz_J0.50   # exact E0
    repro run ising:n=6,J=0.5 --backend nairobi --methods cafqa,clapton
    repro run ising:n=6 --strategy annealing --engine-population 20
    repro run ising:n=6 --mitigation "zne:folds=3|readout"
    repro molecule LiH 1.5          # chemistry pipeline summary
    repro sweep grid.json --jobs 4  # sharded campaign (resume: --resume)
    repro status grid.campaign      # done/failed/pending counts
    repro report grid.campaign      # markdown figure tables (+ --csv)

Campaigns can also run as a long-lived service (see
:mod:`repro.campaigns.service` for the architecture):

    repro serve --root ./campaigns --port 8000     # scheduler + HTTP
    repro worker --connect http://host:8000        # lease-driven worker
    repro submit grid.json --connect http://host:8000 --watch

The Figure-4 engine working point (s / m / k / |S| / retry rounds) is
adjustable from the command line via the ``--engine-*`` flags shared by
``run`` and ``sweep``.
"""

from __future__ import annotations

import argparse
import sys


def _setup_logging(verbosity: int, label: str | None = None) -> None:
    """Root logging config for the service verbs (``-v``/``-q`` counts).

    0 is quiet (warnings only); each ``-v`` raises the level, each
    ``-q`` lowers it.  ``label`` (the worker id) lands in every line so
    interleaved multi-worker logs stay attributable.
    """
    import logging

    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    tag = f" [{label}]" if label else ""
    logging.basicConfig(
        level=level,
        format=f"%(asctime)s %(levelname).1s %(name)s{tag}: %(message)s",
        datefmt="%H:%M:%S")


def _trace_context(trace: str | None, default_path) -> tuple:
    """``--trace`` value -> ``(context manager, path or None)``.

    ``--trace`` with no argument resolves to ``default_path`` (beside
    the campaign store where there is one); omitted entirely, tracing
    stays the no-op default.
    """
    from contextlib import nullcontext

    if trace is None:
        return nullcontext(None), None
    from .obs import JsonlTracer, use_tracer

    path = str(default_path) if trace == "auto" else trace
    return use_tracer(JsonlTracer(path)), path


def _cmd_list(args) -> int:
    from .hamiltonians import paper_benchmarks

    for bench in paper_benchmarks(args.qubits):
        print(f"{bench.name:<14} {bench.kind:<10} {bench.num_qubits}q")
    return 0


def _cmd_methods(args) -> int:
    from .methods import available_methods

    for name, method in available_methods().items():
        print(f"{name:<18} {method.description}")
    return 0


def _cmd_strategies(args) -> int:
    from .search import available_strategies

    for name, strategy in available_strategies().items():
        print(f"{name:<18} {strategy.description}")
    return 0


def _cmd_mitigations(args) -> int:
    from .mitigation import available_mitigations

    for name, mitigation in available_mitigations().items():
        print(f"{name:<18} {mitigation.description}")
    print("\ncompose with ':' parameters and '|' stages, e.g. "
          "\"zne:folds=5,fit=richardson|readout\"")
    return 0


def _cmd_benchmarks(args) -> int:
    from .hamiltonians import (benchmark_families, paper_benchmarks,
                               suite_benchmarks, suite_names)

    for bench in paper_benchmarks(args.qubits):
        if args.kind and bench.kind != args.kind:
            continue
        print(f"{bench.name:<22} {bench.kind:<10} {bench.num_qubits:>2}q  "
              f"{bench.description}")
    families = [f for f in benchmark_families().values()
                if not args.kind or f.kind == args.kind]
    if families:
        print("\nparameterized families (use as 'family:key=value,...'):")
        for family in families:
            print(f"{family.spec_syntax:<34} {family.kind:<10} "
                  f"{family.description}")
    if not args.kind:
        print("\nsuites (use as 'suite:<name>' in campaign benchmark "
              "lists):")
        for name in suite_names():
            print(f"suite:{name:<16} -> "
                  f"{', '.join(suite_benchmarks(name))}")
    return 0


def _resolve_benchmark(name: str, qubits: int):
    """Registry lookup; ``None`` (after a stderr message) when unknown."""
    from .hamiltonians import get_benchmark

    try:
        return get_benchmark(name, qubits)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        print(f"see `repro list --qubits {qubits}` and `repro benchmarks`",
              file=sys.stderr)
        return None


def _cmd_ground_energy(args) -> int:
    from .hamiltonians import ground_state_energy

    bench = _resolve_benchmark(args.benchmark, args.qubits)
    if bench is None:
        return 2
    hamiltonian = bench.hamiltonian()
    print(f"{bench.name}: {hamiltonian.num_terms} terms, "
          f"E0 = {ground_state_energy(hamiltonian):.6f}")
    return 0


def _resolve_method_names(text: str) -> list[str] | None:
    """Split + validate a comma-separated method list; ``None`` (after a
    stderr message with a did-you-mean hint) on any unknown name."""
    from .methods import get_method

    names = list(dict.fromkeys(  # dedupe, preserving order
        m.strip() for m in text.split(",") if m.strip()))
    if not names:
        print("no methods given; see `repro methods`", file=sys.stderr)
        return None
    for name in names:
        try:
            get_method(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            print("see `repro methods`", file=sys.stderr)
            return None
    return names


#: ``--engine-*`` flag destinations -> EngineConfig field names (the
#: Figure-4 working point: s, m, k, |S|, retry rounds).
_ENGINE_FLAGS = {
    "engine_instances": "num_instances",
    "engine_generations": "generations_per_round",
    "engine_top_k": "top_k",
    "engine_population": "population_size",
    "engine_retry_rounds": "retry_rounds",
}


def _engine_overrides(args) -> dict:
    """EngineConfig overrides collected from the ``--engine-*`` flags."""
    return {field: getattr(args, dest)
            for dest, field in _ENGINE_FLAGS.items()
            if getattr(args, dest, None) is not None}


def _resolve_strategy_name(name: str) -> str | None:
    """Validate one strategy name; ``None`` (after a stderr message with
    a did-you-mean hint) when unknown."""
    from .search import get_strategy

    try:
        get_strategy(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        print("see `repro strategies`", file=sys.stderr)
        return None
    return name


def _resolve_mitigation_spec(spec: str) -> str | None:
    """Validate one mitigation spec (name, parameterized, or composed);
    ``None`` (after a stderr message with a did-you-mean hint) when it
    does not resolve."""
    from .mitigation import resolve_mitigation

    try:
        resolve_mitigation(spec)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        print("see `repro mitigations`", file=sys.stderr)
        return None
    return spec


def _cmd_run(args) -> int:
    from dataclasses import replace

    from .backends import ALL_BACKENDS
    from .execution import ProcessExecutor
    from .experiments import Experiment, bench_engine

    methods = _resolve_method_names(args.methods or args.method)
    if methods is None:
        return 2
    strategy = _resolve_strategy_name(args.strategy)
    if strategy is None:
        return 2
    mitigation = _resolve_mitigation_spec(args.mitigation)
    if mitigation is None:
        return 2
    if args.backend not in ALL_BACKENDS:
        print(f"unknown backend {args.backend!r}", file=sys.stderr)
        return 2
    backend = ALL_BACKENDS[args.backend]()
    num_qubits = args.qubits
    bench = _resolve_benchmark(args.benchmark, num_qubits)
    if bench is None:
        return 2
    try:
        hamiltonian = bench.hamiltonian()
    except (TypeError, ValueError) as exc:
        # a well-formed spec with a bad parameter *value* only surfaces
        # when the builder runs, e.g. ising:n=abc
        print(f"cannot build benchmark {args.benchmark!r}: {exc}",
              file=sys.stderr)
        return 2
    mitigation_tag = ("" if mitigation == "none"
                      else f", mitigation={mitigation}")
    print(f"{args.benchmark} ({hamiltonian.num_qubits}q) on "
          f"{backend.name}, methods={','.join(methods)}, "
          f"strategy={strategy}{mitigation_tag}, seed={args.seed}")
    executor = ProcessExecutor(args.jobs) if args.jobs > 1 else None
    experiment = Experiment(hamiltonian, backend=backend,
                            name=args.benchmark)
    config = replace(bench_engine(), seed=args.seed,
                     **_engine_overrides(args))
    ctx, trace_path = _trace_context(args.trace, "trace.jsonl")
    try:
        with ctx:
            from .obs import get_tracer

            with get_tracer().span("cli.run", benchmark=args.benchmark,
                                   strategy=strategy,
                                   mitigation=mitigation,
                                   seed=args.seed):
                result = experiment.run(methods=tuple(methods),
                                        config=config,
                                        vqe_iterations=args.vqe_iterations,
                                        seed=args.seed,
                                        executor=executor,
                                        strategy=strategy,
                                        mitigation=mitigation)
    finally:
        if executor is not None:
            executor.close()
    if trace_path is not None:
        print(f"trace written to {trace_path} "
              f"(repro trace summary {trace_path})")
    print(f"E0              = {result.e0:.6f}")
    for method in methods:
        run = result.runs[method]
        evaluation = run.evaluation
        if len(methods) > 1:
            print(f"-- {method} --")
        print(f"noise-free      = {evaluation.noiseless:.6f}")
        print(f"clifford model  = {evaluation.clifford_model:.6f}")
        if evaluation.device_model_raw is not None:
            print(f"device model    = {evaluation.device_model:.6f} "
                  f"({run.mitigation}; raw "
                  f"{evaluation.device_model_raw:.6f})")
        else:
            print(f"device model    = {evaluation.device_model:.6f}")
        if run.vqe is not None:
            print(f"VQE final       = {run.vqe.final_energy:.6f} "
                  f"({run.vqe.num_evaluations} evaluations: "
                  f"{run.vqe.evaluations_by_tier})")
        print(f"search: {run.strategy}, {run.engine_rounds} rounds, "
              f"{run.engine_evaluations} evaluations, "
              f"{run.engine_seconds:.1f}s")
    if args.save:
        import json

        with open(args.save, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"saved to {args.save}")
    return 0


def _cmd_molecule(args) -> int:
    from .chem import molecular_hamiltonian
    from .hamiltonians import ground_state_energy

    problem = molecular_hamiltonian(args.name, args.bond_length)
    h = problem.hamiltonian
    print(f"{args.name} at l = {args.bond_length} A (STO-3G, "
          f"{problem.active_space.num_active} active orbitals)")
    print(f"RHF energy = {problem.hf_energy:.6f} Ha "
          f"(converged: {problem.scf.converged})")
    print(f"qubit Hamiltonian: {h.num_qubits} qubits, {h.num_terms} terms")
    print(f"FCI (active space) E0 = {ground_state_energy(h):.6f} Ha")
    if args.save:
        from .paulis.serialization import save_pauli_sum

        save_pauli_sum(h, args.save)
        print(f"saved to {args.save}")
    return 0


def _default_store(spec_path: str) -> str:
    from pathlib import Path

    path = Path(spec_path)
    return str(path.with_suffix(".campaign") if path.suffix
               else path.with_name(path.name + ".campaign"))


def _open_store(path):
    """Open a store for the CLI; ``None`` after a stderr message on any
    unusable path (missing, not a store, corrupt spec)."""
    from .campaigns import ResultStore

    try:
        return ResultStore.open(path)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"cannot open campaign store {str(path)!r}: {exc}",
              file=sys.stderr)
        return None


def _cmd_sweep(args) -> int:
    from dataclasses import replace
    from pathlib import Path

    from .campaigns import CampaignRunner, CampaignSpec, ResultStore
    from .execution import ProcessExecutor

    try:
        spec = CampaignSpec.load(args.spec)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"cannot load campaign spec {args.spec!r}: {exc}",
              file=sys.stderr)
        return 2
    changes = {}
    if args.strategies:
        names = list(dict.fromkeys(  # dedupe, preserving order
            s.strip() for s in args.strategies.split(",") if s.strip()))
        if not names:
            print("no strategies given; see `repro strategies`",
                  file=sys.stderr)
            return 2
        for name in names:
            if _resolve_strategy_name(name) is None:
                return 2
        changes["strategies"] = names
    if args.mitigations:
        from .mitigation import split_mitigation_specs

        # spec-aware split: "," inside one spec's parameters (e.g.
        # "zne:folds=3,fit=exp") does not separate axis values
        specs = split_mitigation_specs(args.mitigations)
        if not specs:
            print("no mitigations given; see `repro mitigations`",
                  file=sys.stderr)
            return 2
        for spec_text in specs:
            if _resolve_mitigation_spec(spec_text) is None:
                return 2
        changes["mitigations"] = specs
    overrides = _engine_overrides(args)
    if overrides:
        changes["engine_overrides"] = {**spec.engine_overrides,
                                       **overrides}
    if changes:
        try:  # replace re-runs the spec's declaration-time validation
            spec = replace(spec, **changes)
        except ValueError as exc:
            print(f"bad sweep overrides: {exc}", file=sys.stderr)
            return 2
    # fail on a typo'd benchmark now, not as N failed task records
    # (resolution is lazy: nothing is built here, and registry names do
    # not depend on the qubit-size axis)
    from .hamiltonians import get_benchmark

    unknown = []
    for name in spec.expanded_benchmarks():
        try:
            get_benchmark(name)
        except (KeyError, ValueError) as exc:
            unknown.append(name)
            print(exc.args[0], file=sys.stderr)
    if unknown:
        print(f"unknown benchmarks {unknown}; see `repro benchmarks`",
              file=sys.stderr)
        return 2
    store_path = Path(args.store or _default_store(args.spec))
    try:
        store = ResultStore.create(store_path, spec)
    except NotADirectoryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except FileExistsError:
        if not args.resume:
            print(f"store {store_path} already has results; pass --resume "
                  f"to continue it or choose a fresh --store",
                  file=sys.stderr)
            return 2
        store = _open_store(store_path)
        if store is None:
            return 2
        if store.spec.to_dict() != spec.to_dict():
            print(f"spec {args.spec} no longer matches the spec recorded "
                  f"in {store_path}; resume against the original spec "
                  f"(including any sweep overrides) or start a fresh "
                  f"--store", file=sys.stderr)
            return 2
        skipping = len({t.task_id for t in spec.tasks()}
                       & store.completed_ids())
        print(f"resume: skipping {skipping} completed task id(s) "
              f"already in {store_path}")
    total = spec.num_tasks
    done = {"n": len(store.completed_ids())}
    print(f"campaign {spec.name!r}: {total} tasks, "
          f"{done['n']} already done, jobs={args.jobs}, "
          f"store={store_path}")

    def on_record(record):
        done["n"] += 1
        status = record["status"]
        label = record["task"]["benchmark"]
        method = record["task"]["method"]
        print(f"[{done['n']}/{total}] {label}/{method} "
              f"{status} ({record['seconds']:.1f}s)")

    from .campaigns import RetryPolicy

    try:
        retry = RetryPolicy(max_attempts=args.max_attempts,
                            backoff_base=args.backoff)
    except ValueError as exc:
        print(f"bad retry policy: {exc}", file=sys.stderr)
        return 2
    executor = ProcessExecutor(args.jobs) if args.jobs > 1 else None
    runner = CampaignRunner(spec, store, executor=executor)
    ctx, trace_path = _trace_context(args.trace,
                                     store_path / "trace.jsonl")
    try:
        with ctx:
            from .obs import get_tracer

            with get_tracer().span("cli.sweep", campaign=spec.name,
                                   tasks=total, jobs=args.jobs):
                progress = runner.run(on_record=on_record, retry=retry)
    finally:
        store.close()
        if executor is not None:
            executor.close()
    counts = store.counts()
    retried = f", {progress.retried} retried" if progress.retried else ""
    print(f"done: {counts['done']}/{counts['total']} "
          f"({counts['failed']} failed, {progress.skipped} skipped"
          f"{retried}, {progress.seconds:.1f}s)")
    if trace_path is not None:
        print(f"trace written to {trace_path} "
              f"(repro trace summary {trace_path})")
    print(f"next: repro report {store_path}")
    return 0 if counts["failed"] == 0 else 1


def _print_strategy_progress(store) -> None:
    """Per-strategy done/failed/pending lines for multi-strategy sweeps."""
    from collections import Counter

    from .campaigns.store import STATUS_DONE, STATUS_FAILED

    try:
        totals = Counter(t.strategy for t in store.spec.tasks())
    except (KeyError, ValueError):
        # unregistered suite/benchmark in this process: per-strategy
        # totals are unknowable; fall back to recorded tasks only
        totals = Counter()
    done: Counter = Counter()
    failed: Counter = Counter()
    for record in store.records():
        strategy = (record.get("task") or {}).get("strategy", "multi_ga")
        if record["status"] == STATUS_DONE:
            done[strategy] += 1
        elif record["status"] == STATUS_FAILED:
            failed[strategy] += 1
    for strategy in store.spec.strategies:
        total = totals.get(strategy, done[strategy] + failed[strategy])
        pending = max(0, total - done[strategy] - failed[strategy])
        print(f"          {strategy:<14} {done[strategy]} done, "
              f"{failed[strategy]} failed, {pending} pending")


def _status_line(snapshot: dict) -> str:
    """One progress line with throughput and ETA columns.

    ``tasks_per_second`` / ``eta_seconds`` are ``None`` until the
    scheduler has seen enough completions to estimate them; render a
    dash rather than a bogus number.
    """
    rate = snapshot.get("tasks_per_second")
    eta = snapshot.get("eta_seconds")
    rate_col = "-" if rate is None else f"{rate:.2f}/s"
    eta_col = "-" if eta is None else f"{eta:.0f}s"
    return (f"{snapshot['done']}/{snapshot['total']} done, "
            f"{snapshot['failed']} failed, "
            f"{snapshot['leased']} leased, "
            f"{rate_col}, eta {eta_col}")


def _remote_status(args) -> int:
    """``repro status --connect URL``: snapshot, stream, or poll."""
    import json as jsonlib
    import time
    from urllib import request as urlrequest
    from urllib.error import HTTPError, URLError
    from urllib.parse import urlencode

    base = args.connect.rstrip("/")

    def status_url(stream: bool = False) -> str:
        query = {}
        if args.campaign:
            query["campaign"] = args.campaign
        if stream:
            query["stream"] = "1"
        return (base + "/status"
                + ("?" + urlencode(query) if query else ""))

    def fetch(url: str) -> dict:
        with urlrequest.urlopen(url, timeout=30.0) as resp:
            return jsonlib.loads(resp.read().decode())

    try:
        if not args.watch:
            snapshot = fetch(status_url())
            print(f"campaign  {snapshot['campaign']} "
                  f"({snapshot['name']})")
            print(f"progress  {_status_line(snapshot)}")
            return 0
        if not args.no_stream:
            # server-pushed NDJSON snapshots until the campaign is done
            with urlrequest.urlopen(status_url(stream=True),
                                    timeout=60.0) as resp:
                last = None
                for raw in resp:
                    snapshot = jsonlib.loads(raw.decode())
                    line = _status_line(snapshot)
                    if line != last:
                        print(line)
                        last = line
            return 0
        # poll fallback: plain GETs on an interval (proxies that buffer
        # chunked responses, or a server without streaming)
        last = None
        while True:
            snapshot = fetch(status_url())
            line = _status_line(snapshot)
            if line != last:
                print(line)
                last = line
            if snapshot.get("complete"):
                return 0
            time.sleep(args.interval)
    except HTTPError as exc:
        try:
            detail = jsonlib.loads(exc.read().decode()).get("error", "")
        except (ValueError, OSError):
            detail = ""
        print(f"server rejected the request: {exc.code} {detail}",
              file=sys.stderr)
        return 2
    except (URLError, ConnectionError, TimeoutError) as exc:
        print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_status(args) -> int:
    if args.connect:
        return _remote_status(args)
    if not args.store:
        print("a campaign store directory (or --connect URL) is "
              "required", file=sys.stderr)
        return 2
    store = _open_store(args.store)
    if store is None:
        return 2
    counts = store.counts()
    print(f"campaign  {store.spec.name}")
    print(f"store     {store.path}")
    print(f"tasks     {counts['total']} total: {counts['done']} done, "
          f"{counts['failed']} failed, {counts['pending']} pending")
    if len(store.spec.strategies) > 1:
        _print_strategy_progress(store)
    unresolved = store.spec.unresolved_suites()
    if unresolved:
        print(f"warning   {unresolved} not registered in this process; "
              f"totals are lower bounds (pending may be underestimated)")
    print(f"wall time {store.total_seconds():.1f}s recorded")
    for task_id in sorted(store.failed_ids()):
        record = store.record(task_id)
        error = (record.get("error") or "").strip().splitlines()
        print(f"  failed {task_id} "
              f"({record['task']['benchmark']}/{record['task']['method']}): "
              f"{error[-1] if error else 'unknown error'}")
    return 0


def _cmd_report(args) -> int:
    from .campaigns import CampaignAggregate, render_report

    store = _open_store(args.store)
    if store is None:
        return 2
    improver = args.improver or "clapton"
    if args.improver is not None and improver not in store.spec.methods:
        # an explicit but typo'd improver would silently drop every eta
        # table (the default may legitimately be absent, e.g. a
        # single-method campaign, and then skips them as before)
        print(f"improver {improver!r} is not a method of this campaign; "
              f"methods: {store.spec.methods}", file=sys.stderr)
        return 2
    aggregate = CampaignAggregate.from_store(store)
    try:
        print(render_report(store, tier=args.tier, aggregate=aggregate,
                            improver=improver, strategy=args.strategy,
                            mitigation=args.mitigation), end="")
    except KeyError as exc:
        # filtered() names the campaign's actual axis values
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.csv:
        aggregate.write_csv(args.csv)
        print(f"\nrow-level CSV written to {args.csv}")
    return 0


# ----------------------------------------------------------------------
# Campaign service verbs (see repro.campaigns.service)
# ----------------------------------------------------------------------
def _load_spec_payload(path: str) -> dict | None:
    """Spec file -> JSON payload; ``None`` after a stderr message."""
    import json
    from pathlib import Path

    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot load campaign spec {path!r}: {exc}",
              file=sys.stderr)
        return None


def _cmd_serve(args) -> int:
    import threading
    import time
    from pathlib import Path

    from .campaigns import RetryPolicy
    from .campaigns.service import (
        LocalSchedulerClient,
        ServiceState,
        run_worker,
        start_server,
    )

    _setup_logging(args.verbose - args.quiet)
    try:
        retry = RetryPolicy(max_attempts=args.max_attempts,
                            backoff_base=args.backoff)
    except ValueError as exc:
        print(f"bad retry policy: {exc}", file=sys.stderr)
        return 2
    state = ServiceState(root=args.root, retry=retry,
                         lease_ttl=args.lease_ttl,
                         max_outstanding=args.max_outstanding)
    for spec_path in args.spec or []:
        payload = _load_spec_payload(spec_path)
        if payload is None:
            return 2
        try:
            campaign, resumed = state.submit(payload)
        except (ValueError, TypeError, KeyError, OSError) as exc:
            print(f"cannot register {spec_path!r}: {exc}",
                  file=sys.stderr)
            return 2
        status = campaign.status()
        print(f"campaign {campaign.id}: {status['total']} tasks, "
              f"{status['done']} done"
              f"{' (resumed)' if resumed else ''}")
    for store_path in args.store or []:
        try:
            campaign = state.attach(store_path)
        except (OSError, ValueError, TypeError, KeyError) as exc:
            print(f"cannot attach store {store_path!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"campaign {campaign.id}: attached from {store_path}")
    ctx, trace_path = _trace_context(args.trace,
                                     Path(args.root) / "trace.jsonl")
    with ctx:
        server = start_server(state, host=args.host, port=args.port,
                              verbose=args.verbose > 0)
        print(f"serving at {server.url} (lease ttl {args.lease_ttl:g}s, "
              f"max attempts {args.max_attempts}, root {args.root})")
        if trace_path is not None:
            print(f"tracing to {trace_path}")
        worker_threads = []
        client = LocalSchedulerClient(state)
        for i in range(args.local_workers):
            thread = threading.Thread(
                target=run_worker, args=(client,),
                kwargs={"worker_id": f"local-{i}", "poll_interval": 0.2,
                        "exit_on_idle": args.until_done},
                daemon=True, name=f"local-worker-{i}")
            thread.start()
            worker_threads.append(thread)
        if worker_threads:
            print(f"{len(worker_threads)} local worker(s) attached")
        try:
            if args.until_done:
                while not state.all_done:
                    time.sleep(0.2)
                for thread in worker_threads:
                    thread.join(timeout=10)
                failed = 0
                for campaign in state.campaigns():
                    status = campaign.status()
                    failed += status["failed"]
                    print(f"campaign {campaign.id}: {status['done']}/"
                          f"{status['total']} done, {status['failed']} "
                          f"failed, {status['leases_stolen']} leases "
                          f"stolen")
                return 0 if failed == 0 else 1
            while True:  # serve forever; ctrl-C (or a signal) stops us
                time.sleep(1.0)
        except KeyboardInterrupt:
            print("\nshutting down")
            return 0
        finally:
            server.stop()


def _cmd_worker(args) -> int:
    from urllib.error import URLError

    from .campaigns.service import (
        HttpSchedulerClient,
        default_worker_id,
        run_worker,
    )

    client = HttpSchedulerClient(args.connect)
    worker_id = args.worker_id or default_worker_id()
    _setup_logging(args.verbose - args.quiet, label=worker_id)
    print(f"worker {worker_id} -> {args.connect}")

    def on_event(kind, payload):
        if kind == "lease":
            task = payload["task"]
            print(f"  lease {payload['task_id'][:10]} "
                  f"{task['benchmark']}/{task['method']}")
        elif kind == "record":
            record = payload["record"]
            print(f"  {record['status']} {record['task_id'][:10]} "
                  f"({record['seconds']:.1f}s)")
        elif kind == "lost":
            print(f"  server unreachable: {payload['error']}",
                  file=sys.stderr)

    ctx, trace_path = _trace_context(args.trace,
                                     f"trace-{worker_id}.jsonl")
    try:
        with ctx:
            executed = run_worker(client, worker_id,
                                  poll_interval=args.poll,
                                  exit_on_idle=args.exit_on_idle,
                                  max_tasks=args.max_tasks,
                                  on_event=on_event)
    except (URLError, ConnectionError, TimeoutError) as exc:
        print(f"worker {worker_id}: lost the scheduler at "
              f"{args.connect}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(f"\nworker {worker_id}: interrupted")
        return 0
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    print(f"worker {worker_id}: {executed} task(s) executed")
    return 0


def _cmd_submit(args) -> int:
    import json
    import time
    from urllib import request as urlrequest
    from urllib.error import URLError

    payload = _load_spec_payload(args.spec)
    if payload is None:
        return 2
    base = args.connect.rstrip("/")

    def http_json(path: str, body: dict | None = None) -> dict:
        if body is not None:
            req = urlrequest.Request(
                base + path, data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"})
        else:
            req = urlrequest.Request(base + path)
        with urlrequest.urlopen(req, timeout=30.0) as resp:
            return json.loads(resp.read().decode())

    try:
        submitted = http_json("/campaigns", payload)
    except (URLError, ConnectionError, TimeoutError) as exc:
        print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    if "error" in submitted:
        print(f"submit rejected: {submitted['error']}", file=sys.stderr)
        return 2
    cid = submitted["campaign"]
    print(f"campaign {cid}: {submitted['total']} tasks, "
          f"{submitted['done']} done"
          f"{' (resumed)' if submitted.get('resumed') else ''}")
    if not args.watch:
        print(f"watch:  repro submit {args.spec} --connect "
              f"{args.connect} --watch")
        return 0
    last = None
    while True:
        try:
            status = http_json(f"/status?campaign={cid}")
        except (URLError, ConnectionError, TimeoutError) as exc:
            print(f"lost the server: {exc}", file=sys.stderr)
            return 1
        line = (f"{status['done']}/{status['total']} done, "
                f"{status['failed']} failed, {status['leased']} leased")
        if line != last:
            print(line)
            last = line
        if status["done"] + status["failed"] >= status["total"]:
            break
        time.sleep(args.poll)
    report = urlrequest.urlopen(
        f"{base}/report?campaign={cid}", timeout=30.0).read().decode()
    print(report, end="")
    return 0 if status["failed"] == 0 else 1


def _fetch_merged_trace(connect: str, campaign: str) -> str:
    """``GET /trace?campaign=ID`` from a running ``repro serve``."""
    from urllib import request as urlrequest

    url = (connect.rstrip("/") + "/trace?campaign="
           + urlrequest.quote(campaign))
    with urlrequest.urlopen(url, timeout=30.0) as resp:
        return resp.read().decode()


def _cmd_trace_summary(args) -> int:
    from .obs import (parse_trace_lines, render_summary, summarize,
                      summarize_spans)

    if args.connect:
        from urllib.error import HTTPError, URLError

        if not args.campaign:
            print("--connect requires --campaign ID", file=sys.stderr)
            return 2
        try:
            text = _fetch_merged_trace(args.connect, args.campaign)
        except HTTPError as exc:
            detail = ("no trace ingested yet" if exc.code == 404
                      else str(exc))
            print(f"server has no trace for campaign "
                  f"{args.campaign!r}: {detail}", file=sys.stderr)
            return 1
        except (URLError, ConnectionError, TimeoutError) as exc:
            print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
            return 1
        meta, spans = parse_trace_lines(text.splitlines())
        summary = summarize_spans(spans, meta)
        source = f"{args.connect} campaign {args.campaign}"
    elif args.trace:
        try:
            summary = summarize(args.trace)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 2
        source = args.trace
    else:
        print("give a trace.jsonl path or --connect URL --campaign ID",
              file=sys.stderr)
        return 2
    if summary.num_spans == 0:
        print(f"no spans in {source}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(render_summary(summary, max_depth=args.depth), end="")
    return 0


def _cmd_trace_export(args) -> int:
    from .obs import export_chrome_trace

    output = args.output or (args.trace + ".perfetto.json")
    try:
        events = export_chrome_trace(args.trace, output)
    except (OSError, ValueError) as exc:
        print(f"cannot export trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    print(f"{events} event(s) written to {output} "
          f"(open at https://ui.perfetto.dev)")
    return 0


def _cmd_bench_compare(args) -> int:
    from .obs import compare_files, parse_tolerance, render_markdown

    try:
        tolerance = parse_tolerance(args.tolerance)
    except ValueError as exc:
        print(f"bad --tolerance: {exc}", file=sys.stderr)
        return 2
    try:
        result = compare_files(args.run, args.baseline,
                               tolerance=tolerance)
    except (OSError, ValueError) as exc:
        print(f"cannot compare: {exc}", file=sys.stderr)
        return 2
    print(render_markdown(result, show_ok=not args.regressions_only))
    return 1 if result.regressions else 0


def _cmd_metrics(args) -> int:
    from urllib import request as urlrequest
    from urllib.error import URLError

    url = args.connect.rstrip("/") + "/metrics"
    try:
        with urlrequest.urlopen(url, timeout=30.0) as resp:
            text = resp.read().decode()
    except (URLError, ConnectionError, TimeoutError) as exc:
        print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1
    if args.name:
        # keep a family's HELP/TYPE header with its samples
        lines = [line for line in text.splitlines()
                 if args.name in line]
        text = "\n".join(lines) + ("\n" if lines else "")
    print(text, end="")
    return 0


def _add_engine_flags(parser) -> None:
    """The Figure-4 working-point flags shared by ``run`` and ``sweep``.

    Unset flags keep the engine preset's value (``run``) or the spec's
    ``engine_overrides`` (``sweep``).
    """
    group = parser.add_argument_group(
        "engine working point (Figure 4: s / m / k / |S| / retries)")
    group.add_argument("--engine-instances", type=int, metavar="S",
                       help="GA instances per round (s)")
    group.add_argument("--engine-generations", type=int, metavar="M",
                       help="generations per round (m)")
    group.add_argument("--engine-top-k", type=int, metavar="K",
                       help="elites pooled per instance (k)")
    group.add_argument("--engine-population", type=int, metavar="P",
                       help="population size per instance (|S|)")
    group.add_argument("--engine-retry-rounds", type=int, metavar="R",
                       help="non-improving rounds before convergence")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Clapton reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the benchmark suite")
    p_list.add_argument("--qubits", type=int, default=10)
    p_list.set_defaults(fn=_cmd_list)

    p_methods = sub.add_parser(
        "methods", help="list registered initialization methods")
    p_methods.set_defaults(fn=_cmd_methods)

    p_strategies = sub.add_parser(
        "strategies", help="list registered search strategies")
    p_strategies.set_defaults(fn=_cmd_strategies)

    p_mitigations = sub.add_parser(
        "mitigations", help="list registered mitigation strategies")
    p_mitigations.set_defaults(fn=_cmd_mitigations)

    p_bench = sub.add_parser(
        "benchmarks",
        help="list registered benchmarks, families, and suites")
    p_bench.add_argument("--kind", choices=["physics", "chemistry"],
                         help="only list benchmarks of this kind")
    p_bench.add_argument("--qubits", type=int, default=10)
    p_bench.set_defaults(fn=_cmd_benchmarks)

    p_ge = sub.add_parser("ground-energy", help="exact E0 of a benchmark")
    p_ge.add_argument("benchmark")
    p_ge.add_argument("--qubits", type=int, default=10)
    p_ge.set_defaults(fn=_cmd_ground_energy)

    p_run = sub.add_parser("run", help="run one initialization method")
    p_run.add_argument("benchmark")
    p_run.add_argument("--backend", default="toronto")
    p_run.add_argument("--method", default="clapton",
                       help="one registered method (see `repro methods`)")
    p_run.add_argument("--methods",
                       help="comma-separated registered methods; "
                            "overrides --method")
    p_run.add_argument("--strategy", default="multi_ga",
                       help="search strategy every method searches with "
                            "(see `repro strategies`)")
    p_run.add_argument("--mitigation", default="none",
                       help="mitigation applied to noisy evaluations, "
                            "e.g. zne:folds=3 or \"zne|readout\" "
                            "(see `repro mitigations`)")
    p_run.add_argument("--qubits", type=int, default=6)
    p_run.add_argument("--vqe-iterations", type=int, default=0,
                       help="SPSA iterations of the online VQE phase")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the engine's GA rounds")
    p_run.add_argument("--seed", type=int, default=0,
                       help="engine + VQE seed (same seed, same numbers)")
    p_run.add_argument("--save", help="write the ExperimentResult JSON here")
    p_run.add_argument("--trace", nargs="?", const="auto", metavar="PATH",
                       help="record a span trace to PATH "
                            "(default: ./trace.jsonl)")
    _add_engine_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a campaign grid from a CampaignSpec JSON file")
    p_sweep.add_argument("spec", help="CampaignSpec JSON file")
    p_sweep.add_argument("--store",
                         help="store directory (default: <spec>.campaign)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes tasks are sharded over")
    p_sweep.add_argument("--resume", action="store_true",
                         help="continue an interrupted store, skipping "
                              "completed task ids")
    p_sweep.add_argument("--strategies", "--strategy", dest="strategies",
                         help="comma-separated search strategies "
                              "overriding the spec's strategy axis "
                              "(see `repro strategies`)")
    p_sweep.add_argument("--mitigations", "--mitigation",
                         dest="mitigations",
                         help="comma-separated mitigation specs "
                              "overriding the spec's mitigation axis, "
                              "e.g. none,zne:folds=3,\"zne|readout\" "
                              "(see `repro mitigations`)")
    p_sweep.add_argument("--max-attempts", type=int, default=1,
                         help="executions a failing cell gets this run "
                              "(retried with exponential backoff)")
    p_sweep.add_argument("--backoff", type=float, default=0.5,
                         help="seconds before the first retry (doubles "
                              "per further attempt)")
    p_sweep.add_argument("--trace", nargs="?", const="auto",
                         metavar="PATH",
                         help="record a span trace to PATH (default: "
                              "<store>/trace.jsonl)")
    _add_engine_flags(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="run the campaign service (scheduler + HTTP)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="0 picks a free port (printed at startup)")
    p_serve.add_argument("--root", default="./campaigns",
                         help="directory submitted campaign stores are "
                              "created under")
    p_serve.add_argument("--spec", action="append", metavar="FILE",
                         help="CampaignSpec JSON to register at startup "
                              "(repeatable)")
    p_serve.add_argument("--store", action="append", metavar="DIR",
                         help="existing campaign store to attach and "
                              "resume (repeatable)")
    p_serve.add_argument("--lease-ttl", type=float, default=30.0,
                         help="seconds a worker lease lives between "
                              "heartbeats")
    p_serve.add_argument("--max-attempts", type=int, default=1,
                         help="executions a failing task gets before it "
                              "is parked as permanently failed")
    p_serve.add_argument("--backoff", type=float, default=0.5,
                         help="seconds before the first retry (doubles "
                              "per further attempt)")
    p_serve.add_argument("--max-outstanding", type=int, default=None,
                         help="backpressure: cap on simultaneously "
                              "leased tasks per campaign")
    p_serve.add_argument("--local-workers", type=int, default=0,
                         metavar="N",
                         help="also run N in-process worker threads")
    p_serve.add_argument("--until-done", action="store_true",
                         help="exit (status 0/1) once every registered "
                              "campaign completes, instead of serving "
                              "forever")
    p_serve.add_argument("-v", "--verbose", action="count", default=0,
                         help="more logging (-v requests and lease "
                              "events, -vv debug)")
    p_serve.add_argument("-q", "--quiet", action="count", default=0,
                         help="less logging (errors only)")
    p_serve.add_argument("--trace", nargs="?", const="auto",
                         metavar="PATH",
                         help="record a span trace to PATH (default: "
                              "<root>/trace.jsonl)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_worker = sub.add_parser(
        "worker", help="lease-driven campaign worker")
    p_worker.add_argument("--connect", required=True, metavar="URL",
                          help="base URL of a running `repro serve`")
    p_worker.add_argument("--worker-id",
                          help="stable worker identity (default: "
                               "host-pid-random)")
    p_worker.add_argument("--poll", type=float, default=0.5,
                          help="idle seconds between lease polls")
    p_worker.add_argument("--exit-on-idle", action="store_true",
                          help="exit once the server reports every "
                               "campaign complete")
    p_worker.add_argument("--max-tasks", type=int, default=None,
                          help="stop after this many task executions")
    p_worker.add_argument("-v", "--verbose", action="count", default=0,
                          help="more logging (-v lease/task events, "
                               "-vv debug)")
    p_worker.add_argument("-q", "--quiet", action="count", default=0,
                          help="less logging (errors only)")
    p_worker.add_argument("--trace", nargs="?", const="auto",
                          metavar="PATH",
                          help="record a span trace to PATH (default: "
                               "trace-<worker-id>.jsonl)")
    p_worker.set_defaults(fn=_cmd_worker)

    p_submit = sub.add_parser(
        "submit", help="submit a campaign spec to a running service")
    p_submit.add_argument("spec", help="CampaignSpec JSON file")
    p_submit.add_argument("--connect", required=True, metavar="URL",
                          help="base URL of a running `repro serve`")
    p_submit.add_argument("--watch", action="store_true",
                          help="poll status until the campaign completes, "
                               "then print its report")
    p_submit.add_argument("--poll", type=float, default=1.0,
                          help="seconds between --watch status polls")
    p_submit.set_defaults(fn=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="campaign progress (local store or live service)")
    p_status.add_argument("store", nargs="?",
                          help="campaign store directory (omit with "
                               "--connect)")
    p_status.add_argument("--connect", metavar="URL",
                          help="query a running `repro serve` instead "
                               "of a local store")
    p_status.add_argument("--campaign", metavar="ID",
                          help="campaign id on the server (optional "
                               "when only one is registered)")
    p_status.add_argument("--watch", action="store_true",
                          help="with --connect: follow progress until "
                               "the campaign completes")
    p_status.add_argument("--interval", type=float, default=1.0,
                          help="seconds between --watch polls "
                               "(poll mode only)")
    p_status.add_argument("--no-stream", action="store_true",
                          help="with --watch: poll with repeated GETs "
                               "instead of the NDJSON stream")
    p_status.set_defaults(fn=_cmd_status)

    p_trace = sub.add_parser(
        "trace", help="inspect span traces recorded with --trace")
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)
    p_tsum = trace_sub.add_parser(
        "summary", help="hierarchical time breakdown of a trace.jsonl")
    p_tsum.add_argument("trace", nargs="?",
                        help="trace.jsonl file (omit with --connect)")
    p_tsum.add_argument("--connect", metavar="URL",
                        help="fetch the merged fleet trace from a "
                             "running `repro serve` instead of a file")
    p_tsum.add_argument("--campaign", metavar="ID",
                        help="campaign id for --connect")
    p_tsum.add_argument("--json", action="store_true",
                        help="machine-readable summary instead of tables")
    p_tsum.add_argument("--depth", type=int, default=6,
                        help="max span-tree depth shown")
    p_tsum.set_defaults(fn=_cmd_trace_summary)

    p_texp = trace_sub.add_parser(
        "export",
        help="convert a trace.jsonl to Chrome trace-event JSON "
             "(Perfetto / chrome://tracing)")
    p_texp.add_argument("trace", help="trace.jsonl file (local run or "
                                      "merged fleet trace)")
    p_texp.add_argument("--perfetto", action="store_true",
                        help="Chrome trace-event format (the default "
                             "and only format; flag kept for "
                             "readability in scripts)")
    p_texp.add_argument("-o", "--output", metavar="PATH",
                        help="output path (default: "
                             "<trace>.perfetto.json)")
    p_texp.set_defaults(fn=_cmd_trace_export)

    p_benchtool = sub.add_parser(
        "bench", help="micro-benchmark tooling (perf-regression gate)")
    bench_sub = p_benchtool.add_subparsers(dest="bench_command",
                                           required=True)
    p_bcmp = bench_sub.add_parser(
        "compare",
        help="diff a BENCH JSON against a committed baseline; exits "
             "nonzero on regression")
    p_bcmp.add_argument("run", help="fresh BENCH JSON (a benchmarks/ "
                                    "run's CLAPTON_BENCH_JSON output)")
    p_bcmp.add_argument("--baseline", required=True, metavar="JSON",
                        help="committed baseline (e.g. benchmarks/"
                             "bench_results/baseline.json)")
    p_bcmp.add_argument("--tolerance", default="15%",
                        help="allowed worsening per metric before the "
                             "gate fails ('15%%' or '0.15'; "
                             "default 15%%)")
    p_bcmp.add_argument("--regressions-only", action="store_true",
                        help="omit in-tolerance rows from the table")
    p_bcmp.set_defaults(fn=_cmd_bench_compare)

    p_metrics = sub.add_parser(
        "metrics", help="scrape /metrics from a running `repro serve`")
    p_metrics.add_argument("--connect", required=True, metavar="URL",
                           help="base URL of a running `repro serve`")
    p_metrics.add_argument("--name", metavar="SUBSTR",
                           help="only lines containing this substring")
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_report = sub.add_parser(
        "report", help="markdown figure tables from a campaign store")
    p_report.add_argument("store", help="campaign store directory")
    p_report.add_argument("--tier", default="device_model",
                          choices=["noiseless", "clifford_model",
                                   "device_model", "hardware"],
                          help="noise tier for the eta tables")
    p_report.add_argument("--csv", help="also write row-level CSV here")
    p_report.add_argument("--improver", default=None,
                          help="method the eta tables credit improvements "
                               "to (default: clapton); must be one of the "
                               "campaign's methods")
    p_report.add_argument("--strategy", default=None,
                          help="only rows with this search strategy "
                               "(errors list the campaign's strategies)")
    p_report.add_argument("--mitigation", default=None,
                          help="only rows with this mitigation spec "
                               "(errors list the campaign's mitigations)")
    p_report.set_defaults(fn=_cmd_report)

    p_mol = sub.add_parser("molecule", help="build a molecular Hamiltonian")
    p_mol.add_argument("name", choices=["H2O", "H6", "LiH"])
    p_mol.add_argument("bond_length", type=float)
    p_mol.add_argument("--save", help="write the Hamiltonian to a JSON file")
    p_mol.set_defaults(fn=_cmd_molecule)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
