"""Shared experiment configuration presets.

``PAPER_ENGINE`` is the hyperparameter point the paper reports
(s = 10, m = 100, k = 20, |S| = 100, two retry rounds).  The benchmark
harnesses default to the reduced presets below so that regenerating every
figure stays in the minutes range on a laptop; EXPERIMENTS.md records which
preset produced which numbers.  Pass ``CLAPTON_BENCH_PRESET=paper`` in the
environment to run benches at full fidelity.
"""

from __future__ import annotations

import os

from ..optim.engine import EngineConfig

#: The paper's working point (Sec. 4.1).
PAPER_ENGINE = EngineConfig(num_instances=10, generations_per_round=100,
                            top_k=20, population_size=100, retry_rounds=2,
                            seed=0)

#: Reduced engine for benchmark harnesses: same structure, smaller budget.
FAST_ENGINE = EngineConfig(num_instances=3, generations_per_round=25,
                           top_k=8, population_size=32, retry_rounds=1,
                           seed=0)

#: Minimal engine for smoke tests and the quickstart example.
SMOKE_ENGINE = EngineConfig(num_instances=2, generations_per_round=12,
                            top_k=5, population_size=20, retry_rounds=1,
                            seed=0)


def bench_engine() -> EngineConfig:
    """Engine preset selected by the CLAPTON_BENCH_PRESET env variable."""
    preset = os.environ.get("CLAPTON_BENCH_PRESET", "fast").lower()
    if preset == "paper":
        return PAPER_ENGINE
    if preset == "fast":
        return FAST_ENGINE
    if preset == "smoke":
        return SMOKE_ENGINE
    raise ValueError(f"unknown bench preset {preset!r}")
