"""The single entry point for running the paper's experimental units.

``Experiment`` bundles a Hamiltonian with an evaluation setting (backend /
noise model / hardware twin), ``Experiment.run`` executes any subset of the
initialization methods -- through the Figure-4 engine, the three-tier
evaluation, and optionally the SPSA/VQE phase -- and returns an
:class:`ExperimentResult` that carries everything downstream consumers
need: per-method evaluations, VQE traces, engine bookkeeping, wall times,
and a JSON round trip.

The legacy runners (``compare_initializations``, ``convergence_traces``,
``sweep_relative_improvement``) are thin wrappers over this class, so
every surface produces identical numbers for identical seeds.
"""

from __future__ import annotations

import inspect
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..backends.backend import Backend
from ..core.clapton import InitializationResult
from ..core.evaluation import PointEvaluation, evaluate_initial_point
from ..core.problem import VQEProblem
from ..execution.executor import Executor
from ..hamiltonians.exact import ground_state_energy
from ..metrics import relative_improvement
from ..noise.model import NoiseModel
from ..optim.engine import EngineConfig
from ..paulis.pauli_sum import PauliSum
from ..vqe.runner import VQETrace, run_vqe


def __getattr__(name: str):
    if name == "METHODS":
        # PR-1/PR-2-era shim: the frozen tuple is now the registry's
        # built-in trio (see repro.methods).
        warnings.warn(
            "METHODS is deprecated; use repro.methods.method_names() for "
            "everything registered or repro.methods.DEFAULT_METHODS for "
            "the built-in trio", DeprecationWarning, stacklevel=2)
        from ..methods import DEFAULT_METHODS

        return DEFAULT_METHODS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class MethodRun:
    """Everything one method produced on one problem (serializable).

    Attributes:
        method: Registered method name (see ``repro.methods``).
        genome: Best engine genome.
        loss: Best engine loss (the method's own cost, not an energy).
        evaluation: Three-tier initial-point energies.
        engine_rounds / engine_evaluations / engine_seconds: search
            bookkeeping (the Figure-4 engine's, or the chosen strategy's).
        seconds: Wall time of the whole method run (search + evaluation +
            optional VQE).
        vqe: SPSA trace when ``vqe_iterations > 0``.
        strategy: Search-strategy label that produced the genome
            (``repro strategies``; ``"none"``/``"best_of_k"`` for methods
            with their own search shape).
        mitigation: Canonical mitigation-strategy label applied to the
            noisy evaluation tiers (``repro mitigations``); ``"none"``
            means every estimate is raw.
        search_trace: Per-round :class:`~repro.search.SearchTrace`
            payloads, in execution order.
        cache_stats: Memo-table accounting of the search (``hits`` /
            ``misses`` / ``dedups`` / ``entries``), aggregated across
            process workers; ``None`` for methods without a search phase
            or payloads that predate the field.
    """

    method: str
    genome: np.ndarray
    loss: float
    evaluation: PointEvaluation | None
    engine_rounds: int
    engine_evaluations: int
    engine_seconds: float
    seconds: float
    vqe: VQETrace | None = None
    strategy: str = "multi_ga"
    mitigation: str = "none"
    search_trace: list = field(default_factory=list)
    cache_stats: dict | None = None

    def to_dict(self) -> dict:
        ev = self.evaluation
        evaluation = None
        if ev is not None:
            evaluation = {
                "noiseless": ev.noiseless,
                "clifford_model": ev.clifford_model,
                "device_model": ev.device_model,
                "hardware": ev.hardware,
            }
            if ev.device_model_raw is not None:
                evaluation["device_model_raw"] = ev.device_model_raw
        out = {
            "method": self.method,
            "genome": np.asarray(self.genome).tolist(),
            "loss": float(self.loss),
            "evaluation": evaluation,
            "engine_rounds": self.engine_rounds,
            "engine_evaluations": self.engine_evaluations,
            "engine_seconds": self.engine_seconds,
            "seconds": self.seconds,
            "strategy": self.strategy,
            # omitted when "none" so pre-mitigation payloads stay
            # byte-identical (and so do their content hashes)
            **({"mitigation": self.mitigation}
               if self.mitigation != "none" else {}),
            "search_trace": [dict(t) for t in self.search_trace],
            "cache_stats": (None if self.cache_stats is None
                            else dict(self.cache_stats)),
            "vqe": None,
        }
        if self.vqe is not None:
            t = self.vqe
            out["vqe"] = {
                "initial_theta": np.asarray(t.initial_theta).tolist(),
                "final_theta": np.asarray(t.final_theta).tolist(),
                "initial_energy": t.initial_energy,
                "final_energy": t.final_energy,
                "history": [float(v) for v in t.history],
                "hardware_initial": t.hardware_initial,
                "hardware_final": t.hardware_final,
                "num_evaluations": t.num_evaluations,
                "evaluations_by_tier": dict(t.evaluations_by_tier),
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MethodRun":
        vqe = None
        if data.get("vqe") is not None:
            v = data["vqe"]
            vqe = VQETrace(
                initial_theta=np.asarray(v["initial_theta"], dtype=float),
                final_theta=np.asarray(v["final_theta"], dtype=float),
                initial_energy=v["initial_energy"],
                final_energy=v["final_energy"],
                history=list(v["history"]),
                hardware_initial=v["hardware_initial"],
                hardware_final=v["hardware_final"],
                num_evaluations=v["num_evaluations"],
                evaluations_by_tier=dict(v["evaluations_by_tier"]),
            )
        return cls(
            method=data["method"],
            genome=np.asarray(data["genome"], dtype=np.int64),
            loss=data["loss"],
            evaluation=(None if data["evaluation"] is None
                        else PointEvaluation(**data["evaluation"])),
            engine_rounds=data["engine_rounds"],
            engine_evaluations=data["engine_evaluations"],
            engine_seconds=data["engine_seconds"],
            seconds=data["seconds"],
            vqe=vqe,
            # pre-strategy-axis payloads lack these keys
            strategy=data.get("strategy", "multi_ga"),
            mitigation=data.get("mitigation", "none"),
            search_trace=list(data.get("search_trace") or []),
            cache_stats=data.get("cache_stats"),
        )


@dataclass
class ExperimentResult:
    """Outcome of one :meth:`Experiment.run`.

    Attributes:
        benchmark: Experiment name.
        e0: Exact ground energy of the Hamiltonian.
        e_mixed: Fully mixed state energy (normalization fixpoint).
        runs: Per-method :class:`MethodRun` records, in execution order.
        total_seconds: Wall time of the whole run.
        results: Live :class:`InitializationResult` objects (not
            serialized; empty after :meth:`from_dict`).
    """

    benchmark: str
    e0: float
    e_mixed: float
    runs: dict[str, MethodRun]
    total_seconds: float
    results: dict[str, InitializationResult] = field(
        default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def methods(self) -> tuple[str, ...]:
        return tuple(self.runs)

    @property
    def evaluations(self) -> dict[str, PointEvaluation]:
        return {m: r.evaluation for m, r in self.runs.items()
                if r.evaluation is not None}

    @property
    def traces(self) -> dict[str, VQETrace]:
        return {m: r.vqe for m, r in self.runs.items() if r.vqe is not None}

    @property
    def timings(self) -> dict[str, float]:
        return {m: r.seconds for m, r in self.runs.items()}

    def _method_run(self, name: str) -> MethodRun:
        try:
            return self.runs[name]
        except KeyError:
            raise KeyError(
                f"no {name!r} run in this result; available runs: "
                f"{list(self.runs)}") from None

    def eta_initial(self, baseline: str, tier: str = "device_model",
                    improver: str = "clapton") -> float:
        """Relative improvement of ``improver`` over ``baseline`` (Eq. 14)."""
        base = self._method_run(baseline)
        imp = self._method_run(improver)
        if base.evaluation is None or imp.evaluation is None:
            raise ValueError(
                "eta_initial needs tier evaluations; this result was "
                "produced with evaluate_tiers=False")
        return relative_improvement(self.e0,
                                    getattr(base.evaluation, tier),
                                    getattr(imp.evaluation, tier))

    def eta_final(self, baseline: str, improver: str = "clapton") -> float:
        base = self._method_run(baseline)
        imp = self._method_run(improver)
        if base.vqe is None or imp.vqe is None:
            raise ValueError(
                "eta_final needs VQE traces; run with vqe_iterations > 0")
        return relative_improvement(self.e0, base.vqe.final_energy,
                                    imp.vqe.final_energy)

    def to_row(self):
        """The legacy :class:`~repro.experiments.runners.ComparisonRow`."""
        from .runners import ComparisonRow

        return ComparisonRow(
            benchmark=self.benchmark, e0=self.e0, e_mixed=self.e_mixed,
            evaluations=self.evaluations, results=dict(self.results),
            vqe=self.traces)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "e0": float(self.e0),
            "e_mixed": float(self.e_mixed),
            "total_seconds": float(self.total_seconds),
            "runs": {m: r.to_dict() for m, r in self.runs.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        return cls(
            benchmark=data["benchmark"],
            e0=data["e0"],
            e_mixed=data["e_mixed"],
            runs={m: MethodRun.from_dict(r) for m, r in data["runs"].items()},
            total_seconds=data["total_seconds"],
        )


class Experiment:
    """One experimental unit: a Hamiltonian in an evaluation setting.

    Args:
        hamiltonian: Logical problem ``H``.
        backend: Transpile the ansatz onto this device (the paper's main
            flow); mutually exclusive with ``noise_model``.
        noise_model: Untranspiled evaluation under this device model
            (Fig. 7/8 sweeps); noiseless when neither is given.
        hardware: Optional "actual device" twin for the hardware tier.
        entanglement: Ansatz entanglement pattern.
        problem: Pre-built problem bundle; overrides all of the above.
        name: Experiment label (defaults to a size-based tag).
        e0: Precomputed exact ground energy; skips the dense eigensolve
            in :meth:`run` (useful when sweeping many settings of one
            Hamiltonian).

    Example::

        result = Experiment(xxz_model(10, 0.5), backend=FakeToronto()) \\
            .run(methods=("cafqa", "clapton"), config=FAST_ENGINE)
        print(result.eta_initial("cafqa"))
    """

    def __init__(self, hamiltonian: PauliSum, *,
                 backend: Backend | None = None,
                 noise_model: NoiseModel | None = None,
                 hardware: Backend | None = None,
                 entanglement: str = "circular",
                 problem: VQEProblem | None = None,
                 name: str | None = None,
                 e0: float | None = None):
        self.hamiltonian = hamiltonian
        self.name = name or f"{hamiltonian.num_qubits}q"
        self.e0 = e0
        if problem is not None:
            self.problem = problem
        elif backend is not None:
            self.problem = VQEProblem.from_backend(
                hamiltonian, backend, entanglement=entanglement,
                hardware=hardware)
        else:
            self.problem = VQEProblem.logical(
                hamiltonian, noise_model=noise_model,
                entanglement=entanglement)

    def run(self, methods=None, *, config: EngineConfig | None = None,
            vqe_iterations: int = 0, vqe_shots: int | None = None,
            seed: int = 0, executor: Executor | None = None,
            evaluate_tiers: bool = True, strategy=None,
            budget=None, mitigation=None) -> ExperimentResult:
        """Run the requested methods and evaluate all tiers.

        Args:
            methods: Registered method names and/or
                :class:`~repro.methods.InitializationMethod` instances;
                defaults to the built-in trio ``("cafqa", "ncafqa",
                "clapton")``.  ``repro methods`` lists what is registered.
            config: Engine hyperparameters; defaults to the preset selected
                by ``CLAPTON_BENCH_PRESET`` (``fast`` unless overridden).
            vqe_iterations: SPSA iterations of the online phase (0 skips
                VQE entirely).
            vqe_shots: Optional per-term shot budget for the VQE phase.
            seed: VQE seed (the engine's seed lives in ``config``).
            executor: Execution backend for the engine's GA rounds.
            evaluate_tiers: Evaluate each initial point under the three
                noise tiers; pass False when only the engine output or
                the VQE traces matter (``MethodRun.evaluation`` is then
                ``None`` and ``eta_initial`` unavailable).
            strategy: Registered search-strategy name or
                :class:`~repro.search.SearchStrategy` instance every
                method searches with (default ``multi_ga``; ``repro
                strategies`` lists what is registered).
            budget: Optional :class:`~repro.search.SearchBudget` capping
                each method's search.
            mitigation: Registered mitigation name, composed
                ``"zne:folds=3|readout"`` spec, or
                :class:`~repro.mitigation.MitigationStrategy` instance
                applied to every method's noisy evaluation tiers and VQE
                endpoint energies (default ``none``; ``repro mitigations``
                lists what is registered).
        """
        from ..methods import resolve_methods
        from ..mitigation import resolve_mitigation
        from ..search import resolve_strategy

        if config is None:
            from .config import bench_engine

            config = bench_engine()
        resolved = resolve_methods(methods)  # ValueError on unknown names
        if strategy is not None:
            strategy = resolve_strategy(strategy)  # KeyError did-you-mean
        mitigation = resolve_mitigation(mitigation)  # KeyError did-you-mean
        start = time.perf_counter()
        e0 = (self.e0 if self.e0 is not None
              else ground_state_energy(self.hamiltonian))
        runs: dict[str, MethodRun] = {}
        results: dict[str, InitializationResult] = {}
        for method in resolved:
            method_start = time.perf_counter()
            run_params = inspect.signature(method.run).parameters
            takes_mitigation = (
                "mitigation" in run_params
                or any(p.kind is inspect.Parameter.VAR_KEYWORD
                       for p in run_params.values()))
            if takes_mitigation:
                result = method.run(self.problem, config=config,
                                    executor=executor, strategy=strategy,
                                    budget=budget, mitigation=mitigation)
            else:
                # pre-mitigation-axis override: run raw, then stamp the
                # axis so downstream evaluation still applies it
                result = method.run(self.problem, config=config,
                                    executor=executor, strategy=strategy,
                                    budget=budget)
                result.mitigation = mitigation.name
            results[method.name] = result
            evaluation = (evaluate_initial_point(result,
                                                 mitigation=mitigation)
                          if evaluate_tiers else None)
            trace = None
            if vqe_iterations > 0:
                trace = run_vqe(result, maxiter=vqe_iterations,
                                shots=vqe_shots, seed=seed,
                                mitigation=mitigation)
            search = result.search
            runs[method.name] = MethodRun(
                method=method.name,
                genome=result.genome,
                loss=result.loss,
                evaluation=evaluation,
                engine_rounds=result.engine.num_rounds,
                engine_evaluations=result.engine.num_evaluations,
                engine_seconds=result.engine.total_seconds,
                seconds=time.perf_counter() - method_start,
                vqe=trace,
                strategy=(search.strategy if search is not None
                          else "multi_ga"),
                mitigation=mitigation.name,
                search_trace=(search.trace_dicts() if search is not None
                              else []),
                cache_stats=(search.cache_stats if search is not None
                             else None),
            )
        return ExperimentResult(
            benchmark=self.name,
            e0=e0,
            e_mixed=self.hamiltonian.mixed_state_energy(),
            runs=runs,
            total_seconds=time.perf_counter() - start,
            results=results,
        )
