"""Legacy experiment runners: thin wrappers over :class:`Experiment`.

Each function reproduces one experimental unit of the paper's evaluation:
``compare_initializations`` produces one Fig. 5 column (three methods, three
noise tiers, relative improvements), ``convergence_traces`` one Fig. 6 panel,
and ``sweep_relative_improvement`` one Fig. 7/8 curve point.  They all
delegate to :meth:`Experiment.run`, so the façade and the legacy surface
produce identical numbers for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends.backend import Backend
from ..core.clapton import InitializationResult
from ..core.evaluation import PointEvaluation
from ..core.problem import VQEProblem
from ..metrics import relative_improvement
from ..noise.model import NoiseModel
from ..optim.engine import EngineConfig
from ..paulis.pauli_sum import PauliSum
from ..vqe.runner import VQETrace
from .experiment import Experiment

__all__ = [
    "METHODS", "ComparisonRow", "build_problem", "compare_initializations",
    "convergence_traces", "format_comparison_table",
    "sweep_relative_improvement",
]


def __getattr__(name: str):
    if name == "METHODS":  # deprecated shim; warns in .experiment
        from . import experiment

        return experiment.METHODS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ComparisonRow:
    """One benchmark's initialization comparison (a Fig. 5 column).

    Attributes:
        benchmark: Benchmark name.
        e0: Exact ground energy.
        e_mixed: Fully mixed state energy (normalization fixpoint).
        evaluations: Per-method three-tier energies.
        vqe: Optional per-method VQE traces (the "final point" data).
    """

    benchmark: str
    e0: float
    e_mixed: float
    evaluations: dict[str, PointEvaluation]
    results: dict[str, InitializationResult] = field(default_factory=dict)
    vqe: dict[str, VQETrace] = field(default_factory=dict)

    def _lookup(self, table: dict, name: str, what: str):
        try:
            return table[name]
        except KeyError:
            raise KeyError(f"no {what} for method {name!r}; available: "
                           f"{list(table)}") from None

    def eta_initial(self, baseline: str, tier: str = "device_model",
                    improver: str = "clapton") -> float:
        """Relative improvement of ``improver`` over ``baseline`` (Eq. 14)."""
        base = getattr(self._lookup(self.evaluations, baseline,
                                    "evaluation"), tier)
        imp = getattr(self._lookup(self.evaluations, improver,
                                   "evaluation"), tier)
        return relative_improvement(self.e0, base, imp)

    def eta_final(self, baseline: str, improver: str = "clapton") -> float:
        base = self._lookup(self.vqe, baseline, "VQE trace")
        imp = self._lookup(self.vqe, improver, "VQE trace")
        return relative_improvement(self.e0, base.final_energy,
                                    imp.final_energy)


def build_problem(hamiltonian: PauliSum, backend: Backend | None,
                  noise_model: NoiseModel | None = None,
                  hardware: Backend | None = None) -> VQEProblem:
    if backend is not None:
        return VQEProblem.from_backend(hamiltonian, backend,
                                       hardware=hardware)
    return VQEProblem.logical(hamiltonian, noise_model=noise_model)


def compare_initializations(benchmark_name: str, hamiltonian: PauliSum,
                            problem: VQEProblem, config: EngineConfig,
                            methods=None, vqe_iterations: int = 0,
                            seed: int = 0, executor=None) -> ComparisonRow:
    """Run the requested methods on one problem and evaluate all tiers."""
    experiment = Experiment(hamiltonian, problem=problem,
                            name=benchmark_name)
    return experiment.run(methods, config=config,
                          vqe_iterations=vqe_iterations, seed=seed,
                          executor=executor).to_row()


def convergence_traces(hamiltonian: PauliSum, problem: VQEProblem,
                       config: EngineConfig, vqe_iterations: int,
                       methods=None, seed: int = 0, executor=None
                       ) -> dict[str, VQETrace]:
    """Per-method VQE convergence histories (one Fig. 6 panel)."""
    experiment = Experiment(hamiltonian, problem=problem)
    return experiment.run(methods, config=config,
                          vqe_iterations=vqe_iterations, seed=seed,
                          executor=executor, evaluate_tiers=False).traces


def sweep_relative_improvement(hamiltonian: PauliSum,
                               noise_models: list[NoiseModel],
                               config: EngineConfig,
                               baseline: str = "ncafqa",
                               tier: str = "device_model",
                               executor=None) -> list[float]:
    """eta(baseline -> clapton) across a list of noise settings.

    .. deprecated::
        This is now a thin wrapper over a one-off campaign; build a
        :class:`~repro.campaigns.CampaignSpec` and run it through
        :class:`~repro.campaigns.CampaignRunner` instead (JSON specs,
        sharding over executors, crash-resumable stores, reports).

    The Fig. 7/8 harnesses build the noise-model list by sweeping one
    channel's strength with everything else fixed.  Numbers are identical
    to the historical per-Experiment loop: each task's engine is seeded
    by ``config.seed`` exactly as before.  ``executor`` now shards sweep
    *cells* (each engine stays serial inside its task), so parallel runs
    reproduce the serial numbers bit for bit.
    """
    import warnings

    from ..campaigns.runner import CampaignRunner
    from ..campaigns.spec import CampaignSpec, TaskSpec, engine_to_dict
    from ..campaigns.store import ResultStore
    from ..hamiltonians.exact import ground_state_energy
    from ..metrics import relative_improvement
    from ..paulis.serialization import pauli_sum_to_dict

    warnings.warn(
        "sweep_relative_improvement is deprecated; declare a CampaignSpec "
        "and run it with repro.campaigns.CampaignRunner (or `repro sweep`)",
        DeprecationWarning, stacklevel=2)
    e0 = ground_state_energy(hamiltonian)  # one eigensolve for the sweep
    h_payload = pauli_sum_to_dict(hamiltonian)
    engine = engine_to_dict(config)
    tasks = [
        TaskSpec(benchmark="sweep", num_qubits=hamiltonian.num_qubits,
                 method=method, seed=config.seed or 0,
                 setting={"kind": "noise_model",
                          "model": noise_model.to_dict()},
                 engine=engine, hamiltonian=h_payload, e0=e0)
        for noise_model in noise_models
        for method in (baseline, "clapton")
    ]
    spec = CampaignSpec(name="sweep_relative_improvement",
                        benchmarks=["sweep"],
                        qubit_sizes=[hamiltonian.num_qubits],
                        methods=[baseline, "clapton"])
    store = ResultStore.ephemeral(spec)

    def fail_fast(record):
        # preserve the legacy contract of failing on the first bad cell
        # instead of burning the rest of the sweep budget
        if record["status"] != "done":
            raise RuntimeError(
                f"sweep cell {record['task']['benchmark']}/"
                f"{record['task']['method']} failed:\n{record['error']}")

    CampaignRunner(spec, store, executor=executor,
                   tasks=tasks).run(on_record=fail_fast)
    etas = []
    for i, _ in enumerate(noise_models):
        base_run, clap_run = (store.record(t.task_id)["result"]
                              for t in tasks[2 * i:2 * i + 2])
        etas.append(relative_improvement(
            e0, base_run["runs"][baseline]["evaluation"][tier],
            clap_run["runs"]["clapton"]["evaluation"][tier]))
    return etas


def format_comparison_table(rows: list[ComparisonRow],
                            baseline: str = "cafqa") -> str:
    """Fixed-width text table mirroring Fig. 5's content."""
    lines = [
        f"{'benchmark':<14} {'E0':>10} "
        f"{'cafqa':>10} {'ncafqa':>10} {'clapton':>10} "
        f"{'eta_vs_cafqa':>13} {'eta_vs_ncafqa':>14}"
    ]
    for row in rows:
        e = {m: row.evaluations[m].device_model for m in row.evaluations}
        lines.append(
            f"{row.benchmark:<14} {row.e0:>10.4f} "
            f"{e.get('cafqa', float('nan')):>10.4f} "
            f"{e.get('ncafqa', float('nan')):>10.4f} "
            f"{e.get('clapton', float('nan')):>10.4f} "
            f"{row.eta_initial('cafqa'):>13.2f} "
            f"{row.eta_initial('ncafqa'):>14.2f}")
    return "\n".join(lines)
