"""Legacy experiment runners: thin wrappers over :class:`Experiment`.

Each function reproduces one experimental unit of the paper's evaluation:
``compare_initializations`` produces one Fig. 5 column (three methods, three
noise tiers, relative improvements), ``convergence_traces`` one Fig. 6 panel,
and ``sweep_relative_improvement`` one Fig. 7/8 curve point.  They all
delegate to :meth:`Experiment.run`, so the façade and the legacy surface
produce identical numbers for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends.backend import Backend
from ..core.clapton import InitializationResult
from ..core.evaluation import PointEvaluation
from ..core.problem import VQEProblem
from ..metrics import relative_improvement
from ..noise.model import NoiseModel
from ..optim.engine import EngineConfig
from ..paulis.pauli_sum import PauliSum
from ..vqe.runner import VQETrace
from .experiment import METHODS, Experiment

__all__ = [
    "METHODS", "ComparisonRow", "build_problem", "compare_initializations",
    "convergence_traces", "format_comparison_table",
    "sweep_relative_improvement",
]


@dataclass
class ComparisonRow:
    """One benchmark's initialization comparison (a Fig. 5 column).

    Attributes:
        benchmark: Benchmark name.
        e0: Exact ground energy.
        e_mixed: Fully mixed state energy (normalization fixpoint).
        evaluations: Per-method three-tier energies.
        vqe: Optional per-method VQE traces (the "final point" data).
    """

    benchmark: str
    e0: float
    e_mixed: float
    evaluations: dict[str, PointEvaluation]
    results: dict[str, InitializationResult] = field(default_factory=dict)
    vqe: dict[str, VQETrace] = field(default_factory=dict)

    def eta_initial(self, baseline: str, tier: str = "device_model") -> float:
        """Relative improvement of Clapton over a baseline (Eq. 14)."""
        base = getattr(self.evaluations[baseline], tier)
        clap = getattr(self.evaluations["clapton"], tier)
        return relative_improvement(self.e0, base, clap)

    def eta_final(self, baseline: str) -> float:
        return relative_improvement(self.e0,
                                    self.vqe[baseline].final_energy,
                                    self.vqe["clapton"].final_energy)


def build_problem(hamiltonian: PauliSum, backend: Backend | None,
                  noise_model: NoiseModel | None = None,
                  hardware: Backend | None = None) -> VQEProblem:
    if backend is not None:
        return VQEProblem.from_backend(hamiltonian, backend,
                                       hardware=hardware)
    return VQEProblem.logical(hamiltonian, noise_model=noise_model)


def compare_initializations(benchmark_name: str, hamiltonian: PauliSum,
                            problem: VQEProblem, config: EngineConfig,
                            methods=METHODS, vqe_iterations: int = 0,
                            seed: int = 0, executor=None) -> ComparisonRow:
    """Run the requested methods on one problem and evaluate all tiers."""
    experiment = Experiment(hamiltonian, problem=problem,
                            name=benchmark_name)
    return experiment.run(methods, config=config,
                          vqe_iterations=vqe_iterations, seed=seed,
                          executor=executor).to_row()


def convergence_traces(hamiltonian: PauliSum, problem: VQEProblem,
                       config: EngineConfig, vqe_iterations: int,
                       methods=METHODS, seed: int = 0, executor=None
                       ) -> dict[str, VQETrace]:
    """Per-method VQE convergence histories (one Fig. 6 panel)."""
    experiment = Experiment(hamiltonian, problem=problem)
    return experiment.run(methods, config=config,
                          vqe_iterations=vqe_iterations, seed=seed,
                          executor=executor, evaluate_tiers=False).traces


def sweep_relative_improvement(hamiltonian: PauliSum,
                               noise_models: list[NoiseModel],
                               config: EngineConfig,
                               baseline: str = "ncafqa",
                               tier: str = "device_model",
                               executor=None) -> list[float]:
    """eta(baseline -> clapton) across a list of noise settings.

    The Fig. 7/8 harnesses build the noise-model list by sweeping one
    channel's strength with everything else fixed.
    """
    from ..hamiltonians.exact import ground_state_energy

    e0 = ground_state_energy(hamiltonian)  # one eigensolve for the sweep
    etas = []
    for noise_model in noise_models:
        experiment = Experiment(hamiltonian, noise_model=noise_model, e0=e0)
        result = experiment.run((baseline, "clapton"), config=config,
                                executor=executor)
        etas.append(result.eta_initial(baseline, tier=tier))
    return etas


def format_comparison_table(rows: list[ComparisonRow],
                            baseline: str = "cafqa") -> str:
    """Fixed-width text table mirroring Fig. 5's content."""
    lines = [
        f"{'benchmark':<14} {'E0':>10} "
        f"{'cafqa':>10} {'ncafqa':>10} {'clapton':>10} "
        f"{'eta_vs_cafqa':>13} {'eta_vs_ncafqa':>14}"
    ]
    for row in rows:
        e = {m: row.evaluations[m].device_model for m in row.evaluations}
        lines.append(
            f"{row.benchmark:<14} {row.e0:>10.4f} "
            f"{e.get('cafqa', float('nan')):>10.4f} "
            f"{e.get('ncafqa', float('nan')):>10.4f} "
            f"{e.get('clapton', float('nan')):>10.4f} "
            f"{row.eta_initial('cafqa'):>13.2f} "
            f"{row.eta_initial('ncafqa'):>14.2f}")
    return "\n".join(lines)
