"""Experiment presets and runners used by the figure benchmarks."""

from .config import FAST_ENGINE, PAPER_ENGINE, SMOKE_ENGINE, bench_engine
from .runners import (
    METHODS,
    ComparisonRow,
    build_problem,
    compare_initializations,
    convergence_traces,
    format_comparison_table,
    sweep_relative_improvement,
)

__all__ = [
    "ComparisonRow", "FAST_ENGINE", "METHODS", "PAPER_ENGINE", "SMOKE_ENGINE",
    "bench_engine", "build_problem", "compare_initializations",
    "convergence_traces", "format_comparison_table",
    "sweep_relative_improvement",
]
