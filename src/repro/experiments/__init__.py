"""Experiment façade, presets, and the legacy figure runners."""

from .config import FAST_ENGINE, PAPER_ENGINE, SMOKE_ENGINE, bench_engine
from .experiment import Experiment, ExperimentResult, MethodRun
from .runners import (
    ComparisonRow,
    build_problem,
    compare_initializations,
    convergence_traces,
    format_comparison_table,
    sweep_relative_improvement,
)

__all__ = [
    "ComparisonRow", "Experiment", "ExperimentResult", "FAST_ENGINE",
    "METHODS", "MethodRun", "PAPER_ENGINE", "SMOKE_ENGINE", "bench_engine",
    "build_problem", "compare_initializations", "convergence_traces",
    "format_comparison_table", "sweep_relative_improvement",
]


def __getattr__(name: str):
    if name == "METHODS":  # deprecated shim; warns in .experiment
        from .experiment import METHODS

        return METHODS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
