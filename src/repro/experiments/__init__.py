"""Experiment façade, presets, and the legacy figure runners."""

from .config import FAST_ENGINE, PAPER_ENGINE, SMOKE_ENGINE, bench_engine
from .experiment import METHODS, Experiment, ExperimentResult, MethodRun
from .runners import (
    ComparisonRow,
    build_problem,
    compare_initializations,
    convergence_traces,
    format_comparison_table,
    sweep_relative_improvement,
)

__all__ = [
    "ComparisonRow", "Experiment", "ExperimentResult", "FAST_ENGINE",
    "METHODS", "MethodRun", "PAPER_ENGINE", "SMOKE_ENGINE", "bench_engine",
    "build_problem", "compare_initializations", "convergence_traces",
    "format_comparison_table", "sweep_relative_improvement",
]
