"""Evaluation metrics (Sec. 5.2.1).

The paper's primary metric is the relative improvement (Eq. 14)

    eta = (E0 - E_noisy(baseline)) / (E0 - E_noisy(clapton))

i.e. by what factor Clapton shrinks the gap to the exact ground energy under
noisy evaluation.  Figure 5 summarizes suites with the geometric mean of
eta, and normalizes raw energies between the ground energy E0 and the fully
mixed state's energy E_rho = tr[H] / 2^N.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


def relative_improvement(e0: float, baseline_energy: float,
                         clapton_energy: float) -> float:
    """Eq. 14; values > 1 mean Clapton is closer to the ground energy.

    Raises:
        ValueError: if either method's energy is below E0 (unphysical for a
            correct evaluation -- catching sign conventions early).
    """
    gap_baseline = baseline_energy - e0
    gap_clapton = clapton_energy - e0
    if gap_baseline < -1e-9 or gap_clapton < -1e-9:
        raise ValueError("noisy energies cannot undercut the ground energy")
    if gap_clapton <= 0:
        return math.inf if gap_baseline > 0 else 1.0
    return gap_baseline / gap_clapton


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive ratios (the paper's suite aggregate)."""
    array = np.asarray(list(values), dtype=float)
    if len(array) == 0:
        raise ValueError("need at least one value")
    if (array <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def normalized_energy(energy: float, e0: float, e_mixed: float) -> float:
    """Map energy to the paper's [0, 1] display scale.

    0 is the ground energy, 1 the fully mixed state's energy -- the two
    fixpoints Fig. 5 aligns across benchmarks.
    """
    if e_mixed <= e0:
        raise ValueError("mixed-state energy must exceed the ground energy")
    return (energy - e0) / (e_mixed - e0)


def gap_reduction_percent(eta: float) -> float:
    """Human-readable form: eta = 1.3 corresponds to a ~23% gap reduction."""
    if eta <= 0:
        raise ValueError("eta must be positive")
    return 100.0 * (1.0 - 1.0 / eta)
