"""Dense statevector simulation (noiseless reference path).

Used for noise-free evaluation of non-Clifford circuits (the bound VQE
ansatz away from Clifford angles) and as the ground truth in tests.  Qubit 0
is the most significant bit of a basis index, matching the rest of the
package.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit


def apply_matrix(tensor: np.ndarray, matrix: np.ndarray, axes: tuple[int, ...]
                 ) -> np.ndarray:
    """Apply a ``2^k x 2^k`` matrix to the given tensor axes (left-multiply)."""
    k = len(axes)
    mat_t = matrix.reshape((2,) * (2 * k))
    out = np.tensordot(mat_t, tensor, axes=(tuple(range(k, 2 * k)), axes))
    return np.moveaxis(out, tuple(range(k)), axes)


def simulate_statevector(circuit: Circuit, initial: np.ndarray | None = None
                         ) -> np.ndarray:
    """Run a bound circuit on ``|0...0>`` (or ``initial``) and return the state."""
    n = circuit.num_qubits
    if initial is None:
        state = np.zeros(2 ** n, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex).copy()
        if state.shape != (2 ** n,):
            raise ValueError("initial state has wrong dimension")
    tensor = state.reshape((2,) * n)
    for inst in circuit.instructions:
        tensor = apply_matrix(tensor, inst.matrix(), inst.qubits)
    return tensor.reshape(2 ** n)


def _masks(x_bits: np.ndarray, z_bits: np.ndarray, num_qubits: int
           ) -> tuple[int, int]:
    """Integer bit masks for a Pauli's X and Z components (qubit 0 = MSB)."""
    xmask = 0
    zmask = 0
    for qubit in range(num_qubits):
        bit = 1 << (num_qubits - 1 - qubit)
        if x_bits[qubit]:
            xmask |= bit
        if z_bits[qubit]:
            zmask |= bit
    return xmask, zmask


def pauli_expectation(pauli, state: np.ndarray) -> float:
    """``<psi|P|psi>`` in O(2^n) using bit arithmetic.

    ``P|b> = sign * i^{#Y} * (-1)^{popcount(b & z)} |b ^ x>``.
    """
    n = pauli.num_qubits
    xmask, zmask = _masks(pauli.x, pauli.z, n)
    indices = np.arange(2 ** n, dtype=np.uint64)
    phases = (-1.0) ** np.bitwise_count(indices & np.uint64(zmask))
    coeff = pauli.sign * (1j) ** int(np.count_nonzero(pauli.x & pauli.z))
    flipped = (indices ^ np.uint64(xmask)).astype(np.int64)
    value = np.sum(np.conj(state[flipped]) * phases * state)
    return float(np.real(coeff * value))


def pauli_sum_expectation(hamiltonian, state: np.ndarray) -> float:
    """``<psi|H|psi>`` summed term by term (O(M 2^n))."""
    return float(sum(c * pauli_expectation(p, state)
                     for c, p in hamiltonian.terms()))
