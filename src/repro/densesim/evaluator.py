"""Full-device-model evaluation: the "x" markers of Figure 5.

Evolves a circuit on the density-matrix simulator with every noise channel
of the :class:`~repro.noise.model.NoiseModel` applied exactly (depolarizing,
thermal relaxation with its non-Clifford amplitude damping) and evaluates
Hamiltonian energies with readout-error attenuation.

Readout handling: each measured Pauli term is attenuated by
``prod_k (1 - p01_k - p10_k)`` over its support, plus one single-qubit
depolarizing factor per X/Y qubit for the noisy basis-prep rotation.  For
symmetric misassignment this is exact; for asymmetric misassignment it drops
only the identity-substitution cross terms, which are second order in the
asymmetry ``|p01 - p10|`` (the counts-based path in
:meth:`DensityMatrixSimulator.sample_counts` keeps full asymmetry and is
used to bound the approximation in tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..circuits.circuit import Circuit
from ..paulis.pauli_sum import PauliSum
from .density_matrix import DensityMatrixSimulator

if TYPE_CHECKING:  # avoid a circular import; only needed for annotations
    from ..noise.model import NoiseModel


def evolve_with_noise(circuit: Circuit, noise_model: NoiseModel
                      ) -> DensityMatrixSimulator:
    """Run ``circuit`` with noise channels appended after every gate.

    Channels are applied in closed form (depolarizing as a mixed-state
    blend, relaxation as population flow + coherence scaling) -- math
    identical to their Kraus sets, verified against them in tests, but an
    order of magnitude faster at 10 qubits.
    """
    if noise_model.num_qubits != circuit.num_qubits:
        raise ValueError("noise model size does not match circuit register")
    sim = DensityMatrixSimulator(circuit.num_qubits)
    idle = (noise_model.include_idle_relaxation
            and noise_model.include_relaxation
            and noise_model.t1 is not None)
    clocks = np.zeros(circuit.num_qubits)
    for inst in circuit.instructions:
        if idle:
            # ASAP schedule: relax each operand over the gap it sat idle
            start = max(clocks[q] for q in inst.qubits)
            for q in inst.qubits:
                spec = noise_model.relaxation_spec(q, start - clocks[q])
                if spec is not None:
                    sim.apply_relaxation(spec.params[0], spec.params[1], q)
            duration = noise_model.gate_duration(inst)
            for q in inst.qubits:
                clocks[q] = start + duration
        sim.apply_instruction(inst)
        for spec in noise_model.channels_after(inst):
            if spec.kind == "depol":
                sim.apply_depolarizing(spec.params[0], spec.qubits)
            elif spec.kind == "relax":
                sim.apply_relaxation(spec.params[0], spec.params[1],
                                     spec.qubits[0])
            elif spec.kind == "unitary_zz":
                (op,) = spec.kraus_operators()
                sim.apply_unitary(op, spec.qubits)
            else:
                sim.apply_kraus(spec.kraus_operators(), spec.qubits)
    if idle:
        # align every qubit to the circuit's end time (pre-measurement)
        end = float(clocks.max())
        for q in range(circuit.num_qubits):
            spec = noise_model.relaxation_spec(q, end - clocks[q])
            if spec is not None:
                sim.apply_relaxation(spec.params[0], spec.params[1], q)
    return sim


def measurement_attenuations(hamiltonian: PauliSum, noise_model: NoiseModel,
                             include_basis_prep_error: bool = True) -> np.ndarray:
    """Per-term readout (+ basis-prep) attenuation factors.

    Shared convention with the Clifford model so that the two evaluators
    differ *only* in how gate noise propagates -- exactly the (2) vs (3)
    comparison the paper draws in Fig. 5.
    """
    support = hamiltonian.table.supports_mask()
    att = noise_model.readout_z_attenuation()
    factors = np.prod(np.where(support, att[None, :], 1.0), axis=1)
    if include_basis_prep_error:
        prep = 1.0 - 4.0 * noise_model.depol_1q / 3.0
        factors = factors * np.prod(
            np.where(hamiltonian.table.x, prep[None, :], 1.0), axis=1)
    return factors


def noisy_energy(circuit: Circuit, hamiltonian: PauliSum,
                 noise_model: NoiseModel,
                 include_basis_prep_error: bool = True) -> float:
    """Device-model energy ``tr[rho H]`` with readout attenuation."""
    sim = evolve_with_noise(circuit, noise_model)
    attenuation = measurement_attenuations(hamiltonian, noise_model,
                                           include_basis_prep_error)
    return sim.expectation_sum(hamiltonian, attenuation)


def noiseless_energy(circuit: Circuit, hamiltonian: PauliSum) -> float:
    """``<psi|H|psi>`` for the noise-free bound circuit (diamond markers)."""
    from .statevector import pauli_sum_expectation, simulate_statevector

    return pauli_sum_expectation(hamiltonian, simulate_statevector(circuit))
