"""Batched density-matrix evolution: one noisy run for a whole theta batch.

The scalar :class:`~repro.densesim.density_matrix.DensityMatrixSimulator`
pays the full per-instruction Python/numpy dispatch cost for every
parameter point.  At the package's working sizes (6-10 qubits) that
dispatch -- not the arithmetic -- dominates, so evaluating a GA population
or an SPSA sweep point-by-point wastes almost all of its wall time.

This module stacks ``B`` density matrices into one ``(B, 2^n, 2^n)``
tensor and evolves them together: every gate, channel, and idle-relaxation
application is a single broadcast numpy operation across the batch, so the
per-instruction overhead is paid once per *batch* instead of once per
*point*.  Parameterized rotations take a vector of per-point angles; all
noise channels are parameter-independent (they depend only on the gate's
name and qubits), which is what makes the shared walk exact.

Points in a batch must share a circuit *structure* (the same instruction
sequence after identity-rotation dropping); the estimator layer groups
points by structure signature before calling in here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Instruction
from ..noise.model import NoiseModel
from .statevector import _masks


def _is_zero(value) -> bool:
    """True when a matrix entry (scalar or per-point array) is exactly 0."""
    if isinstance(value, np.ndarray):
        return not value.any()
    return value == 0


def rotation_matrices(name: str, angles: np.ndarray) -> np.ndarray:
    """Per-point ``(B, 2, 2)`` matrices of one rotation gate family."""
    angles = np.asarray(angles, dtype=float)
    half = angles / 2.0
    out = np.empty((len(angles), 2, 2), dtype=complex)
    if name == "rx":
        c, s = np.cos(half), np.sin(half)
        out[:, 0, 0] = c
        out[:, 0, 1] = -1j * s
        out[:, 1, 0] = -1j * s
        out[:, 1, 1] = c
    elif name == "ry":
        c, s = np.cos(half), np.sin(half)
        out[:, 0, 0] = c
        out[:, 0, 1] = -s
        out[:, 1, 0] = s
        out[:, 1, 1] = c
    elif name == "rz":
        phase = np.exp(-1j * half)
        out[:, 0, 0] = phase
        out[:, 0, 1] = 0.0
        out[:, 1, 0] = 0.0
        out[:, 1, 1] = np.conj(phase)
    else:
        raise ValueError(f"unknown rotation gate {name!r}")
    return out


class BatchedDensityMatrixSimulator:
    """``B`` mixed states on ``num_qubits`` qubits, evolved in lockstep.

    The state tensor has shape ``(B,) + (2,) * 2n``: axis 0 is the batch,
    axes ``1..n`` the row (ket) qubits, axes ``n+1..2n`` the column (bra)
    qubits -- the batched twin of the scalar simulator's layout.
    """

    def __init__(self, num_qubits: int, batch_size: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if batch_size < 1:
            raise ValueError("need at least one batch point")
        self.num_qubits = int(num_qubits)
        self.batch_size = int(batch_size)
        shape = (self.batch_size,) + (2,) * (2 * self.num_qubits)
        self.tensor = np.zeros(shape, dtype=complex)
        self.tensor.reshape(self.batch_size, -1)[:, 0] = 1.0

    # ------------------------------------------------------------------
    # Axis helpers
    # ------------------------------------------------------------------
    def _row(self, q: int) -> int:
        return 1 + q

    def _col(self, q: int) -> int:
        return 1 + self.num_qubits + q

    def _slice(self, axis: int, value: int) -> tuple:
        return (slice(None),) * axis + (value,)

    def _apply_fixed(self, matrix: np.ndarray, axes: tuple[int, ...]) -> None:
        """Left-multiply one fixed ``2^k x 2^k`` matrix onto tensor axes."""
        if len(axes) == 1:
            self._apply_1q_axis(matrix[0, 0], matrix[0, 1],
                                matrix[1, 0], matrix[1, 1], axes[0])
            return
        k = len(axes)
        mat_t = matrix.reshape((2,) * (2 * k))
        out = np.tensordot(mat_t, self.tensor,
                           axes=(tuple(range(k, 2 * k)), axes))
        # tensordot result: matrix row axes first, batch + rest after
        self.tensor = np.ascontiguousarray(
            np.moveaxis(out, tuple(range(k)), axes))

    def _apply_1q_axis(self, a, b, c, d, axis: int) -> None:
        """In-place 1q left-multiply on one tensor axis.

        ``a..d`` are the matrix entries -- scalars (shared matrix) or
        ``(B,)``-broadcastable arrays (per-point matrices).  Slice views
        keep the state contiguous: no transposition copies on the 2^n-sized
        working set, which is what makes the batch win at larger n.
        """
        i0 = self._slice(axis, 0)
        i1 = self._slice(axis, 1)
        v0 = self.tensor[i0]
        v1 = self.tensor[i1]
        if _is_zero(b) and _is_zero(c):  # diagonal gate (rz): pure scaling
            self.tensor[i0] = a * v0
            self.tensor[i1] = d * v1
            return
        new0 = a * v0 + b * v1
        new1 = c * v0 + d * v1
        self.tensor[i0] = new0
        self.tensor[i1] = new1

    def _apply_per_point(self, matrices: np.ndarray, axis: int) -> None:
        """Left-multiply per-point ``(B, 2, 2)`` matrices onto one axis."""
        extra = self.tensor.ndim - 1  # broadcast (B,) over the state axes
        shape = (self.batch_size,) + (1,) * (extra - 1)
        self._apply_1q_axis(matrices[:, 0, 0].reshape(shape),
                            matrices[:, 0, 1].reshape(shape),
                            matrices[:, 1, 0].reshape(shape),
                            matrices[:, 1, 1].reshape(shape), axis)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray,
                      qubits: Sequence[int]) -> None:
        """``rho -> U rho U†`` with one matrix shared by the whole batch."""
        qubits = tuple(qubits)
        self._apply_fixed(matrix, tuple(self._row(q) for q in qubits))
        self._apply_fixed(matrix.conj(), tuple(self._col(q) for q in qubits))

    def apply_unitary_per_point(self, matrices: np.ndarray,
                                qubit: int) -> None:
        """``rho_b -> U_b rho_b U_b†`` with per-point 1q matrices."""
        self._apply_per_point(matrices, self._row(qubit))
        self._apply_per_point(matrices.conj(), self._col(qubit))

    def apply_kraus(self, ops: Sequence[np.ndarray],
                    qubits: Sequence[int]) -> None:
        """``rho -> sum_i K_i rho K_i†`` shared by the whole batch."""
        qubits = tuple(qubits)
        row_axes = tuple(self._row(q) for q in qubits)
        col_axes = tuple(self._col(q) for q in qubits)
        source = self.tensor
        result = np.zeros_like(source)
        k = len(qubits)
        for op in ops:
            mat_t = op.reshape((2,) * (2 * k))
            step = np.tensordot(mat_t, source,
                                axes=(tuple(range(k, 2 * k)), row_axes))
            step = np.moveaxis(step, tuple(range(k)), row_axes)
            conj_t = op.conj().reshape((2,) * (2 * k))
            step = np.tensordot(conj_t, step,
                                axes=(tuple(range(k, 2 * k)), col_axes))
            result += np.moveaxis(step, tuple(range(k)), col_axes)
        self.tensor = result

    def _pair_slice(self, positions: tuple[int, ...],
                    values: tuple[int, ...]) -> tuple:
        index = [slice(None)] * self.tensor.ndim
        for position, value in zip(positions, values):
            index[position] = value
        return tuple(index)

    def apply_depolarizing(self, p: float, qubits: Sequence[int]) -> None:
        """Depolarizing channel in closed form (the scalar twin, batched).

        ``rho -> (1 - r) rho + r * (tr_q rho) (x) I/2^k`` applied through
        slice views: off-diagonal blocks scale by ``1 - r``, diagonal
        blocks blend toward their average -- one pass over the state, no
        full-size outer-product temporaries.
        """
        k = len(qubits)
        strength = p * (4 ** k) / (4 ** k - 1)
        keep = 1.0 - strength
        qubits = tuple(qubits)
        axes = tuple(self._row(q) for q in qubits) \
            + tuple(self._col(q) for q in qubits)
        tensor = self.tensor
        if k == 1:
            v00 = tensor[self._pair_slice(axes, (0, 0))]
            v11 = tensor[self._pair_slice(axes, (1, 1))]
            blend = (0.5 * strength) * (v00 + v11)
            new00 = keep * v00 + blend
            new11 = keep * v11 + blend
            tensor[self._pair_slice(axes, (0, 1))] *= keep
            tensor[self._pair_slice(axes, (1, 0))] *= keep
            tensor[self._pair_slice(axes, (0, 0))] = new00
            tensor[self._pair_slice(axes, (1, 1))] = new11
            return
        diagonal = [(i, j, i, j) for i in (0, 1) for j in (0, 1)]
        blocks = [tensor[self._pair_slice(axes, d)] for d in diagonal]
        blend = (0.25 * strength) * (blocks[0] + blocks[1]
                                     + blocks[2] + blocks[3])
        new_blocks = [keep * block + blend for block in blocks]
        tensor *= keep
        for d, new in zip(diagonal, new_blocks):
            tensor[self._pair_slice(axes, d)] = new

    def apply_relaxation(self, gamma: float, eta: float, qubit: int) -> None:
        """Thermal relaxation in closed form on one qubit, whole batch."""
        view = np.moveaxis(self.tensor, (self._row(qubit), self._col(qubit)),
                           (0, 1))
        view[0, 1] *= eta
        view[1, 0] *= eta
        view[0, 0] += gamma * view[1, 1]
        view[1, 1] *= 1.0 - gamma

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def pauli_expectations(self, paulis) -> np.ndarray:
        """``tr[rho_b P_i]`` for every batch point and term: ``(B, M)``."""
        n = self.num_qubits
        dim = 2 ** n
        rho = self.tensor.reshape(self.batch_size, dim, dim)
        indices = np.arange(dim, dtype=np.uint64)
        out = np.empty((self.batch_size, len(paulis)))
        for i, pauli in enumerate(paulis):
            xmask, zmask = _masks(pauli.x, pauli.z, n)
            phases = (-1.0) ** np.bitwise_count(indices & np.uint64(zmask))
            coeff = pauli.sign * (1j) ** int(np.count_nonzero(pauli.x & pauli.z))
            flipped = (indices ^ np.uint64(xmask)).astype(np.int64)
            values = (rho[:, indices.astype(np.int64), flipped]
                      * phases[None, :]).sum(axis=1)
            out[:, i] = np.real(coeff * values)
        return out


def evolve_steps_with_noise(steps: list[tuple[Instruction, np.ndarray | None]],
                            num_qubits: int, batch_size: int,
                            noise_model: NoiseModel
                            ) -> BatchedDensityMatrixSimulator:
    """Evolve a batch through one shared circuit structure with noise.

    ``steps`` is the bound circuit as ``(instruction, angles)`` pairs:
    ``angles`` is a ``(B,)`` vector of per-point rotation angles for
    parameter-dependent rotations and ``None`` for instructions shared by
    every point.  The walk (channel dispatch, ASAP idle-relaxation
    scheduling) mirrors :func:`repro.densesim.evaluator.evolve_with_noise`
    exactly; noise channels never depend on rotation angles, so one
    schedule serves the whole batch.
    """
    if noise_model.num_qubits != num_qubits:
        raise ValueError("noise model size does not match circuit register")
    sim = BatchedDensityMatrixSimulator(num_qubits, batch_size)
    idle = (noise_model.include_idle_relaxation
            and noise_model.include_relaxation
            and noise_model.t1 is not None)
    clocks = np.zeros(num_qubits)
    for inst, angles in steps:
        if idle:
            start = max(clocks[q] for q in inst.qubits)
            for q in inst.qubits:
                spec = noise_model.relaxation_spec(q, start - clocks[q])
                if spec is not None:
                    sim.apply_relaxation(spec.params[0], spec.params[1], q)
            duration = noise_model.gate_duration(inst)
            for q in inst.qubits:
                clocks[q] = start + duration
        if angles is None:
            sim.apply_unitary(inst.matrix(), inst.qubits)
        else:
            sim.apply_unitary_per_point(
                rotation_matrices(inst.name, angles), inst.qubits[0])
        for spec in noise_model.channels_after(inst):
            if spec.kind == "depol":
                sim.apply_depolarizing(spec.params[0], spec.qubits)
            elif spec.kind == "relax":
                sim.apply_relaxation(spec.params[0], spec.params[1],
                                     spec.qubits[0])
            elif spec.kind == "unitary_zz":
                (op,) = spec.kraus_operators()
                sim.apply_unitary(op, spec.qubits)
            else:
                sim.apply_kraus(spec.kraus_operators(), spec.qubits)
    if idle:
        end = float(clocks.max())
        for q in range(num_qubits):
            spec = noise_model.relaxation_spec(q, end - clocks[q])
            if spec is not None:
                sim.apply_relaxation(spec.params[0], spec.params[1], q)
    return sim
