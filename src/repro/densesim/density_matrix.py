"""Dense density-matrix simulator -- the "full device model" evaluator.

This module plays the role of Qiskit Aer's density-matrix method in the
paper's evaluation (Sec. 5.2.2): circuits are evolved exactly under unitary
gates *and* completely positive noise channels (including the non-Clifford
amplitude damping), which defines the device-model energy marked "x" in
Figure 5.  Practical up to ~12 qubits, comfortably covering the paper's
7- and 10-qubit benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from .statevector import _masks, apply_matrix


class DensityMatrixSimulator:
    """Exact mixed-state simulation on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = int(num_qubits)
        self.reset()

    def reset(self) -> None:
        dim = 2 ** self.num_qubits
        self.rho = np.zeros((dim, dim), dtype=complex)
        self.rho[0, 0] = 1.0

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """``rho -> U rho U†`` on the given qubits."""
        n = self.num_qubits
        qubits = tuple(qubits)
        tensor = self.rho.reshape((2,) * (2 * n))
        tensor = apply_matrix(tensor, matrix, qubits)
        col_axes = tuple(n + q for q in qubits)
        tensor = apply_matrix(tensor, matrix.conj(), col_axes)
        self.rho = tensor.reshape(2 ** n, 2 ** n)

    def apply_kraus(self, ops: Sequence[np.ndarray], qubits: Sequence[int]) -> None:
        """``rho -> sum_i K_i rho K_i†`` on the given qubits."""
        n = self.num_qubits
        qubits = tuple(qubits)
        col_axes = tuple(n + q for q in qubits)
        source = self.rho.reshape((2,) * (2 * n))
        result = np.zeros_like(source)
        for k in ops:
            tensor = apply_matrix(source, k, qubits)
            tensor = apply_matrix(tensor, k.conj(), col_axes)
            result += tensor
        self.rho = result.reshape(2 ** n, 2 ** n)

    def apply_depolarizing(self, p: float, qubits: Sequence[int]) -> None:
        """Depolarizing channel in closed form (no Kraus enumeration).

        ``rho -> (1 - r) rho + r * (tr_q rho) (x) I/2^k`` with
        ``r = p * 4^k / (4^k - 1)``, using ``sum_P P rho P = 4^k D(rho)``.
        """
        k = len(qubits)
        strength = p * (4 ** k) / (4 ** k - 1)
        n = self.num_qubits
        qubits = tuple(qubits)
        tensor = self.rho.reshape((2,) * (2 * n))
        row_axes = qubits
        col_axes = tuple(n + q for q in qubits)
        # partial trace over the channel qubits, then re-insert I/2^k
        traced = np.trace(tensor, axis1=row_axes[0], axis2=col_axes[0]) \
            if k == 1 else None
        if k == 1:
            identity = np.eye(2) / 2.0
            mixed = np.tensordot(identity, traced, axes=0)
            # axes: (row_q, col_q, ...rest) -> restore positions
            mixed = np.moveaxis(mixed, (0, 1), (row_axes[0], col_axes[0]))
        else:
            # trace out both qubits; removing the higher pair first, then
            # adjusting the lower column index for the removed row axis
            (r_hi, c_hi), (r_lo, c_lo) = sorted(zip(row_axes, col_axes),
                                                reverse=True)
            traced = np.trace(tensor, axis1=r_hi, axis2=c_hi)
            traced = np.trace(traced, axis1=r_lo, axis2=c_lo - 1)
            identity = np.eye(4).reshape(2, 2, 2, 2) / 4.0  # (r1, r2, c1, c2)
            mixed = np.tensordot(identity, traced, axes=0)
            mixed = np.moveaxis(mixed, (0, 1, 2, 3),
                                (row_axes[0], row_axes[1],
                                 col_axes[0], col_axes[1]))
        result = (1.0 - strength) * tensor + strength * mixed
        self.rho = result.reshape(2 ** n, 2 ** n)

    def apply_relaxation(self, gamma: float, eta: float, qubit: int) -> None:
        """Thermal relaxation in closed form on one qubit.

        ``gamma = 1 - exp(-t/T1)`` is the decay probability and
        ``eta = exp(-t/T2)`` the total off-diagonal retention:
        populations flow ``|1><1| -> |0><0|``, coherences scale by ``eta``.
        """
        n = self.num_qubits
        tensor = self.rho.reshape((2,) * (2 * n))
        view = np.moveaxis(tensor, (qubit, n + qubit), (0, 1))
        view[0, 1] *= eta
        view[1, 0] *= eta
        view[0, 0] += gamma * view[1, 1]
        view[1, 1] *= 1.0 - gamma

    def apply_instruction(self, inst) -> None:
        self.apply_unitary(inst.matrix(), inst.qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("register size mismatch")
        for inst in circuit.instructions:
            self.apply_instruction(inst)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def pauli_expectation(self, pauli) -> float:
        """``tr[rho P]`` in O(2^n) via the Pauli's sparsity pattern."""
        n = self.num_qubits
        xmask, zmask = _masks(pauli.x, pauli.z, n)
        indices = np.arange(2 ** n, dtype=np.uint64)
        phases = (-1.0) ** np.bitwise_count(indices & np.uint64(zmask))
        coeff = pauli.sign * (1j) ** int(np.count_nonzero(pauli.x & pauli.z))
        flipped = (indices ^ np.uint64(xmask)).astype(np.int64)
        # (rho P)[b, b] = rho[b, b ^ x] * c(b) with c(b) the phase of P|b>.
        value = np.sum(self.rho[indices.astype(np.int64), flipped] * phases)
        return float(np.real(coeff * value))

    def expectation_sum(self, hamiltonian,
                        term_attenuation: np.ndarray | None = None) -> float:
        """``tr[rho H]``, optionally scaling each term (readout attenuation)."""
        values = np.array([self.pauli_expectation(p)
                           for _, p in hamiltonian.terms()])
        coeffs = hamiltonian.coefficients
        if term_attenuation is not None:
            values = values * term_attenuation
        return float(coeffs @ values)

    def probabilities(self) -> np.ndarray:
        """Z-basis outcome distribution (diagonal of rho)."""
        probs = np.real(np.diag(self.rho)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total <= 0:
            raise ValueError("density matrix has non-positive trace")
        return probs / total

    def probabilities_with_readout_error(
            self, p01: np.ndarray, p10: np.ndarray) -> np.ndarray:
        """Outcome distribution after per-qubit confusion matrices.

        ``p01[k]`` is the probability of reporting 1 when qubit ``k`` is 0;
        ``p10[k]`` of reporting 0 when it is 1 (the asymmetric misassignment
        model of Sec. 4.2.3).
        """
        n = self.num_qubits
        tensor = self.probabilities().reshape((2,) * n)
        for q in range(n):
            confusion = np.array([[1 - p01[q], p10[q]],
                                  [p01[q], 1 - p10[q]]])
            tensor = np.moveaxis(
                np.tensordot(confusion, tensor, axes=([1], [q])), 0, q)
        return tensor.reshape(2 ** n)

    def sample_counts(self, shots: int, rng: np.random.Generator,
                      p01: np.ndarray | None = None,
                      p10: np.ndarray | None = None) -> dict[str, int]:
        """Sample measurement bitstrings (qubit 0 leftmost)."""
        if p01 is not None or p10 is not None:
            n = self.num_qubits
            p01 = np.zeros(n) if p01 is None else np.asarray(p01, dtype=float)
            p10 = np.zeros(n) if p10 is None else np.asarray(p10, dtype=float)
            probs = self.probabilities_with_readout_error(p01, p10)
        else:
            probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        counts: dict[str, int] = {}
        width = self.num_qubits
        for idx in outcomes:
            key = format(int(idx), f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def purity(self) -> float:
        return float(np.real(np.trace(self.rho @ self.rho)))

    def fidelity_with_state(self, state: np.ndarray) -> float:
        """``<psi| rho |psi>`` against a pure reference state."""
        return float(np.real(np.conj(state) @ self.rho @ state))
