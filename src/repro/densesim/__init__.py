"""Dense statevector / density-matrix simulation (Aer substitute)."""

from .statevector import (
    apply_matrix,
    pauli_expectation,
    pauli_sum_expectation,
    simulate_statevector,
)
from .density_matrix import DensityMatrixSimulator
from .batched import BatchedDensityMatrixSimulator, evolve_steps_with_noise
from . import channels
from .evaluator import (
    evolve_with_noise,
    measurement_attenuations,
    noiseless_energy,
    noisy_energy,
)

__all__ = [
    "BatchedDensityMatrixSimulator", "DensityMatrixSimulator",
    "apply_matrix", "channels", "evolve_steps_with_noise",
    "evolve_with_noise", "measurement_attenuations", "noiseless_energy",
    "noisy_energy", "pauli_expectation", "pauli_sum_expectation",
    "simulate_statevector",
]
