"""Dense statevector / density-matrix simulation (Aer substitute)."""

from .statevector import (
    apply_matrix,
    pauli_expectation,
    pauli_sum_expectation,
    simulate_statevector,
)
from .density_matrix import DensityMatrixSimulator
from . import channels
from .evaluator import (
    evolve_with_noise,
    measurement_attenuations,
    noiseless_energy,
    noisy_energy,
)

__all__ = [
    "DensityMatrixSimulator", "apply_matrix", "channels",
    "evolve_with_noise", "measurement_attenuations", "noiseless_energy",
    "noisy_energy", "pauli_expectation", "pauli_sum_expectation",
    "simulate_statevector",
]
