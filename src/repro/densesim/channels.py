"""Kraus operators for the noise channels of Section 2.2.

These feed the density-matrix simulator that plays the role of Qiskit's
``AerSimulator`` with a backend noise model: depolarizing gate errors
(Sec. 2.2.2), thermal relaxation via amplitude damping (Sec. 2.2.1, the
non-Clifford channel that the Clifford noise model cannot capture), pure
dephasing, and bit-flip readout error (Sec. 2.2.3).

Every constructor returns a list of Kraus matrices ``K_i`` satisfying
``sum_i K_i† K_i = 1`` (validated in tests).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..paulis.pauli import PAULI_MATRICES

_I2 = np.eye(2, dtype=complex)


def depolarizing_kraus(p: float, num_qubits: int = 1) -> list[np.ndarray]:
    """Depolarizing channel of strength ``p`` on 1 or 2 qubits.

    With probability ``p`` one of the 4^k - 1 non-identity Paulis is applied
    (each with probability ``p / (4^k - 1)``) -- the convention used by stim
    and by randomized-benchmarking error rates (Sec. 2.2.2).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("depolarizing strength must be in [0, 1]")
    if num_qubits == 1:
        paulis = [PAULI_MATRICES[c] for c in "IXYZ"]
    elif num_qubits == 2:
        paulis = [np.kron(PAULI_MATRICES[a], PAULI_MATRICES[b])
                  for a in "IXYZ" for b in "IXYZ"]
    else:
        raise ValueError("only 1- and 2-qubit depolarizing supported")
    num_errors = len(paulis) - 1
    ops = [math.sqrt(1.0 - p) * paulis[0]]
    ops.extend(math.sqrt(p / num_errors) * mat for mat in paulis[1:])
    return ops


def amplitude_damping_kraus(gamma: float) -> list[np.ndarray]:
    """T1 decay: ``|1> -> |0>`` with probability ``gamma = 1 - exp(-t/T1)``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("damping probability must be in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> list[np.ndarray]:
    """Pure dephasing with parameter ``lam`` (off-diagonals shrink by sqrt(1-lam))."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("dephasing parameter must be in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def bitflip_kraus(p: float) -> list[np.ndarray]:
    """Classical bit flip with probability ``p`` (symmetric readout model)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("flip probability must be in [0, 1]")
    return [math.sqrt(1 - p) * _I2, math.sqrt(p) * PAULI_MATRICES["X"]]


def compose_kraus(first: Sequence[np.ndarray], second: Sequence[np.ndarray]
                  ) -> list[np.ndarray]:
    """Kraus set of ``second . first`` (apply ``first``, then ``second``)."""
    return [k2 @ k1 for k2 in second for k1 in first]


def thermal_relaxation_kraus(duration: float, t1: float, t2: float
                             ) -> list[np.ndarray]:
    """Thermal relaxation over ``duration`` with decay times ``T1`` and ``T2``.

    Modeled as amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed
    with the pure dephasing that tops total coherence decay up to
    ``exp(-t/T2)``.  Requires ``T2 <= 2*T1`` (physicality).
    """
    if duration < 0 or t1 <= 0 or t2 <= 0:
        raise ValueError("duration must be >= 0 and decay times positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("unphysical decay times: T2 must be <= 2*T1")
    gamma = 1.0 - math.exp(-duration / t1)
    # total off-diagonal factor exp(-t/T2) = sqrt(1-gamma) * sqrt(1-lam)
    target = math.exp(-duration / t2)
    base = math.sqrt(1.0 - gamma)
    lam = 1.0 - min(1.0, (target / base) ** 2) if base > 0 else 0.0
    return compose_kraus(amplitude_damping_kraus(gamma),
                         phase_damping_kraus(lam))


def validate_kraus(ops: Sequence[np.ndarray], atol: float = 1e-9) -> None:
    """Raise unless ``sum K† K = 1`` (trace preservation)."""
    dim = ops[0].shape[0]
    total = sum(k.conj().T @ k for k in ops)
    if not np.allclose(total, np.eye(dim), atol=atol):
        raise ValueError("Kraus operators are not trace preserving")
