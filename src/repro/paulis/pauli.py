"""Single Pauli strings in symplectic (binary) representation.

A Pauli string on ``n`` qubits is stored as two boolean vectors ``x`` and
``z`` together with a phase exponent ``q`` (mod 4), encoding the operator

    P = (-i)**q  *  (Z_0**z0 ... Z_{n-1}**z_{n-1}) (X_0**x0 ... X_{n-1}**x_{n-1})

This is the standard symplectic convention (also used by Qiskit's
``quantum_info`` and by stim internally).  A *canonical* Pauli string -- a
plain tensor product of I/X/Y/Z with a real sign -- has phase exponent
``q = (number of Y factors) + 2 * (0 or 1)`` because ``Y = -i Z X``.

The symplectic form makes multiplication, commutation checks, and Clifford
conjugation O(n) bit operations, which is what lets Clapton conjugate
Hamiltonians with hundreds of terms through circuits cheaply.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

# Canonical single-qubit Pauli matrices, used for dense cross-checks in tests
# and for building Clifford tableaus from gate unitaries.
PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_LABEL_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}

_PHASE_FACTORS = (1, -1j, -1, 1j)  # (-i)**q for q = 0, 1, 2, 3


class PauliString:
    """An n-qubit Pauli operator with phase, e.g. ``-X0 Z2 Y3``.

    Instances are immutable by convention: methods return new objects and the
    underlying arrays should not be mutated by callers.

    Args:
        x: Boolean array of X-components, one entry per qubit.
        z: Boolean array of Z-components, one entry per qubit.
        phase_exp: Phase exponent ``q`` (mod 4) in the ``(-i)**q Z^z X^x``
            convention.  Defaults to the canonical phase of the unsigned
            tensor product (i.e. one factor of ``-i`` per Y so the overall
            sign is +1).
    """

    __slots__ = ("x", "z", "phase_exp")

    def __init__(self, x, z, phase_exp: int | None = None):
        self.x = np.asarray(x, dtype=bool)
        self.z = np.asarray(z, dtype=bool)
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ValueError("x and z must be 1-D boolean arrays of equal length")
        if phase_exp is None:
            phase_exp = int(np.count_nonzero(self.x & self.z))
        self.phase_exp = int(phase_exp) % 4

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The identity operator on ``num_qubits`` qubits."""
        zeros = np.zeros(num_qubits, dtype=bool)
        return cls(zeros, zeros.copy(), 0)

    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Parse a label such as ``"XIZY"``, ``"-XZ"`` or ``"+IZ"``.

        Qubit 0 is the *leftmost* character (little-endian in qubit index,
        matching the order used throughout this package).
        """
        sign = 1
        body = label
        if body.startswith("+"):
            body = body[1:]
        elif body.startswith("-"):
            sign = -1
            body = body[1:]
        x = np.zeros(len(body), dtype=bool)
        z = np.zeros(len(body), dtype=bool)
        for k, ch in enumerate(body):
            if ch not in _LABEL_TO_XZ:
                raise ValueError(f"invalid Pauli character {ch!r} in {label!r}")
            x[k], z[k] = _LABEL_TO_XZ[ch]
        q = int(np.count_nonzero(x & z))
        if sign == -1:
            q = (q + 2) % 4
        return cls(x, z, q)

    @classmethod
    def from_sparse(cls, factors: Mapping[int, str], num_qubits: int,
                    sign: int = 1) -> "PauliString":
        """Build from a ``{qubit_index: "X"|"Y"|"Z"}`` mapping.

        Example: ``PauliString.from_sparse({0: "X", 3: "Z"}, 5)`` is
        ``X0 Z3`` on five qubits.
        """
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        for qubit, ch in factors.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit index {qubit} out of range")
            if ch == "I":
                continue
            x[qubit], z[qubit] = _LABEL_TO_XZ[ch]
        q = int(np.count_nonzero(x & z))
        if sign == -1:
            q = (q + 2) % 4
        elif sign != 1:
            raise ValueError("sign must be +1 or -1")
        return cls(x, z, q)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self.x | self.z))

    @property
    def support(self) -> np.ndarray:
        """Indices of qubits on which this Pauli acts non-trivially."""
        return np.flatnonzero(self.x | self.z)

    @property
    def phase(self) -> complex:
        """The full phase factor ``(-i)**q`` (may be imaginary)."""
        return _PHASE_FACTORS[self.phase_exp]

    @property
    def sign(self) -> int:
        """The real sign of the canonical form ``sign * (tensor of I/X/Y/Z)``.

        Raises:
            ValueError: if the phase is imaginary (the operator is ``+-i P``
                for a canonical Pauli ``P``), which never happens for
                Hermitian operators such as Clifford conjugates of signed
                Paulis.
        """
        q_canonical = int(np.count_nonzero(self.x & self.z))
        rel = (self.phase_exp - q_canonical) % 4
        if rel == 0:
            return 1
        if rel == 2:
            return -1
        raise ValueError("Pauli has imaginary phase; no real sign exists")

    @property
    def is_identity(self) -> bool:
        return not (self.x.any() or self.z.any())

    @property
    def is_z_type(self) -> bool:
        """True when the operator is diagonal (a product of I and Z only).

        Z-type Paulis are exactly the ones with non-zero expectation in the
        all-zeros state: ``<0|P|0> = sign`` for Z-type, 0 otherwise.
        """
        return not self.x.any()

    def expectation_all_zeros(self) -> float:
        """``<0...0| P |0...0>`` -- the quantity Clapton's L0 cost sums."""
        if self.x.any():
            return 0.0
        return float(self.sign)

    def commutes_with(self, other: "PauliString") -> bool:
        """Whether the two Paulis commute (via the symplectic inner product)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        overlap = np.count_nonzero(self.x & other.z) + np.count_nonzero(self.z & other.x)
        return overlap % 2 == 0

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __mul__(self, other: "PauliString") -> "PauliString":
        """Operator product ``self @ other`` with exact phase tracking.

        Using ``X^a Z^b = (-1)^{a.b} Z^b X^a`` to move ``other``'s Z block
        past ``self``'s X block gives the phase rule
        ``q = q1 + q2 + 2 * |x1 & z2|  (mod 4)``.
        """
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        q = (self.phase_exp + other.phase_exp
             + 2 * int(np.count_nonzero(self.x & other.z))) % 4
        return PauliString(self.x ^ other.x, self.z ^ other.z, q)

    def __neg__(self) -> "PauliString":
        return PauliString(self.x.copy(), self.z.copy(), (self.phase_exp + 2) % 4)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (self.phase_exp == other.phase_exp
                and np.array_equal(self.x, other.x)
                and np.array_equal(self.z, other.z))

    def __hash__(self) -> int:
        return hash((self.phase_exp, self.x.tobytes(), self.z.tobytes()))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_label(self, with_sign: bool = True) -> str:
        """Canonical label such as ``"-XIZY"`` (qubit 0 leftmost)."""
        body = "".join(_XZ_TO_LABEL[(int(a), int(b))]
                       for a, b in zip(self.x, self.z))
        if not with_sign:
            return body
        return ("-" if self.sign == -1 else "") + body

    def bare(self) -> "PauliString":
        """The same Pauli with its sign/phase reset to +1 (canonical)."""
        return PauliString(self.x.copy(), self.z.copy(), None)

    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix; only use for small ``n`` (tests)."""
        mat = np.array([[complex(self.phase * 1j ** int(np.count_nonzero(self.x & self.z)))]])
        # phase * i^{#Y} converts (-i)^q Z^z X^x to sign * tensor(I/X/Y/Z)
        result = np.array([[1.0 + 0j]])
        for a, b in zip(self.x, self.z):
            result = np.kron(result, PAULI_MATRICES[_XZ_TO_LABEL[(int(a), int(b))]])
        return mat[0, 0] * result

    def __repr__(self) -> str:
        try:
            return f"PauliString({self.to_label()!r})"
        except ValueError:
            return (f"PauliString(x={self.x.astype(int)}, z={self.z.astype(int)}, "
                    f"q={self.phase_exp})")


def random_pauli(num_qubits: int, rng: np.random.Generator,
                 allow_sign: bool = True) -> PauliString:
    """Uniformly random canonical Pauli string (optionally with random sign)."""
    codes = rng.integers(0, 4, size=num_qubits)
    x = (codes == 1) | (codes == 2)
    z = (codes == 2) | (codes == 3)
    q = int(np.count_nonzero(x & z))
    if allow_sign and rng.integers(0, 2) == 1:
        q = (q + 2) % 4
    return PauliString(x, z, q)
