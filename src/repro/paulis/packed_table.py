"""Word-packed Pauli batches: the hot-path representation of PauliTable.

``PackedPauliTable`` stores the same M Pauli strings on n qubits as
:class:`~repro.paulis.table.PauliTable`, but the X and Z bit matrices are
``(M, ceil(n/64))`` uint64 word arrays (column ``q`` at bit ``q % 64`` of
word ``q // 64``, tail bits zero -- see :mod:`repro.paulis.bitops`).  Every
row-wise query becomes a handful of word ops -- popcounts for weights and
phase counting, whole-word ``any`` for Z-type detection, word-wise XOR for
Pauli multiplication -- touching 8-64x less memory than the byte-per-bit
layout, which is what carries the Clifford conjugation kernel from ~32 to
100+ qubits.

The class mirrors the ``PauliTable`` surface (``tile``, ``signs``,
``z_type_mask``, ``expectation_all_zeros``, ``weights``, ``supports_mask``,
``mul_pauli_on_rows``, ``copy``, ``row`` and the column accessors), so the
conjugation layers dispatch on the representation without callers changing.
All integer/boolean arithmetic is exact, and the float formulas are
identical to the boolean path's, so packed results are **bit-identical** to
the bool-matrix oracle -- the equivalence suite in ``tests/test_bitops.py``
pins this at n = 1, 63, 64, 65 and 100.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from . import bitops
from ..obs.kernel import KERNEL
from .pauli import PauliString
from .table import PauliTable


class PackedPauliTable:
    """A mutable batch of M Pauli strings on n qubits in uint64 words.

    Like :class:`PauliTable`, instances are mutated in place by the Clifford
    conjugation routines; use :meth:`copy` when the original must survive.

    Args:
        x: ``(M, ceil(n/64))`` uint64 matrix of packed X components.
        z: ``(M, ceil(n/64))`` uint64 matrix of packed Z components.
        num_qubits: Bit-column count n (not derivable from the word shape).
        phase_exp: ``(M,)`` integer vector of phase exponents (mod 4).
    """

    __slots__ = ("x", "z", "phase_exp", "_num_qubits")

    def __init__(self, x, z, num_qubits: int, phase_exp=None):
        self.x = np.ascontiguousarray(x, dtype=np.uint64)
        self.z = np.ascontiguousarray(z, dtype=np.uint64)
        if self.x.shape != self.z.shape or self.x.ndim != 2:
            raise ValueError("x and z must be (M, W) word matrices of equal shape")
        if self.x.shape[1] != bitops.num_words(num_qubits):
            raise ValueError(f"need {bitops.num_words(num_qubits)} words per "
                             f"row for {num_qubits} qubits, got {self.x.shape[1]}")
        self._num_qubits = int(num_qubits)
        if phase_exp is None:
            phase_exp = bitops.popcount_rows(self.x & self.z)
        self.phase_exp = np.asarray(phase_exp, dtype=np.int64) % 4
        if self.phase_exp.shape != (self.x.shape[0],):
            raise ValueError("phase_exp must have one entry per row")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: PauliTable) -> "PackedPauliTable":
        """Pack a boolean-matrix table (bit-preserving)."""
        n = table.num_qubits
        return cls(bitops.pack_bits(table.x, n), bitops.pack_bits(table.z, n),
                   n, table.phase_exp.copy())

    @classmethod
    def from_paulis(cls, paulis: Sequence[PauliString],
                    num_qubits: int | None = None) -> "PackedPauliTable":
        return cls.from_table(PauliTable.from_paulis(paulis, num_qubits))

    @classmethod
    def from_labels(cls, labels: Iterable[str]) -> "PackedPauliTable":
        return cls.from_table(PauliTable.from_labels(labels))

    @classmethod
    def identity(cls, num_rows: int, num_qubits: int) -> "PackedPauliTable":
        shape = (num_rows, bitops.num_words(num_qubits))
        return cls(np.zeros(shape, dtype=np.uint64),
                   np.zeros(shape, dtype=np.uint64), num_qubits,
                   np.zeros(num_rows, dtype=np.int64))

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.x.shape[0]

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_words(self) -> int:
        return self.x.shape[1]

    def to_table(self) -> PauliTable:
        """Unpack back to the boolean-matrix representation (bit-preserving)."""
        n = self._num_qubits
        return PauliTable(bitops.unpack_bits(self.x, n),
                          bitops.unpack_bits(self.z, n),
                          self.phase_exp.copy())

    def copy(self) -> "PackedPauliTable":
        return PackedPauliTable(self.x.copy(), self.z.copy(),
                                self._num_qubits, self.phase_exp.copy())

    def tile(self, reps: int) -> "PackedPauliTable":
        """``reps`` stacked copies (copy ``p`` owns rows ``[p*M, (p+1)*M)``)."""
        if reps < 0:
            raise ValueError("reps must be >= 0")
        return PackedPauliTable(np.tile(self.x, (reps, 1)),
                                np.tile(self.z, (reps, 1)),
                                self._num_qubits,
                                np.tile(self.phase_exp, reps))

    def row(self, i: int) -> PauliString:
        n = self._num_qubits
        return PauliString(bitops.unpack_bits(self.x[i:i + 1], n)[0],
                           bitops.unpack_bits(self.z[i:i + 1], n)[0],
                           int(self.phase_exp[i]))

    def to_paulis(self) -> list[PauliString]:
        return [self.row(i) for i in range(self.num_rows)]

    # ------------------------------------------------------------------
    # Column accessors (the conjugation kernel's contract; PauliTable
    # exposes the same methods on the boolean layout)
    # ------------------------------------------------------------------
    def x_column(self, qubit: int) -> np.ndarray:
        """Bool ``(M,)`` X-bit column."""
        return bitops.get_bit(self.x, qubit)

    def z_column(self, qubit: int) -> np.ndarray:
        """Bool ``(M,)`` Z-bit column."""
        return bitops.get_bit(self.z, qubit)

    def codes_on(self, qubit: int,
                 rows: np.ndarray | slice = slice(None)) -> np.ndarray:
        """Per-row sub-Pauli codes ``x + 2z`` on one qubit (row subset)."""
        return (bitops.get_bit_i64(self.x, qubit, rows)
                + 2 * bitops.get_bit_i64(self.z, qubit, rows))

    def touches_any(self, qubits: Sequence[int]) -> np.ndarray:
        """Bool ``(M,)``: rows acting non-trivially on any listed qubit."""
        acc = np.zeros(self.num_rows, dtype=np.uint64)
        for q in qubits:
            word, bit = divmod(q, bitops.WORD_BITS)
            acc |= ((self.x[:, word] | self.z[:, word])
                    >> np.uint64(bit)) & np.uint64(1)
        return acc != 0

    def unpack_x(self) -> np.ndarray:
        """The ``(M, n)`` boolean X matrix (unpacked view for cold paths)."""
        return bitops.unpack_bits(self.x, self._num_qubits)

    def unpack_z(self) -> np.ndarray:
        """The ``(M, n)`` boolean Z matrix (unpacked view for cold paths)."""
        return bitops.unpack_bits(self.z, self._num_qubits)

    # ------------------------------------------------------------------
    # Batched queries used by the Clapton losses
    # ------------------------------------------------------------------
    def signs(self) -> np.ndarray:
        """Real sign (+-1) of every row's canonical form.

        Raises:
            ValueError: if any row has an imaginary phase.
        """
        q_canonical = bitops.popcount_rows(self.x & self.z)
        rel = (self.phase_exp - q_canonical) % 4
        if np.any(rel % 2):
            raise ValueError("table contains rows with imaginary phase")
        return np.where(rel == 0, 1.0, -1.0)

    def z_type_mask(self) -> np.ndarray:
        """Boolean mask of rows that are diagonal (no X component)."""
        return ~self.x.any(axis=1)

    def expectation_all_zeros(self) -> np.ndarray:
        """``<0|P_i|0>`` for every row: ``sign`` for Z-type rows, else 0."""
        mask = self.z_type_mask()
        out = np.zeros(self.num_rows)
        if mask.any():
            sub = PackedPauliTable(self.x[mask], self.z[mask],
                                   self._num_qubits, self.phase_exp[mask])
            out[mask] = sub.signs()
        return out

    def weights(self) -> np.ndarray:
        """Pauli weight (non-identity factor count) of every row."""
        return bitops.popcount_rows(self.x | self.z)

    def supports_mask(self) -> np.ndarray:
        """``(M, n)`` boolean matrix: True where a row touches a qubit."""
        return bitops.unpack_bits(self.x | self.z, self._num_qubits)

    # ------------------------------------------------------------------
    # In-place batched multiplication (the workhorse of conjugation)
    # ------------------------------------------------------------------
    def mul_pauli_on_rows(self, mask: np.ndarray, other: PauliString) -> None:
        """In place, replace ``row <- row * other`` for every row in ``mask``.

        Same phase rule as the boolean layout:
        ``q += q_other + 2 * |x_row & z_other|``, with the popcount running
        word-wise.
        """
        if not mask.any():
            return
        n = self._num_qubits
        ox = bitops.pack_bits(np.asarray(other.x, dtype=bool)[None, :], n)[0]
        oz = bitops.pack_bits(np.asarray(other.z, dtype=bool)[None, :], n)[0]
        self._mul_packed_on_rows(mask, ox, oz, other.phase_exp)

    def mul_table_row_on_rows(self, mask: np.ndarray,
                              other: "PackedPauliTable", i: int) -> None:
        """Like :meth:`mul_pauli_on_rows` with an already-packed row."""
        if not mask.any():
            return
        self._mul_packed_on_rows(mask, other.x[i], other.z[i],
                                 int(other.phase_exp[i]))

    def _mul_packed_on_rows(self, mask, other_x, other_z, other_q) -> None:
        # profile counters: rows scanned (full mask traversal) and word
        # columns touched -- shape ints only, no extra numpy passes
        # (counting the masked subset would cost a reduction per call)
        KERNEL.rows += self.x.shape[0]
        KERNEL.words += self.x.shape[0] * self.x.shape[1]
        extra = bitops.popcount_rows(self.x[mask] & other_z[None, :])
        self.phase_exp[mask] = (self.phase_exp[mask] + other_q + 2 * extra) % 4
        self.x[mask] ^= other_x[None, :]
        self.z[mask] ^= other_z[None, :]

    def __repr__(self) -> str:
        return (f"PackedPauliTable(num_rows={self.num_rows}, "
                f"num_qubits={self.num_qubits})")
