"""Weighted sums of Pauli strings -- the Hamiltonians Clapton transforms.

A VQE Hamiltonian is ``H = sum_i c_i P_i`` (Eq. 6 of the paper) with real
coefficients ``c_i`` and canonical (sign-free) Pauli strings ``P_i``; signs
produced by Clifford conjugation are absorbed into the coefficients, which is
exactly what :meth:`PauliSum.canonicalize` implements.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .pauli import PauliString
from .table import PauliTable


class PauliSum:
    """A real-weighted sum of Pauli strings on a fixed number of qubits.

    The terms are stored as a :class:`PauliTable` plus a coefficient vector.
    Construction canonicalizes: phases are folded into coefficients so every
    stored row has sign +1, and duplicate rows are merged.

    Args:
        table: Batch of Pauli strings (may carry +-1 signs; they are folded
            into the coefficients).
        coefficients: One real coefficient per table row.
    """

    __slots__ = ("table", "coefficients")

    def __init__(self, table: PauliTable, coefficients):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (table.num_rows,):
            raise ValueError("need exactly one coefficient per Pauli term")
        signs = table.signs()
        coefficients = coefficients * signs
        bare = PauliTable(table.x.copy(), table.z.copy())  # canonical phases
        self.table, self.coefficients = _merge_duplicates(bare, coefficients)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_terms(cls, terms: Iterable[tuple[float, str]]) -> "PauliSum":
        """Build from ``(coefficient, label)`` pairs, e.g. ``(0.5, "XXI")``."""
        terms = list(terms)
        if not terms:
            raise ValueError("need at least one term")
        coeffs = [c for c, _ in terms]
        table = PauliTable.from_labels([lbl for _, lbl in terms])
        return cls(table, coeffs)

    @classmethod
    def from_sparse_terms(cls, terms: Iterable[tuple[float, dict]],
                          num_qubits: int) -> "PauliSum":
        """Build from ``(coefficient, {qubit: "X"|"Y"|"Z"})`` pairs."""
        terms = list(terms)
        paulis = [PauliString.from_sparse(f, num_qubits) for _, f in terms]
        return cls(PauliTable.from_paulis(paulis), [c for c, _ in terms])

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self.table.num_qubits

    @property
    def num_terms(self) -> int:
        return self.table.num_rows

    def terms(self) -> list[tuple[float, PauliString]]:
        return [(float(c), p) for c, p in zip(self.coefficients, self.table.to_paulis())]

    def identity_constant(self) -> float:
        """The coefficient of the identity term (0.0 if absent)."""
        mask = ~(self.table.x.any(axis=1) | self.table.z.any(axis=1))
        return float(self.coefficients[mask].sum())

    def max_abs_coefficient(self) -> float:
        return float(np.abs(self.coefficients).max())

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "PauliSum") -> "PauliSum":
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        x = np.vstack([self.table.x, other.table.x])
        z = np.vstack([self.table.z, other.table.z])
        coeffs = np.concatenate([self.coefficients, other.coefficients])
        return PauliSum(PauliTable(x, z), coeffs)

    def __mul__(self, scalar: float) -> "PauliSum":
        return PauliSum(self.table.copy(), self.coefficients * float(scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "PauliSum":
        return self * -1.0

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (-other)

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def expectation_all_zeros(self) -> float:
        """``<0...0| H |0...0>`` -- Clapton's noiseless cost L0 (Eq. 10)."""
        return float(self.coefficients @ self.table.expectation_all_zeros())

    def mixed_state_energy(self) -> float:
        """``tr[H] / 2^n`` -- energy of the fully mixed state.

        Used by the paper (Fig. 5) as the upper normalization fixpoint;
        equals the identity-term coefficient because non-identity Paulis are
        traceless.
        """
        return self.identity_constant()

    def expectation_statevector(self, statevector: np.ndarray) -> float:
        """``<psi| H |psi>`` against a dense statevector (tests, small n)."""
        from ..densesim.statevector import pauli_sum_expectation

        return pauli_sum_expectation(self, statevector)

    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix; only for small ``n``."""
        dim = 2 ** self.num_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for c, p in self.terms():
            out += c * p.to_matrix()
        return out

    def to_sparse_matrix(self):
        """Sparse CSR matrix built term-by-term (used for exact E0)."""
        from ..hamiltonians.exact import pauli_sum_to_sparse

        return pauli_sum_to_sparse(self)

    def __repr__(self) -> str:
        return (f"PauliSum(num_qubits={self.num_qubits}, "
                f"num_terms={self.num_terms})")


def _merge_duplicates(table: PauliTable, coeffs: np.ndarray
                      ) -> tuple[PauliTable, np.ndarray]:
    """Merge identical rows (summing coefficients) and drop zero terms.

    Keeps first-seen order so Hamiltonians print deterministically.
    """
    if table.num_rows == 0:
        return table, coeffs
    keys = {}
    order = []
    merged = []
    for i in range(table.num_rows):
        key = (table.x[i].tobytes(), table.z[i].tobytes())
        if key in keys:
            merged[keys[key]] += coeffs[i]
        else:
            keys[key] = len(order)
            order.append(i)
            merged.append(float(coeffs[i]))
    merged = np.array(merged)
    keep = np.abs(merged) > 1e-12
    # Never drop everything: keep at least the first term even if zero, so
    # degenerate Hamiltonians (H = 0) remain representable.
    if not keep.any():
        keep[0] = True
    idx = np.array(order)[keep]
    return (PauliTable(table.x[idx], table.z[idx], table.phase_exp[idx]),
            merged[keep])
