"""Batched Pauli storage: many Pauli strings as bit matrices.

``PauliTable`` holds M Pauli strings on n qubits as two ``(M, n)`` boolean
matrices plus an ``(M,)`` phase-exponent vector, in the same
``(-i)**q Z^z X^x`` convention as :class:`~repro.paulis.pauli.PauliString`.

All of Clapton's hot loops -- conjugating every Hamiltonian term through a
candidate Clifford circuit, evaluating noise attenuation per term -- operate
on tables so that the work per gate is a handful of vectorized numpy
operations over all M terms at once rather than a Python loop.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .pauli import PauliString


class PauliTable:
    """A mutable batch of M Pauli strings on n qubits.

    Unlike :class:`PauliString`, tables are mutated in place by the Clifford
    conjugation routines (:mod:`repro.stabilizer.tableau`) for speed; use
    :meth:`copy` when the original must be preserved.

    Args:
        x: ``(M, n)`` boolean matrix of X components.
        z: ``(M, n)`` boolean matrix of Z components.
        phase_exp: ``(M,)`` integer vector of phase exponents (mod 4).
    """

    __slots__ = ("x", "z", "phase_exp")

    def __init__(self, x, z, phase_exp=None):
        self.x = np.ascontiguousarray(x, dtype=bool)
        self.z = np.ascontiguousarray(z, dtype=bool)
        if self.x.shape != self.z.shape or self.x.ndim != 2:
            raise ValueError("x and z must be (M, n) boolean matrices of equal shape")
        if phase_exp is None:
            phase_exp = np.count_nonzero(self.x & self.z, axis=1)
        self.phase_exp = np.asarray(phase_exp, dtype=np.int64) % 4
        if self.phase_exp.shape != (self.x.shape[0],):
            raise ValueError("phase_exp must have one entry per row")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_paulis(cls, paulis: Sequence[PauliString],
                    num_qubits: int | None = None) -> "PauliTable":
        """Stack Pauli strings into a table.

        An empty sequence is allowed when ``num_qubits`` says how wide the
        (0-row) table should be -- empty tables are first-class citizens of
        the batched kernels (batch trimming produces them).
        """
        if not paulis:
            if num_qubits is None:
                raise ValueError("need at least one Pauli (or pass num_qubits "
                                 "to build an empty table)")
            return cls.identity(0, num_qubits)
        n = paulis[0].num_qubits
        if num_qubits is not None and num_qubits != n:
            raise ValueError("num_qubits does not match the given Paulis")
        if any(p.num_qubits != n for p in paulis):
            raise ValueError("all Paulis must act on the same number of qubits")
        x = np.stack([p.x for p in paulis])
        z = np.stack([p.z for p in paulis])
        q = np.array([p.phase_exp for p in paulis], dtype=np.int64)
        return cls(x, z, q)

    @classmethod
    def from_labels(cls, labels: Iterable[str]) -> "PauliTable":
        return cls.from_paulis([PauliString.from_label(s) for s in labels])

    @classmethod
    def identity(cls, num_rows: int, num_qubits: int) -> "PauliTable":
        shape = (num_rows, num_qubits)
        return cls(np.zeros(shape, dtype=bool), np.zeros(shape, dtype=bool),
                   np.zeros(num_rows, dtype=np.int64))

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.x.shape[0]

    @property
    def num_qubits(self) -> int:
        return self.x.shape[1]

    def copy(self) -> "PauliTable":
        return PauliTable(self.x.copy(), self.z.copy(), self.phase_exp.copy())

    def tile(self, reps: int) -> "PauliTable":
        """``reps`` stacked copies of this table, as one ``(reps*M, n)`` table.

        The population-batched Clifford losses stack one Hamiltonian table
        copy per genome and conjugate all of them through per-genome row
        masks in a handful of numpy ops.  Copy ``p`` occupies the contiguous
        row block ``[p*M, (p+1)*M)``.
        """
        if reps < 0:
            raise ValueError("reps must be >= 0")
        return PauliTable(np.tile(self.x, (reps, 1)),
                          np.tile(self.z, (reps, 1)),
                          np.tile(self.phase_exp, reps))

    def row(self, i: int) -> PauliString:
        return PauliString(self.x[i].copy(), self.z[i].copy(), int(self.phase_exp[i]))

    def to_paulis(self) -> list[PauliString]:
        return [self.row(i) for i in range(self.num_rows)]

    # ------------------------------------------------------------------
    # Column accessors (the conjugation kernel's contract; the packed
    # representation exposes the same methods over uint64 words)
    # ------------------------------------------------------------------
    def x_column(self, qubit: int) -> np.ndarray:
        """Bool ``(M,)`` X-bit column."""
        return self.x[:, qubit]

    def z_column(self, qubit: int) -> np.ndarray:
        """Bool ``(M,)`` Z-bit column."""
        return self.z[:, qubit]

    def codes_on(self, qubit: int,
                 rows: np.ndarray | slice = slice(None)) -> np.ndarray:
        """Per-row sub-Pauli codes ``x + 2z`` on one qubit (row subset)."""
        return (self.x[rows, qubit].astype(np.int64)
                + 2 * self.z[rows, qubit].astype(np.int64))

    def touches_any(self, qubits) -> np.ndarray:
        """Bool ``(M,)``: rows acting non-trivially on any listed qubit."""
        qubits = list(qubits)
        return (self.x[:, qubits] | self.z[:, qubits]).any(axis=1)

    def unpack_x(self) -> np.ndarray:
        """The ``(M, n)`` boolean X matrix (this representation's own)."""
        return self.x

    def unpack_z(self) -> np.ndarray:
        """The ``(M, n)`` boolean Z matrix (this representation's own)."""
        return self.z

    # ------------------------------------------------------------------
    # Batched queries used by the Clapton losses
    # ------------------------------------------------------------------
    def signs(self) -> np.ndarray:
        """Real sign (+-1) of every row's canonical form.

        Raises:
            ValueError: if any row has an imaginary phase.
        """
        q_canonical = np.count_nonzero(self.x & self.z, axis=1)
        rel = (self.phase_exp - q_canonical) % 4
        if np.any(rel % 2):
            raise ValueError("table contains rows with imaginary phase")
        return np.where(rel == 0, 1.0, -1.0)

    def z_type_mask(self) -> np.ndarray:
        """Boolean mask of rows that are diagonal (no X component)."""
        return ~self.x.any(axis=1)

    def expectation_all_zeros(self) -> np.ndarray:
        """``<0|P_i|0>`` for every row: ``sign`` for Z-type rows, else 0."""
        mask = self.z_type_mask()
        out = np.zeros(self.num_rows)
        if mask.any():
            sub = PauliTable(self.x[mask], self.z[mask], self.phase_exp[mask])
            out[mask] = sub.signs()
        return out

    def weights(self) -> np.ndarray:
        """Pauli weight (non-identity factor count) of every row."""
        return np.count_nonzero(self.x | self.z, axis=1)

    def supports_mask(self) -> np.ndarray:
        """``(M, n)`` boolean matrix: True where a row touches a qubit."""
        return self.x | self.z

    # ------------------------------------------------------------------
    # In-place batched multiplication (the workhorse of conjugation)
    # ------------------------------------------------------------------
    def mul_pauli_on_rows(self, mask: np.ndarray, other: PauliString) -> None:
        """In place, replace ``row <- row * other`` for every row in ``mask``.

        Phase rule (see :meth:`PauliString.__mul__`):
        ``q += q_other + 2 * |x_row & z_other|``.
        """
        if not mask.any():
            return
        extra = np.count_nonzero(self.x[mask] & other.z[None, :], axis=1)
        self.phase_exp[mask] = (self.phase_exp[mask] + other.phase_exp + 2 * extra) % 4
        self.x[mask] ^= other.x[None, :]
        self.z[mask] ^= other.z[None, :]

    def __repr__(self) -> str:
        return f"PauliTable(num_rows={self.num_rows}, num_qubits={self.num_qubits})"
