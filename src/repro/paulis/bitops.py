"""Bit-packed Pauli storage primitives: 64 qubit columns per machine word.

The byte-per-bit boolean matrices of :class:`~repro.paulis.table.PauliTable`
are the clearest representation but burn 8-64x more memory bandwidth than
the information content requires, which caps the conjugation hot path well
below the 50-100+ qubit scale word-packed tableau codes reach routinely
(Aaronson-Gottesman, arXiv:quant-ph/0406196).  This module is the packed
layout's toolbox:

* :func:`pack_bits` / :func:`unpack_bits` -- ``(M, n)`` bool matrices to and
  from ``(M, ceil(n/64))`` uint64 words, column ``q`` living at bit
  ``q % 64`` of word ``q // 64`` (little-endian bit order, so packing is one
  ``np.packbits`` call);
* :func:`popcount` / :func:`popcount_rows` -- per-word and per-row set-bit
  counts (``np.bitwise_count`` when available, a byte-table fallback
  otherwise);
* :func:`get_bit` / :func:`get_bit_i64` / :func:`set_bit` -- single-column
  extraction and deposit, the primitive under the LUT conjugation kernel.

All functions preserve the tail invariant: bits at columns ``>= n`` in the
last word are zero.  Word-wise XOR/AND of two valid operands keeps it, and
:func:`set_bit` only ever touches columns ``< n``, so consumers may rely on
whole-word reductions (``any``, popcounts) without masking.
"""

from __future__ import annotations

import sys

import numpy as np

WORD_BITS = 64

_LITTLE_ENDIAN = sys.byteorder == "little"


def num_words(num_qubits: int) -> int:
    """Words needed for ``num_qubits`` bit columns (0 for an empty register)."""
    if num_qubits < 0:
        raise ValueError("num_qubits must be >= 0")
    return (num_qubits + WORD_BITS - 1) // WORD_BITS


def tail_mask(num_qubits: int) -> np.uint64:
    """Mask of the valid bits in the last word (all ones when n % 64 == 0)."""
    rem = num_qubits % WORD_BITS
    if rem == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << rem) - 1)


def pack_bits(bits: np.ndarray, num_qubits: int | None = None) -> np.ndarray:
    """Pack an ``(M, n)`` bool matrix into ``(M, ceil(n/64))`` uint64 words."""
    bits = np.ascontiguousarray(bits, dtype=bool)
    if bits.ndim != 2:
        raise ValueError("bits must be an (M, n) matrix")
    rows, n = bits.shape
    if num_qubits is None:
        num_qubits = n
    elif num_qubits < n:
        raise ValueError("num_qubits smaller than the bit matrix width")
    words = num_words(num_qubits)
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    padded = np.zeros((rows, words * 8), dtype=np.uint8)
    padded[:, :packed_bytes.shape[1]] = packed_bytes
    out = padded.view(np.uint64)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        out = out.byteswap()
    return np.ascontiguousarray(out)


def unpack_bits(words: np.ndarray, num_qubits: int) -> np.ndarray:
    """Unpack ``(M, W)`` uint64 words back into an ``(M, num_qubits)`` bool matrix."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("words must be an (M, W) matrix")
    rows, wcount = words.shape
    if wcount < num_words(num_qubits):
        raise ValueError("word matrix too narrow for num_qubits")
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    as_bytes = words.view(np.uint8).reshape(rows, wcount * 8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :num_qubits].astype(bool)


if hasattr(np, "bitwise_count"):
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element set-bit count (uint8-valued, shape preserved)."""
        return np.bitwise_count(words)
else:  # pragma: no cover - numpy < 2.0 fallback
    _BYTE_POPCOUNT = np.array([bin(v).count("1") for v in range(256)],
                              dtype=np.uint8)

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element set-bit count (uint8-valued, shape preserved)."""
        words = np.ascontiguousarray(words, dtype=np.uint64)
        per_byte = _BYTE_POPCOUNT[words.view(np.uint8)]
        return per_byte.reshape(words.shape + (8,)).sum(axis=-1,
                                                        dtype=np.uint8)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit count of an ``(M, W)`` word matrix, as int64."""
    return popcount(words).sum(axis=1, dtype=np.int64)


def get_bit(words: np.ndarray, column: int) -> np.ndarray:
    """Extract bit column ``column`` as an ``(M,)`` bool vector."""
    word, bit = divmod(column, WORD_BITS)
    return (words[:, word] >> np.uint64(bit)) & np.uint64(1) != 0


def get_bit_i64(words: np.ndarray, column: int,
                rows: np.ndarray | slice = slice(None)) -> np.ndarray:
    """Extract bit column ``column`` (row subset ``rows``) as int64 0/1."""
    word, bit = divmod(column, WORD_BITS)
    col = (words[rows, word] >> np.uint64(bit)) & np.uint64(1)
    return col.astype(np.int64)


def set_bit(words: np.ndarray, column: int, values: np.ndarray,
            rows: np.ndarray | slice = slice(None)) -> None:
    """Deposit a bool vector into bit column ``column`` (row subset ``rows``)."""
    word, bit = divmod(column, WORD_BITS)
    mask = np.uint64(1 << bit)
    col = words[rows, word]
    words[rows, word] = ((col & ~mask)
                         | (values.astype(np.uint64) << np.uint64(bit)))
