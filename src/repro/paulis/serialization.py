"""JSON (de)serialization for Pauli operators and Hamiltonians.

Chemistry Hamiltonians take seconds to rebuild (integrals + RHF + mapping);
sweep harnesses and downstream users cache them on disk.  The format is a
plain JSON object -- version-tagged, human-inspectable, and stable across
package versions:

    {"format": "repro-pauli-sum", "version": 1, "num_qubits": 10,
     "terms": [[-7.4989, "IIIIIIIIII"], [0.0571, "ZIIIIIIIII"], ...]}
"""

from __future__ import annotations

import json
from pathlib import Path

from .pauli_sum import PauliSum

_FORMAT = "repro-pauli-sum"
_VERSION = 1


def pauli_sum_to_dict(hamiltonian: PauliSum) -> dict:
    """Plain-dict form of a Hamiltonian (labels carry no signs)."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "num_qubits": hamiltonian.num_qubits,
        "terms": [[float(c), p.to_label(with_sign=False)]
                  for c, p in hamiltonian.terms()],
    }


def pauli_sum_from_dict(payload: dict) -> PauliSum:
    """Inverse of :func:`pauli_sum_to_dict` with format validation."""
    if payload.get("format") != _FORMAT:
        raise ValueError("not a repro-pauli-sum payload")
    if payload.get("version") != _VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    terms = payload["terms"]
    if not terms:
        raise ValueError("payload has no terms")
    num_qubits = payload["num_qubits"]
    for _, label in terms:
        if len(label) != num_qubits:
            raise ValueError("term label width does not match num_qubits")
    return PauliSum.from_terms([(float(c), label) for c, label in terms])


def save_pauli_sum(hamiltonian: PauliSum, path: str | Path) -> None:
    """Write a Hamiltonian to a JSON file."""
    Path(path).write_text(json.dumps(pauli_sum_to_dict(hamiltonian)))


def load_pauli_sum(path: str | Path) -> PauliSum:
    """Read a Hamiltonian from a JSON file."""
    return pauli_sum_from_dict(json.loads(Path(path).read_text()))
