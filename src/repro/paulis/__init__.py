"""Pauli-operator algebra: strings, batched tables, and weighted sums."""

from .pauli import PAULI_MATRICES, PauliString, random_pauli
from .table import PauliTable
from .packed_table import PackedPauliTable
from .pauli_sum import PauliSum

__all__ = ["PAULI_MATRICES", "PackedPauliTable", "PauliString", "PauliTable",
           "PauliSum", "random_pauli"]
