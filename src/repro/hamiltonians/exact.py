"""Exact ground-state energies via sparse diagonalization.

The paper's metric (Eq. 14) is defined against the exact ground energy E0,
"possible to compute ... exactly by diagonalizing the Hamiltonian" for the
<= 10-qubit benchmarks.  Pauli terms are assembled directly into a sparse
CSR matrix using their one-nonzero-per-column structure, so up to ~16 qubits
is comfortable.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


def pauli_to_sparse(pauli) -> sp.csr_matrix:
    """Sparse matrix of one Pauli string (2^n rows, one entry per column)."""
    n = pauli.num_qubits
    dim = 1 << n
    xmask = 0
    zmask = 0
    for qubit in range(n):
        bit = 1 << (n - 1 - qubit)
        if pauli.x[qubit]:
            xmask |= bit
        if pauli.z[qubit]:
            zmask |= bit
    cols = np.arange(dim, dtype=np.int64)
    rows = cols ^ xmask
    phases = (-1.0) ** np.bitwise_count(cols.astype(np.uint64) & np.uint64(zmask))
    coeff = pauli.sign * (1j) ** int(np.count_nonzero(pauli.x & pauli.z))
    data = coeff * phases
    return sp.csr_matrix((data, (rows, cols)), shape=(dim, dim))


def pauli_sum_to_sparse(hamiltonian) -> sp.csr_matrix:
    """Sparse matrix of a whole :class:`~repro.paulis.pauli_sum.PauliSum`."""
    dim = 1 << hamiltonian.num_qubits
    total = sp.csr_matrix((dim, dim), dtype=complex)
    for coeff, pauli in hamiltonian.terms():
        total = total + coeff * pauli_to_sparse(pauli)
    return total


def ground_state_energy(hamiltonian) -> float:
    """Smallest eigenvalue E0 of the Hamiltonian."""
    matrix = pauli_sum_to_sparse(hamiltonian)
    dim = matrix.shape[0]
    if dim <= 64:
        return float(np.linalg.eigvalsh(matrix.toarray()).min())
    value = spla.eigsh(matrix.real if _is_real(matrix) else matrix,
                       k=1, which="SA", return_eigenvectors=False)
    return float(value[0])


def ground_state(hamiltonian) -> tuple[float, np.ndarray]:
    """Ground energy and a ground-state vector."""
    matrix = pauli_sum_to_sparse(hamiltonian)
    dim = matrix.shape[0]
    if dim <= 64:
        values, vectors = np.linalg.eigh(matrix.toarray())
        return float(values[0]), vectors[:, 0]
    values, vectors = spla.eigsh(matrix, k=1, which="SA")
    return float(values[0]), vectors[:, 0]


def _is_real(matrix: sp.spmatrix) -> bool:
    return bool(np.abs(matrix.imag).max() < 1e-12) if matrix.nnz else True
