"""Benchmark Hamiltonians: spin chains, molecules (via repro.chem), exact E0."""

from .spin_models import PAPER_COUPLINGS, ising_model, xxz_model
from .exact import (
    ground_state,
    ground_state_energy,
    pauli_sum_to_sparse,
    pauli_to_sparse,
)
from .maxcut import (
    best_cut_bruteforce,
    cut_value,
    maxcut_hamiltonian,
    random_maxcut_instance,
)
from .registry import (
    Benchmark,
    CHEMISTRY_CASES,
    chemistry_benchmarks,
    get_benchmark,
    paper_benchmarks,
    physics_benchmarks,
)

__all__ = [
    "Benchmark", "best_cut_bruteforce", "cut_value", "maxcut_hamiltonian",
    "random_maxcut_instance", "CHEMISTRY_CASES", "PAPER_COUPLINGS",
    "chemistry_benchmarks", "get_benchmark", "ground_state",
    "ground_state_energy", "ising_model", "paper_benchmarks",
    "pauli_sum_to_sparse", "pauli_to_sparse", "physics_benchmarks",
    "xxz_model",
]
