"""Benchmark Hamiltonians: spin chains, molecules (via repro.chem), exact E0."""

from .spin_models import PAPER_COUPLINGS, ising_model, xxz_model
from .exact import (
    ground_state,
    ground_state_energy,
    pauli_sum_to_sparse,
    pauli_to_sparse,
)
from .maxcut import (
    best_cut_bruteforce,
    cut_value,
    maxcut_hamiltonian,
    random_maxcut_instance,
)
from .registry import (
    Benchmark,
    BenchmarkFamily,
    CHEMISTRY_CASES,
    benchmark_families,
    chemistry_benchmarks,
    expand_benchmarks,
    get_benchmark,
    paper_benchmarks,
    parse_benchmark_spec,
    physics_benchmarks,
    register_benchmark,
    register_suite,
    suite_benchmarks,
    suite_names,
    unregister_benchmark,
)

__all__ = [
    "Benchmark", "BenchmarkFamily", "best_cut_bruteforce",
    "benchmark_families", "cut_value", "maxcut_hamiltonian",
    "random_maxcut_instance", "CHEMISTRY_CASES", "PAPER_COUPLINGS",
    "chemistry_benchmarks", "expand_benchmarks", "get_benchmark",
    "ground_state", "ground_state_energy", "ising_model",
    "paper_benchmarks", "parse_benchmark_spec", "pauli_sum_to_sparse",
    "pauli_to_sparse", "physics_benchmarks", "register_benchmark",
    "register_suite", "suite_benchmarks", "suite_names",
    "unregister_benchmark", "xxz_model",
]
