"""MaxCut Hamiltonians: the optimization-domain VQA workload.

The paper motivates VQAs with MAXCUT approximation (Sec. 1-2, via QAOA) and
notes Clapton applies to any VQA; this module provides the standard cost
Hamiltonian so the generality claim is exercisable:

    H = sum_{(i,j) in E} w_ij (Z_i Z_j - I) / 2

whose ground states are computational-basis states encoding maximum cuts
(energy = -cut weight).  Because H is diagonal, exact answers come from
classical enumeration for small graphs -- which the tests exploit.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..paulis.pauli_sum import PauliSum


def maxcut_hamiltonian(graph: nx.Graph) -> PauliSum:
    """Cost Hamiltonian of a (possibly weighted) MaxCut instance.

    Args:
        graph: Undirected graph; edge attribute ``weight`` defaults to 1.
    """
    nodes = sorted(graph.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    if n < 2 or graph.number_of_edges() == 0:
        raise ValueError("MaxCut needs at least one edge")
    terms = []
    constant = 0.0
    for u, v, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        terms.append((0.5 * weight, {index[u]: "Z", index[v]: "Z"}))
        constant -= 0.5 * weight
    hamiltonian = PauliSum.from_sparse_terms(terms, n)
    return hamiltonian + PauliSum.from_sparse_terms([(constant, {})], n)


def cut_value(graph: nx.Graph, assignment: dict) -> float:
    """Weight of the cut induced by a +-1 / 0-1 node assignment."""
    total = 0.0
    for u, v, data in graph.edges(data=True):
        if bool(assignment[u]) != bool(assignment[v]):
            total += float(data.get("weight", 1.0))
    return total


def best_cut_bruteforce(graph: nx.Graph) -> float:
    """Exact maximum cut by enumeration (small graphs only)."""
    nodes = sorted(graph.nodes)
    if len(nodes) > 20:
        raise ValueError("brute force limited to 20 nodes")
    best = 0.0
    for mask in range(1 << (len(nodes) - 1)):  # fix node 0's side
        assignment = {v: (mask >> i) & 1 for i, v in enumerate(nodes[1:])}
        assignment[nodes[0]] = 0
        best = max(best, cut_value(graph, assignment))
    return best


def random_maxcut_instance(num_nodes: int, edge_probability: float,
                           rng: np.random.Generator,
                           weighted: bool = False) -> nx.Graph:
    """Erdos-Renyi MaxCut instance (optionally with uniform [0,1] weights)."""
    graph = nx.erdos_renyi_graph(num_nodes, edge_probability,
                                 seed=int(rng.integers(0, 2 ** 31)))
    while graph.number_of_edges() == 0:
        graph = nx.erdos_renyi_graph(num_nodes, edge_probability,
                                     seed=int(rng.integers(0, 2 ** 31)))
    if weighted:
        for u, v in graph.edges:
            graph[u][v]["weight"] = float(rng.uniform(0.1, 1.0))
    return graph
