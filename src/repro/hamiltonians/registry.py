"""The paper's benchmark suite (Sec. 5.1) as a name-addressable registry.

Twelve benchmarks: Ising and XXZ chains at J in {0.25, 0.50, 1.00} (7 qubits
on nairobi, 10 elsewhere) and three molecules at two bond lengths each
(always 10 qubits after the active-space + parity-mapping pipeline).
Chemistry Hamiltonians are built on first use and cached -- the RHF +
integral pipeline takes a few seconds per molecule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..paulis.pauli_sum import PauliSum
from .spin_models import PAPER_COUPLINGS, ising_model, xxz_model


@dataclass(frozen=True)
class Benchmark:
    """One VQE problem of the evaluation suite.

    Attributes:
        name: Registry key, e.g. ``"ising_J0.25"`` or ``"H2O_l1.0"``.
        kind: ``"physics"`` or ``"chemistry"``.
        num_qubits: Hamiltonian width.
        build: Zero-argument constructor of the :class:`PauliSum`.
    """

    name: str
    kind: str
    num_qubits: int
    build: Callable[[], PauliSum]

    def hamiltonian(self) -> PauliSum:
        key = (self.name, self.num_qubits)
        if key not in _BUILD_CACHE:
            _BUILD_CACHE[key] = self.build()
        return _BUILD_CACHE[key]


_BUILD_CACHE: dict[tuple[str, int], PauliSum] = {}


def physics_benchmarks(num_qubits: int = 10) -> list[Benchmark]:
    """Ising + XXZ at the paper's three couplings."""
    out = []
    for coupling in PAPER_COUPLINGS:
        out.append(Benchmark(
            name=f"ising_J{coupling:.2f}", kind="physics",
            num_qubits=num_qubits,
            build=(lambda c=coupling, n=num_qubits: ising_model(n, c))))
        out.append(Benchmark(
            name=f"xxz_J{coupling:.2f}", kind="physics",
            num_qubits=num_qubits,
            build=(lambda c=coupling, n=num_qubits: xxz_model(n, c))))
    return out


#: molecule -> the two bond lengths (angstrom) of Sec. 5.1.2.
CHEMISTRY_CASES = {
    "H2O": (1.0, 3.0),
    "H6": (1.0, 3.0),
    "LiH": (1.5, 4.5),
}


def chemistry_benchmarks() -> list[Benchmark]:
    """The six molecular benchmarks (10 qubits each)."""
    out = []
    for molecule, lengths in CHEMISTRY_CASES.items():
        for length in lengths:
            out.append(Benchmark(
                name=f"{molecule}_l{length:.1f}", kind="chemistry",
                num_qubits=10,
                build=(lambda m=molecule, l=length: _build_molecule(m, l))))
    return out


def _build_molecule(molecule: str, bond_length: float) -> PauliSum:
    from ..chem.driver import molecular_hamiltonian

    return molecular_hamiltonian(molecule, bond_length).hamiltonian


def paper_benchmarks(num_qubits: int = 10,
                     include_chemistry: bool = True) -> list[Benchmark]:
    """The full Fig. 5 suite at a given physics-model width."""
    suite = physics_benchmarks(num_qubits)
    if include_chemistry:
        suite.extend(chemistry_benchmarks())
    return suite


def get_benchmark(name: str, num_qubits: int = 10) -> Benchmark:
    for bench in paper_benchmarks(num_qubits):
        if bench.name == name:
            return bench
    known = [b.name for b in paper_benchmarks(num_qubits)]
    raise KeyError(f"unknown benchmark {name!r}; known: {known}")
