"""The open benchmark registry: paper suite, parameterized families, suites.

Three kinds of names resolve through :func:`get_benchmark`:

* **Fixed names** -- the paper's Sec. 5.1 suite as before: Ising and XXZ
  chains at J in {0.25, 0.50, 1.00} and three molecules at two bond
  lengths each.  Chemistry Hamiltonians are built on first use and cached.
* **Parameterized specs** -- ``"family:key=value,..."`` strings such as
  ``"ising:n=12,J=0.3"`` or ``"molecule:name=LiH,l=2.5"``, resolved
  against families registered with :func:`register_benchmark`.
* **Suites** -- ``"suite:<name>"`` entries expand (via
  :func:`expand_benchmarks`, used by campaign grids and the CLI) into
  lists of the above; ``suite:physics`` / ``suite:chemistry`` /
  ``suite:paper`` are built in and :func:`register_suite` adds more.

Registering a new workload is one decorator, no core edits::

    from repro.hamiltonians import register_benchmark

    @register_benchmark(name="heis", kind="physics",
                        description="my Heisenberg chain; params n, J")
    def build_heis(n: int = 10, J: float = 1.0) -> PauliSum:
        ...

after which ``"heis:n=8,J=0.5"`` works in ``repro run``, campaign specs,
and reports.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable

from ..naming import did_you_mean
from ..paulis.pauli_sum import PauliSum
from .spin_models import PAPER_COUPLINGS, ising_model, xxz_model


@dataclass(frozen=True)
class Benchmark:
    """One VQE problem of the evaluation suite.

    Attributes:
        name: Registry key, e.g. ``"ising_J0.25"``, ``"H2O_l1.0"``, or a
            parameterized spec like ``"ising:n=12,J=0.3"``.
        kind: ``"physics"`` or ``"chemistry"``.
        num_qubits: Hamiltonian width (0 when unknown until built).
        build: Zero-argument constructor of the :class:`PauliSum`.
        description: One line for ``repro benchmarks``.
    """

    name: str
    kind: str
    num_qubits: int
    build: Callable[[], PauliSum]
    description: str = ""

    def hamiltonian(self) -> PauliSum:
        key = (self.name, self.num_qubits)
        if key not in _BUILD_CACHE:
            _BUILD_CACHE[key] = self.build()
        return _BUILD_CACHE[key]


_BUILD_CACHE: dict[tuple[str, int], PauliSum] = {}


# ----------------------------------------------------------------------
# Parameterized families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkFamily:
    """A registered parameterized benchmark builder."""

    name: str
    kind: str
    description: str
    builder: Callable[..., PauliSum]
    #: params -> register width; 0 means "unknown until built".
    width: Callable[[dict], int] = field(
        default=lambda params: int(params.get("n", 0)))

    @property
    def params(self) -> list[str]:
        return list(inspect.signature(self.builder).parameters)

    @property
    def spec_syntax(self) -> str:
        return f"{self.name}:" + ",".join(f"{p}=..." for p in self.params)


_FAMILIES: dict[str, BenchmarkFamily] = {}
_SUITES: dict[str, tuple[str, ...]] = {}


def register_benchmark(builder=None, *, name: str | None = None,
                       kind: str = "physics", description: str = "",
                       num_qubits=None, replace: bool = False):
    """Register a parameterized benchmark family.

    The decorated callable takes keyword parameters (all with defaults is
    friendliest) and returns a :class:`~repro.paulis.pauli_sum.PauliSum`.
    ``"<name>:key=value,..."`` specs then resolve against it anywhere a
    benchmark name is accepted.

    Args:
        name: Family name; defaults to the builder's ``__name__``.
        kind: ``"physics"`` or ``"chemistry"`` (CLI filtering).
        description: One line for ``repro benchmarks``.
        num_qubits: Register width -- an int, or a callable mapping the
            parsed parameter dict to one; defaults to the ``n`` parameter
            (0 = unknown until built).
        replace: Allow overriding an existing family.
    """
    def _register(fn):
        family_name = name or fn.__name__
        if ":" in family_name or "," in family_name or "=" in family_name:
            raise ValueError(
                f"benchmark family name {family_name!r} may not contain "
                f"':', ',' or '='")
        if family_name in _FAMILIES and not replace:
            raise ValueError(
                f"benchmark family {family_name!r} is already registered; "
                f"pass replace=True to override")
        if num_qubits is None:
            width = lambda params: int(params.get("n", 0))  # noqa: E731
        elif callable(num_qubits):
            width = num_qubits
        else:
            width = lambda params, _n=int(num_qubits): _n  # noqa: E731
        _FAMILIES[family_name] = BenchmarkFamily(
            name=family_name, kind=kind, description=description,
            builder=fn, width=width)
        return fn

    if builder is None:
        return _register
    return _register(builder)


def unregister_benchmark(name: str) -> None:
    """Remove a registered family (primarily for test cleanup)."""
    _FAMILIES.pop(name, None)


def benchmark_families() -> dict[str, BenchmarkFamily]:
    """Name -> family snapshot of the registry."""
    return dict(_FAMILIES)


def _parse_value(text: str):
    if text.lower() in ("true", "false"):  # bool-ish flags (weighted=...)
        return int(text.lower() == "true")
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def parse_benchmark_spec(spec: str) -> tuple[str, dict]:
    """Split ``"family:key=value,..."`` into ``(family, params)``.

    Values parse as int, then float, then stay strings.
    """
    family, _, params_text = spec.partition(":")
    params: dict = {}
    if params_text.strip():
        for item in params_text.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip():
                raise ValueError(
                    f"bad benchmark parameter {item.strip()!r} in "
                    f"{spec!r}; expected key=value")
            params[key.strip()] = _parse_value(value.strip())
    return family.strip(), params


def _default_n(family_name: str, params: dict, num_qubits: int) -> dict:
    """Fill a family's ``n`` parameter from ``num_qubits`` when unset."""
    family = _FAMILIES.get(family_name)
    if (family is not None and "n" not in params
            and "n" in inspect.signature(family.builder).parameters):
        params = dict(params, n=num_qubits)
    return params


def _family_benchmark(spec: str, family_name: str,
                      params: dict) -> Benchmark:
    family = _FAMILIES.get(family_name)
    if family is None:
        hint = did_you_mean(family_name, _FAMILIES)
        raise KeyError(
            f"unknown benchmark family {family_name!r}{hint}; registered "
            f"families: {sorted(_FAMILIES)}")
    try:
        bound = inspect.signature(family.builder).bind(**params)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for benchmark {spec!r}: {exc}; accepted: "
            f"{family.spec_syntax}") from None
    bound.apply_defaults()  # width sees defaulted params too
    return Benchmark(
        name=spec, kind=family.kind,
        num_qubits=family.width(dict(bound.arguments)),
        build=lambda: family.builder(**params),
        description=family.description)


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def register_suite(name: str, benchmarks, replace: bool = False) -> None:
    """Register ``"suite:<name>"`` as shorthand for a benchmark list."""
    if name in _SUITES and not replace:
        raise ValueError(f"suite {name!r} is already registered; pass "
                         f"replace=True to override")
    _SUITES[name] = tuple(benchmarks)


def suite_names() -> tuple[str, ...]:
    return tuple(_SUITES)


def suite_benchmarks(name: str) -> tuple[str, ...]:
    try:
        return _SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; registered suites: "
                       f"{sorted(_SUITES)}") from None


def expand_benchmarks(names, lenient: bool = False) -> list[str]:
    """Expand ``"suite:*"`` entries in a benchmark list, in order.

    With ``lenient=True`` unknown suites pass through unexpanded instead
    of raising -- the store-read paths (status/report) use this so a
    campaign recorded with a producer-side ``register_suite`` stays
    readable in a process that never registered it.
    """
    out: list[str] = []
    for name in names:
        if name.startswith("suite:"):
            try:
                out.extend(suite_benchmarks(name[len("suite:"):]))
            except KeyError:
                if not lenient:
                    raise
                out.append(name)
        else:
            out.append(name)
    return out


# ----------------------------------------------------------------------
# The paper's fixed Sec. 5.1 suite
# ----------------------------------------------------------------------
def physics_benchmarks(num_qubits: int = 10) -> list[Benchmark]:
    """Ising + XXZ at the paper's three couplings."""
    out = []
    for coupling in PAPER_COUPLINGS:
        out.append(Benchmark(
            name=f"ising_J{coupling:.2f}", kind="physics",
            num_qubits=num_qubits,
            build=(lambda c=coupling, n=num_qubits: ising_model(n, c)),
            description=f"transverse-field Ising chain, J={coupling:g}"))
        out.append(Benchmark(
            name=f"xxz_J{coupling:.2f}", kind="physics",
            num_qubits=num_qubits,
            build=(lambda c=coupling, n=num_qubits: xxz_model(n, c)),
            description=f"XXZ chain, J={coupling:g}"))
    return out


#: molecule -> the two bond lengths (angstrom) of Sec. 5.1.2.
CHEMISTRY_CASES = {
    "H2O": (1.0, 3.0),
    "H6": (1.0, 3.0),
    "LiH": (1.5, 4.5),
}


def chemistry_benchmarks() -> list[Benchmark]:
    """The six molecular benchmarks (10 qubits each)."""
    out = []
    for molecule, lengths in CHEMISTRY_CASES.items():
        for length in lengths:
            out.append(Benchmark(
                name=f"{molecule}_l{length:.1f}", kind="chemistry",
                num_qubits=10,
                build=(lambda m=molecule, l=length: _build_molecule(m, l)),
                description=f"{molecule} at bond length {length:g} A "
                            f"(STO-3G, active space, parity mapping)"))
    return out


def _build_molecule(molecule: str, bond_length: float) -> PauliSum:
    from ..chem.driver import molecular_hamiltonian

    return molecular_hamiltonian(molecule, bond_length).hamiltonian


def paper_benchmarks(num_qubits: int = 10,
                     include_chemistry: bool = True) -> list[Benchmark]:
    """The full Fig. 5 suite at a given physics-model width."""
    suite = physics_benchmarks(num_qubits)
    if include_chemistry:
        suite.extend(chemistry_benchmarks())
    return suite


def get_benchmark(name: str, num_qubits: int = 10) -> Benchmark:
    """Resolve a fixed name, a ``family:key=value,...`` spec, or a bare
    family name into a :class:`Benchmark` (lazily built).

    For family resolutions whose builder takes an ``n`` parameter,
    ``num_qubits`` fills it unless the spec sets ``n`` explicitly -- so
    ``get_benchmark("ising", 6)`` and a campaign's ``qubit_sizes`` axis
    size parameterized benchmarks the same way they size fixed ones.
    """
    if name.startswith("suite:"):
        raise KeyError(
            f"{name!r} is a suite, not a single benchmark; suites expand "
            f"in benchmark *lists* (campaign specs, expand_benchmarks)")
    if ":" in name:
        family, params = parse_benchmark_spec(name)
        return _family_benchmark(name, family,
                                 _default_n(family, params, num_qubits))
    for bench in paper_benchmarks(num_qubits):
        if bench.name == name:
            return bench
    if name in _FAMILIES:
        return _family_benchmark(name, name,
                                 _default_n(name, {}, num_qubits))
    known = [b.name for b in paper_benchmarks(num_qubits)]
    hint = did_you_mean(name, known + sorted(_FAMILIES))
    raise KeyError(
        f"unknown benchmark {name!r}{hint}; known: {known}; families "
        f"(parameterize as 'family:key=value,...'): {sorted(_FAMILIES)}")


# ----------------------------------------------------------------------
# Built-in families and suites
# ----------------------------------------------------------------------
@register_benchmark(name="ising", kind="physics",
                    description="transverse-field Ising chain; "
                                "params n (qubits), J (coupling)")
def _ising_family(n: int = 10, J: float = 1.0) -> PauliSum:
    return ising_model(n, J)


@register_benchmark(name="xxz", kind="physics",
                    description="XXZ Heisenberg chain; params n (qubits), "
                                "J (coupling)")
def _xxz_family(n: int = 10, J: float = 1.0) -> PauliSum:
    return xxz_model(n, J)


@register_benchmark(name="maxcut", kind="physics",
                    description="random Erdos-Renyi MaxCut instance; "
                                "params n (nodes), p (edge prob.), seed, "
                                "weighted (0/1)")
def _maxcut_family(n: int = 8, p: float = 0.5, seed: int = 0,
                   weighted: int = 0) -> PauliSum:
    import numpy as np

    from .maxcut import maxcut_hamiltonian, random_maxcut_instance

    graph = random_maxcut_instance(n, p, np.random.default_rng(seed),
                                   weighted=bool(weighted))
    return maxcut_hamiltonian(graph)


@register_benchmark(name="molecule", kind="chemistry", num_qubits=10,
                    description="molecular Hamiltonian (STO-3G, active "
                                "space, parity mapping); params name "
                                "(H2O/H6/LiH), l (bond length, angstrom)")
def _molecule_family(name: str = "H2O", l: float = 1.0) -> PauliSum:  # noqa: E741
    return _build_molecule(name, float(l))


register_suite("physics", tuple(b.name for b in physics_benchmarks()))
register_suite("chemistry", tuple(f"{m}_l{length:.1f}"
                                  for m, lengths in CHEMISTRY_CASES.items()
                                  for length in lengths))
register_suite("paper", _SUITES["physics"] + _SUITES["chemistry"])
