"""The paper's physics benchmark Hamiltonians (Sec. 5.1.1).

Both are 1-D chains with open boundaries and constant couplings:

* Transverse-field Ising (Eq. 12):
  ``H = J * sum_i X_i X_{i+1} + sum_i Z_i``
* XXZ Heisenberg (Eq. 13):
  ``H = sum_i (J X_i X_{i+1} + J Y_i Y_{i+1} + Z_i Z_{i+1})``

The paper studies ``J in {0.25, 0.50, 1.00}`` for both.
"""

from __future__ import annotations

from ..paulis.pauli_sum import PauliSum

#: Coupling strengths evaluated throughout the paper.
PAPER_COUPLINGS = (0.25, 0.50, 1.00)


def ising_model(num_qubits: int, coupling: float) -> PauliSum:
    """Transverse-field Ising chain (Eq. 12)."""
    if num_qubits < 2:
        raise ValueError("chain needs at least two sites")
    terms = []
    for i in range(num_qubits - 1):
        terms.append((coupling, {i: "X", i + 1: "X"}))
    for i in range(num_qubits):
        terms.append((1.0, {i: "Z"}))
    return PauliSum.from_sparse_terms(terms, num_qubits)


def xxz_model(num_qubits: int, coupling: float) -> PauliSum:
    """Field-free XXZ Heisenberg chain (Eq. 13)."""
    if num_qubits < 2:
        raise ValueError("chain needs at least two sites")
    terms = []
    for i in range(num_qubits - 1):
        terms.append((coupling, {i: "X", i + 1: "X"}))
        terms.append((coupling, {i: "Y", i + 1: "Y"}))
        terms.append((1.0, {i: "Z", i + 1: "Z"}))
    return PauliSum.from_sparse_terms(terms, num_qubits)
