"""repro: a full reproduction of Clapton (ASPLOS 2024).

Clifford-Assisted Problem Transformation for Error Mitigation in Variational
Quantum Algorithms -- built from scratch on this package's own stabilizer
engine, density-matrix simulator, device models, transpiler, optimizers, and
quantum-chemistry pipeline.

Quickstart::

    from repro import (FakeToronto, VQEProblem, clapton, cafqa,
                       evaluate_initial_point, xxz_model)

    hamiltonian = xxz_model(10, 0.5)
    problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
    result = clapton(problem)
    print(evaluate_initial_point(result).device_model)
"""

from .paulis import PauliString, PauliSum, PauliTable
from .circuits import (
    Circuit,
    Parameter,
    clapton_transformation_circuit,
    hardware_efficient_ansatz,
)
from .stabilizer import CliffordTableau, StabilizerSimulator, clifford_state_expectation
from .densesim import DensityMatrixSimulator, noiseless_energy, noisy_energy, simulate_statevector
from .noise import CliffordNoiseModel, NoiseModel
from .backends import Backend, FakeHanoi, FakeLine, FakeMumbai, FakeNairobi, FakeToronto
from .transpiler import TranspileResult, transpile
from .optim import EngineConfig, GAConfig, SPSAConfig, minimize_spsa, multi_ga_minimize
from .core import (
    InitializationResult,
    VQEProblem,
    cafqa,
    clapton,
    evaluate_initial_point,
    ncafqa,
    transform_hamiltonian,
)
from .vqe import EnergyEstimator, VQETrace, run_vqe
from .hamiltonians import (
    ground_state_energy,
    ising_model,
    paper_benchmarks,
    xxz_model,
)
from .metrics import geometric_mean, normalized_energy, relative_improvement

__version__ = "1.0.0"

__all__ = [
    "Backend", "Circuit", "CliffordNoiseModel", "CliffordTableau",
    "DensityMatrixSimulator", "EnergyEstimator", "EngineConfig",
    "FakeHanoi", "FakeLine", "FakeMumbai", "FakeNairobi", "FakeToronto",
    "GAConfig", "InitializationResult", "NoiseModel", "Parameter",
    "PauliString", "PauliSum", "PauliTable", "SPSAConfig",
    "StabilizerSimulator", "TranspileResult", "VQEProblem", "VQETrace",
    "cafqa", "clapton", "clapton_transformation_circuit",
    "clifford_state_expectation", "evaluate_initial_point",
    "geometric_mean", "ground_state_energy", "hardware_efficient_ansatz",
    "ising_model", "minimize_spsa", "multi_ga_minimize", "ncafqa",
    "noiseless_energy", "noisy_energy", "normalized_energy",
    "paper_benchmarks", "relative_improvement", "run_vqe",
    "simulate_statevector", "transform_hamiltonian", "transpile",
    "xxz_model",
]
