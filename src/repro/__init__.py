"""repro: a full reproduction of Clapton (ASPLOS 2024).

Clifford-Assisted Problem Transformation for Error Mitigation in Variational
Quantum Algorithms -- built from scratch on this package's own stabilizer
engine, density-matrix simulator, device models, transpiler, optimizers, and
quantum-chemistry pipeline.

Quickstart (the ``Experiment`` façade runs methods end to end)::

    from repro import Experiment, FakeToronto, xxz_model
    from repro.experiments import FAST_ENGINE

    result = Experiment(xxz_model(10, 0.5), backend=FakeToronto()) \\
        .run(methods=("cafqa", "clapton"), config=FAST_ENGINE)
    print(result.runs["clapton"].evaluation.device_model)
    print(result.eta_initial("cafqa"))

Energy estimation goes through one batched protocol::

    from repro import make_estimator

    estimator = make_estimator(problem, observable, mode="exact")
    batch = estimator.estimate_many(thetas)       # shares circuit setup
    print(batch.values)

and round-level parallelism everywhere is a one-argument switch::

    from repro import ProcessExecutor

    Experiment(...).run(config=..., executor=ProcessExecutor(8))
"""

from .paulis import PauliString, PauliSum, PauliTable
from .circuits import (
    Circuit,
    Parameter,
    clapton_transformation_circuit,
    hardware_efficient_ansatz,
)
from .stabilizer import CliffordTableau, StabilizerSimulator, clifford_state_expectation
from .densesim import DensityMatrixSimulator, noiseless_energy, noisy_energy, simulate_statevector
from .noise import CliffordNoiseModel, NoiseModel
from .backends import Backend, FakeHanoi, FakeLine, FakeMumbai, FakeNairobi, FakeToronto
from .transpiler import TranspileResult, transpile
from .execution import (
    BatchResult,
    CliffordEstimator,
    EstimateResult,
    Estimator,
    ExactEstimator,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ShotSamplingEstimator,
    ThreadExecutor,
    make_estimator,
    memoize_loss,
)
from .optim import EngineConfig, GAConfig, SPSAConfig, minimize_spsa, multi_ga_minimize
from .core import (
    InitializationResult,
    VQEProblem,
    cafqa,
    clapton,
    evaluate_initial_point,
    ncafqa,
    transform_hamiltonian,
)
from .methods import (
    DEFAULT_METHODS,
    InitializationMethod,
    get_method,
    method_names,
    register_method,
)
from .search import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTrace,
    get_strategy,
    register_strategy,
    strategy_names,
)
from .vqe import EnergyEstimator, VQETrace, run_vqe
from .experiments import Experiment, ExperimentResult
from .campaigns import (
    CampaignAggregate,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    TaskSpec,
    render_report,
)
from .hamiltonians import (
    expand_benchmarks,
    get_benchmark,
    ground_state_energy,
    ising_model,
    paper_benchmarks,
    register_benchmark,
    register_suite,
    xxz_model,
)
from .metrics import geometric_mean, normalized_energy, relative_improvement

__version__ = "1.1.0"

__all__ = [
    "Backend", "BatchResult", "CampaignAggregate", "CampaignRunner",
    "CampaignSpec", "Circuit", "CliffordEstimator",
    "CliffordNoiseModel", "CliffordTableau", "DEFAULT_METHODS",
    "DensityMatrixSimulator",
    "EnergyEstimator", "EngineConfig", "EstimateResult", "Estimator",
    "ExactEstimator", "Executor", "Experiment", "ExperimentResult",
    "FakeHanoi", "FakeLine", "FakeMumbai", "FakeNairobi", "FakeToronto",
    "GAConfig", "InitializationMethod", "InitializationResult",
    "NoiseModel", "Parameter",
    "PauliString", "PauliSum", "PauliTable", "ProcessExecutor",
    "ResultStore", "SPSAConfig", "SearchBudget", "SearchResult",
    "SearchStrategy", "SearchTrace", "SerialExecutor",
    "ShotSamplingEstimator", "StabilizerSimulator", "TaskSpec",
    "ThreadExecutor", "TranspileResult",
    "VQEProblem", "VQETrace", "cafqa", "clapton",
    "clapton_transformation_circuit", "clifford_state_expectation",
    "evaluate_initial_point", "expand_benchmarks", "geometric_mean",
    "get_benchmark", "get_method", "get_strategy", "ground_state_energy",
    "hardware_efficient_ansatz", "ising_model", "make_estimator",
    "memoize_loss", "method_names", "minimize_spsa", "multi_ga_minimize",
    "ncafqa", "noiseless_energy", "noisy_energy", "normalized_energy",
    "paper_benchmarks", "register_benchmark", "register_method",
    "register_strategy", "register_suite", "relative_improvement",
    "render_report", "run_vqe", "simulate_statevector", "strategy_names",
    "transform_hamiltonian", "transpile", "xxz_model",
]
