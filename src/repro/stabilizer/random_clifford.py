"""Random Clifford operations (for twirling, testing, and benchmarking).

Samples random Clifford *circuits* from the package's native gate set.  A
gate-count of O(n^2) mixes the symplectic group well for the practical
purposes here (randomized testing, noise twirling experiments); exact
uniform sampling a la Bravyi-Maslov is not required by any consumer and is
intentionally out of scope.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits.circuit import Circuit
from .tableau import CliffordTableau

#: single-qubit Clifford generators available to the sampler.
ONE_QUBIT_GATES = ("i", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg")
TWO_QUBIT_GATES = ("cx", "cz", "swap")


def random_clifford_circuit(num_qubits: int, rng: np.random.Generator,
                            depth: int | None = None,
                            two_qubit_probability: float = 0.5) -> Circuit:
    """Random Clifford circuit over the native gate set.

    Args:
        num_qubits: Register width.
        rng: Source of randomness (caller-owned for reproducibility).
        depth: Gate count; defaults to ``3 n log2(n+1)`` (enough mixing for
            testing purposes).
        two_qubit_probability: Chance of drawing a two-qubit gate per slot
            (ignored for one qubit).
    """
    if depth is None:
        depth = max(1, int(3 * num_qubits * math.log2(num_qubits + 1)))
    circ = Circuit(num_qubits)
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < two_qubit_probability:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            name = TWO_QUBIT_GATES[rng.integers(0, len(TWO_QUBIT_GATES))]
            circ.append(name, [int(a), int(b)])
        else:
            name = ONE_QUBIT_GATES[rng.integers(0, len(ONE_QUBIT_GATES))]
            circ.append(name, [int(rng.integers(0, num_qubits))])
    return circ


def random_clifford_tableau(num_qubits: int, rng: np.random.Generator,
                            depth: int | None = None) -> CliffordTableau:
    """Tableau of a random Clifford circuit."""
    return CliffordTableau.from_circuit(
        random_clifford_circuit(num_qubits, rng, depth))


def random_pauli_frame(num_qubits: int, rng: np.random.Generator) -> Circuit:
    """Uniformly random Pauli layer (the frames used for Pauli twirling)."""
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        name = ("i", "x", "y", "z")[rng.integers(0, 4)]
        if name != "i":
            circ.append(name, [q])
    return circ
