"""Clifford tableaus: the conjugation engine behind Clapton.

A Clifford operation ``C`` is fully described by the images of the symplectic
generators, ``C X_k C†`` and ``C Z_k C†`` (Eq. 2 of the paper).  We store
those 2n images as rows of a :class:`~repro.paulis.table.PauliTable` and
conjugate arbitrary Pauli strings -- or whole Hamiltonians at once -- by
multiplying out the relevant rows with exact phase tracking.

Tableaus for individual gates are *derived from their unitaries* at import
time (:func:`tableau_from_unitary`), so the gate library's dense matrices are
the single source of truth and the symplectic rules cannot drift out of sync
with the simulators.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import get_gate
from ..paulis.pauli import PAULI_MATRICES, PauliString
from ..paulis.table import PauliTable

_PAULI_LABELS_1Q = ("I", "X", "Y", "Z")


def _pauli_basis(num_qubits: int) -> list[tuple[str, np.ndarray]]:
    basis = [("", np.array([[1.0 + 0j]]))]
    for _ in range(num_qubits):
        basis = [(lbl + p, np.kron(mat, PAULI_MATRICES[p]))
                 for lbl, mat in basis for p in _PAULI_LABELS_1Q]
    return basis


def tableau_from_unitary(unitary: np.ndarray) -> "CliffordTableau":
    """Build the tableau of a 1- or 2-qubit Clifford gate from its matrix.

    The image of each generator ``P`` is found by expanding ``U P U†`` in the
    Pauli basis and asserting the result is ``+-`` a single Pauli string.

    Raises:
        ValueError: if the unitary is not a Clifford operation.
    """
    dim = unitary.shape[0]
    num_qubits = int(np.log2(dim))
    if 2 ** num_qubits != dim or unitary.shape != (dim, dim):
        raise ValueError("unitary must be 2^k x 2^k")
    basis = _pauli_basis(num_qubits)
    rows = []
    generators = ([PauliString.from_sparse({k: "X"}, num_qubits) for k in range(num_qubits)]
                  + [PauliString.from_sparse({k: "Z"}, num_qubits) for k in range(num_qubits)])
    for gen in generators:
        image = unitary @ gen.to_matrix() @ unitary.conj().T
        rows.append(_match_signed_pauli(image, basis, num_qubits))
    return CliffordTableau(PauliTable.from_paulis(rows))


def _match_signed_pauli(matrix: np.ndarray, basis, num_qubits: int) -> PauliString:
    dim = matrix.shape[0]
    for label, pauli_mat in basis:
        coeff = np.trace(pauli_mat.conj().T @ matrix) / dim
        if abs(coeff) < 1e-9:
            continue
        if abs(coeff - 1) < 1e-9:
            return PauliString.from_label(label or "I")
        if abs(coeff + 1) < 1e-9:
            return -PauliString.from_label(label or "I")
        raise ValueError("matrix is not a Clifford conjugate of a Pauli")
    raise ValueError("matrix has no Pauli component")


class CliffordTableau:
    """The conjugation table of an n-qubit Clifford operation.

    Rows ``0..n-1`` are the images of ``X_k``; rows ``n..2n-1`` the images of
    ``Z_k``.  The represented map is ``P -> C P C†``.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: PauliTable):
        if rows.num_rows != 2 * rows.num_qubits:
            raise ValueError("a tableau needs exactly 2n rows on n qubits")
        self.rows = rows

    @property
    def num_qubits(self) -> int:
        return self.rows.num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "CliffordTableau":
        x = np.zeros((2 * num_qubits, num_qubits), dtype=bool)
        z = np.zeros_like(x)
        idx = np.arange(num_qubits)
        x[idx, idx] = True
        z[num_qubits + idx, idx] = True
        return cls(PauliTable(x, z))

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CliffordTableau":
        """Tableau of a bound Clifford circuit (raises if non-Clifford)."""
        if not circuit.is_clifford():
            raise ValueError("circuit is not Clifford")
        tableau = cls.identity(circuit.num_qubits)
        for inst in circuit.instructions:
            gate = gate_tableau(inst.name, tuple(float(p) for p in inst.params))
            apply_gate_to_table(tableau.rows, gate, inst.qubits)
        return tableau

    # ------------------------------------------------------------------
    # Conjugation
    # ------------------------------------------------------------------
    def conjugate_table(self, table: PauliTable) -> PauliTable:
        """Batched ``P -> C P C†`` for every row of ``table`` (new table).

        Each input ``P = (-i)^q Z^z X^x`` maps to
        ``(-i)^q * prod_k imgZ_k^{z_k} * prod_k imgX_k^{x_k}``; the products
        are accumulated with exact Pauli multiplication, vectorized over all
        input rows.
        """
        if table.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        n = self.num_qubits
        acc = PauliTable.identity(table.num_rows, n)
        acc.phase_exp = table.phase_exp.copy()
        for k in range(n):
            acc.mul_pauli_on_rows(table.z[:, k], self.rows.row(n + k))
        for k in range(n):
            acc.mul_pauli_on_rows(table.x[:, k], self.rows.row(k))
        return acc

    def conjugate_pauli(self, pauli: PauliString) -> PauliString:
        table = PauliTable.from_paulis([pauli])
        return self.conjugate_table(table).row(0)

    def then(self, later: "CliffordTableau") -> "CliffordTableau":
        """Tableau of ``later . self`` (run ``self`` first)."""
        return CliffordTableau(later.conjugate_table(self.rows))

    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (np.array_equal(self.rows.x, other.rows.x)
                and np.array_equal(self.rows.z, other.rows.z)
                and np.array_equal(self.rows.phase_exp % 4, other.rows.phase_exp % 4))

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.num_qubits})"


@lru_cache(maxsize=256)
def gate_tableau(name: str, params: tuple = ()) -> CliffordTableau:
    """Cached tableau of a named gate at given (Clifford) parameters."""
    spec = get_gate(name)
    if not spec.is_clifford(params):
        raise ValueError(f"{name}{params} is not a Clifford gate")
    return tableau_from_unitary(spec.matrix(params))


#: code-lookup cache for small-gate conjugation; keys are ``id(gate)`` and
#: the gate object is held strongly so ids can never be recycled.
_LUT_CACHE: dict[int, tuple["CliffordTableau", np.ndarray, np.ndarray, np.ndarray]] = {}


def _conjugation_lut(gate: CliffordTableau
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lookup tables mapping every input sub-Pauli code to its image.

    A k-qubit sub-Pauli (k <= 2 here) is encoded as
    ``sum_j (x_j + 2 z_j) * 4^j``; the tables give the image's x bits,
    z bits, and phase-exponent increment for all 4^k codes at once, so
    conjugating M rows costs a handful of integer gathers instead of four
    masked row multiplications.
    """
    cached = _LUT_CACHE.get(id(gate))
    if cached is not None:
        return cached[1], cached[2], cached[3]
    k = gate.num_qubits
    size = 4 ** k
    out_x = np.zeros((size, k), dtype=bool)
    out_z = np.zeros((size, k), dtype=bool)
    out_dq = np.zeros(size, dtype=np.int64)
    for code in range(size):
        x = np.array([(code >> (2 * j)) & 1 for j in range(k)], dtype=bool)
        z = np.array([(code >> (2 * j + 1)) & 1 for j in range(k)], dtype=bool)
        image = gate.conjugate_pauli(PauliString(x, z, 0))
        out_x[code] = image.x
        out_z[code] = image.z
        out_dq[code] = image.phase_exp
    if len(_LUT_CACHE) > 4096:
        _LUT_CACHE.clear()
    _LUT_CACHE[id(gate)] = (gate, out_x, out_z, out_dq)
    return out_x, out_z, out_dq


def apply_gate_to_table(table: PauliTable, gate: CliffordTableau,
                        qubits: Sequence[int],
                        rows: np.ndarray | None = None) -> None:
    """In place, conjugate every row of ``table`` by a small gate on ``qubits``.

    The restriction of a row to ``qubits`` is a sub-Pauli with zero phase
    exponent (operators on disjoint qubits commute), so only the sub-bits
    change and the image's phase exponent adds to the row's global phase.
    Dispatches through per-gate code lookup tables (see
    :func:`_conjugation_lut`); the generic row-multiplication path is kept
    for gates wider than the LUT supports.

    ``rows`` optionally restricts the conjugation to a boolean row mask --
    the seam population-batched evaluation uses to apply each genome's gate
    choice to only that genome's rows of a stacked table.  Masked rows see
    exactly the arithmetic the unmasked path applies, so per-row results
    are bit-identical either way.
    """
    qubits = list(qubits)
    k = gate.num_qubits
    if len(qubits) != k:
        raise ValueError("gate arity does not match qubit list")
    if k <= 2:
        lut_x, lut_z, lut_dq = _conjugation_lut(gate)
        if rows is None:
            codes = (table.x[:, qubits[0]]
                     + 2 * table.z[:, qubits[0]].astype(np.int64))
            if k == 2:
                codes = codes + 4 * (table.x[:, qubits[1]]
                                     + 2 * table.z[:, qubits[1]].astype(np.int64))
            for j, q in enumerate(qubits):
                table.x[:, q] = lut_x[codes, j]
                table.z[:, q] = lut_z[codes, j]
            table.phase_exp += lut_dq[codes]
            table.phase_exp %= 4
            return
        codes = (table.x[rows, qubits[0]]
                 + 2 * table.z[rows, qubits[0]].astype(np.int64))
        if k == 2:
            codes = codes + 4 * (table.x[rows, qubits[1]]
                                 + 2 * table.z[rows, qubits[1]].astype(np.int64))
        for j, q in enumerate(qubits):
            table.x[rows, q] = lut_x[codes, j]
            table.z[rows, q] = lut_z[codes, j]
        table.phase_exp[rows] = (table.phase_exp[rows] + lut_dq[codes]) % 4
        return
    if rows is not None:
        sub = PauliTable(table.x[rows], table.z[rows], table.phase_exp[rows])
        apply_gate_to_table(sub, gate, qubits)
        table.x[rows] = sub.x
        table.z[rows] = sub.z
        table.phase_exp[rows] = sub.phase_exp
        return
    subx = table.x[:, qubits]
    subz = table.z[:, qubits]
    acc = PauliTable.identity(table.num_rows, k)
    for j in range(k):
        acc.mul_pauli_on_rows(subz[:, j], gate.rows.row(k + j))
    for j in range(k):
        acc.mul_pauli_on_rows(subx[:, j], gate.rows.row(j))
    table.x[:, qubits] = acc.x
    table.z[:, qubits] = acc.z
    table.phase_exp += acc.phase_exp
    table.phase_exp %= 4


def conjugate_pauli_sum(circuit: Circuit, hamiltonian) -> "PauliSum":
    """``H -> C† H C`` -- the paper's anticonjugation (Eq. 6).

    Implemented by building the tableau of the *inverse* circuit, so the
    result is exactly the transformed Hamiltonian whose coefficients absorb
    the conjugation signs.
    """
    from ..paulis.pauli_sum import PauliSum

    tableau = CliffordTableau.from_circuit(circuit.inverse())
    new_table = tableau.conjugate_table(hamiltonian.table)
    return PauliSum(new_table, hamiltonian.coefficients.copy())
