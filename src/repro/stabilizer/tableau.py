"""Clifford tableaus: the conjugation engine behind Clapton.

A Clifford operation ``C`` is fully described by the images of the symplectic
generators, ``C X_k C†`` and ``C Z_k C†`` (Eq. 2 of the paper).  We store
those 2n images as rows of a :class:`~repro.paulis.table.PauliTable` and
conjugate arbitrary Pauli strings -- or whole Hamiltonians at once -- by
multiplying out the relevant rows with exact phase tracking.

Tableaus for individual gates are *derived from their unitaries* at import
time (:func:`tableau_from_unitary`), so the gate library's dense matrices are
the single source of truth and the symplectic rules cannot drift out of sync
with the simulators.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..obs import get_tracer
from ..obs.kernel import KERNEL
from ..paulis import bitops
from ..circuits.circuit import Circuit
from ..circuits.gates import get_gate
from ..paulis.packed_table import PackedPauliTable
from ..paulis.pauli import PAULI_MATRICES, PauliString
from ..paulis.table import PauliTable

_PAULI_LABELS_1Q = ("I", "X", "Y", "Z")


def _pauli_basis(num_qubits: int) -> list[tuple[str, np.ndarray]]:
    basis = [("", np.array([[1.0 + 0j]]))]
    for _ in range(num_qubits):
        basis = [(lbl + p, np.kron(mat, PAULI_MATRICES[p]))
                 for lbl, mat in basis for p in _PAULI_LABELS_1Q]
    return basis


def tableau_from_unitary(unitary: np.ndarray) -> "CliffordTableau":
    """Build the tableau of a 1- or 2-qubit Clifford gate from its matrix.

    The image of each generator ``P`` is found by expanding ``U P U†`` in the
    Pauli basis and asserting the result is ``+-`` a single Pauli string.

    Raises:
        ValueError: if the unitary is not a Clifford operation.
    """
    dim = unitary.shape[0]
    num_qubits = int(np.log2(dim))
    if 2 ** num_qubits != dim or unitary.shape != (dim, dim):
        raise ValueError("unitary must be 2^k x 2^k")
    basis = _pauli_basis(num_qubits)
    rows = []
    generators = ([PauliString.from_sparse({k: "X"}, num_qubits) for k in range(num_qubits)]
                  + [PauliString.from_sparse({k: "Z"}, num_qubits) for k in range(num_qubits)])
    for gen in generators:
        image = unitary @ gen.to_matrix() @ unitary.conj().T
        rows.append(_match_signed_pauli(image, basis, num_qubits))
    return CliffordTableau(PauliTable.from_paulis(rows))


def _match_signed_pauli(matrix: np.ndarray, basis, num_qubits: int) -> PauliString:
    dim = matrix.shape[0]
    for label, pauli_mat in basis:
        coeff = np.trace(pauli_mat.conj().T @ matrix) / dim
        if abs(coeff) < 1e-9:
            continue
        if abs(coeff - 1) < 1e-9:
            return PauliString.from_label(label or "I")
        if abs(coeff + 1) < 1e-9:
            return -PauliString.from_label(label or "I")
        raise ValueError("matrix is not a Clifford conjugate of a Pauli")
    raise ValueError("matrix has no Pauli component")


class CliffordTableau:
    """The conjugation table of an n-qubit Clifford operation.

    Rows ``0..n-1`` are the images of ``X_k``; rows ``n..2n-1`` the images of
    ``Z_k``.  The represented map is ``P -> C P C†``.
    """

    __slots__ = ("rows", "_lut_key", "_packed_rows")

    def __init__(self, rows: PauliTable):
        if rows.num_rows != 2 * rows.num_qubits:
            raise ValueError("a tableau needs exactly 2n rows on n qubits")
        self.rows = rows
        self._lut_key = None
        self._packed_rows = None

    @property
    def num_qubits(self) -> int:
        return self.rows.num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "CliffordTableau":
        x = np.zeros((2 * num_qubits, num_qubits), dtype=bool)
        z = np.zeros_like(x)
        idx = np.arange(num_qubits)
        x[idx, idx] = True
        z[num_qubits + idx, idx] = True
        return cls(PauliTable(x, z))

    @classmethod
    def from_circuit(cls, circuit: Circuit,
                     packed: bool = True) -> "CliffordTableau":
        """Tableau of a bound Clifford circuit (raises if non-Clifford).

        ``packed=True`` (the default) runs the gate loop on the word-packed
        layout; the result is bit-identical to the boolean-matrix oracle
        (``packed=False``), which equivalence tests keep exercising.
        """
        if not circuit.is_clifford():
            raise ValueError("circuit is not Clifford")
        tableau = cls.identity(circuit.num_qubits)
        rows = (PackedPauliTable.from_table(tableau.rows) if packed
                else tableau.rows)
        for inst in circuit.instructions:
            gate = gate_tableau(inst.name, tuple(float(p) for p in inst.params))
            apply_gate_to_table(rows, gate, inst.qubits)
        if packed:
            return cls(rows.to_table())
        return tableau

    # ------------------------------------------------------------------
    # Conjugation
    # ------------------------------------------------------------------
    def conjugate_table(self, table):
        """Batched ``P -> C P C†`` for every row of ``table`` (new table).

        Each input ``P = (-i)^q Z^z X^x`` maps to
        ``(-i)^q * prod_k imgZ_k^{z_k} * prod_k imgX_k^{x_k}``; the products
        are accumulated with exact Pauli multiplication, vectorized over all
        input rows.  Accepts either representation and returns a table of
        the same kind; on the packed layout the row products are word-wise
        XORs with popcount phase tracking, bit-identical to the boolean
        path.
        """
        if table.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        n = self.num_qubits
        if isinstance(table, PackedPauliTable):
            if self._packed_rows is None:
                self._packed_rows = PackedPauliTable.from_table(self.rows)
            generators = self._packed_rows
            tracer = get_tracer()
            before = KERNEL.snapshot() if tracer.enabled else None
            t0 = time.perf_counter() if tracer.enabled else 0.0
            acc = PackedPauliTable.identity(table.num_rows, n)
            acc.phase_exp = table.phase_exp.copy()
            for k in range(n):
                acc.mul_table_row_on_rows(table.z_column(k), generators, n + k)
            for k in range(n):
                acc.mul_table_row_on_rows(table.x_column(k), generators, k)
            if before is not None:
                delta = KERNEL.delta(before)
                tracer.event("kernel.conjugate_table",
                             time.perf_counter() - t0,
                             words=delta["words"], rows=delta["rows"])
            return acc
        acc = PauliTable.identity(table.num_rows, n)
        acc.phase_exp = table.phase_exp.copy()
        for k in range(n):
            acc.mul_pauli_on_rows(table.z[:, k], self.rows.row(n + k))
        for k in range(n):
            acc.mul_pauli_on_rows(table.x[:, k], self.rows.row(k))
        return acc

    def conjugate_pauli(self, pauli: PauliString) -> PauliString:
        table = PauliTable.from_paulis([pauli])
        return self.conjugate_table(table).row(0)

    def then(self, later: "CliffordTableau") -> "CliffordTableau":
        """Tableau of ``later . self`` (run ``self`` first)."""
        return CliffordTableau(later.conjugate_table(self.rows))

    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (np.array_equal(self.rows.x, other.rows.x)
                and np.array_equal(self.rows.z, other.rows.z)
                and np.array_equal(self.rows.phase_exp % 4, other.rows.phase_exp % 4))

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.num_qubits})"


@lru_cache(maxsize=256)
def gate_tableau(name: str, params: tuple = ()) -> CliffordTableau:
    """Cached tableau of a named gate at given (Clifford) parameters."""
    spec = get_gate(name)
    if not spec.is_clifford(params):
        raise ValueError(f"{name}{params} is not a Clifford gate")
    return tableau_from_unitary(spec.matrix(params))


#: code-lookup cache for small-gate conjugation: a bounded LRU keyed on the
#: gate tableau's canonical *contents* (so equal gates share one entry and a
#: long tail of distinct gates evicts one-by-one instead of wholesale).
_LUT_CACHE: OrderedDict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = \
    OrderedDict()
_LUT_CACHE_MAX = 4096


def _gate_lut_key(gate: CliffordTableau) -> tuple:
    """Content key of a gate tableau (memoized on the instance)."""
    key = gate._lut_key
    if key is None:
        rows = gate.rows
        key = (rows.num_qubits, rows.x.tobytes(), rows.z.tobytes(),
               (rows.phase_exp % 4).tobytes())
        gate._lut_key = key
    return key


def _conjugation_lut(gate: CliffordTableau
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lookup tables mapping every input sub-Pauli code to its image.

    A k-qubit sub-Pauli (k <= 2 here) is encoded as
    ``sum_j (x_j + 2 z_j) * 4^j``; the tables give the image's x bits,
    z bits, and phase-exponent increment for all 4^k codes at once, so
    conjugating M rows costs a handful of integer gathers instead of four
    masked row multiplications.
    """
    key = _gate_lut_key(gate)
    cached = _LUT_CACHE.get(key)
    if cached is not None:
        KERNEL.lut_hits += 1
        _LUT_CACHE.move_to_end(key)
        return cached
    KERNEL.lut_misses += 1
    k = gate.num_qubits
    size = 4 ** k
    out_x = np.zeros((size, k), dtype=bool)
    out_z = np.zeros((size, k), dtype=bool)
    out_dq = np.zeros(size, dtype=np.int64)
    for code in range(size):
        x = np.array([(code >> (2 * j)) & 1 for j in range(k)], dtype=bool)
        z = np.array([(code >> (2 * j + 1)) & 1 for j in range(k)], dtype=bool)
        image = gate.conjugate_pauli(PauliString(x, z, 0))
        out_x[code] = image.x
        out_z[code] = image.z
        out_dq[code] = image.phase_exp
    _LUT_CACHE[key] = (out_x, out_z, out_dq)
    while len(_LUT_CACHE) > _LUT_CACHE_MAX:
        _LUT_CACHE.popitem(last=False)
    return out_x, out_z, out_dq


def apply_gate_to_table(table, gate: CliffordTableau,
                        qubits: Sequence[int],
                        rows: np.ndarray | None = None) -> None:
    """In place, conjugate every row of ``table`` by a small gate on ``qubits``.

    The restriction of a row to ``qubits`` is a sub-Pauli with zero phase
    exponent (operators on disjoint qubits commute), so only the sub-bits
    change and the image's phase exponent adds to the row's global phase.
    Dispatches through per-gate code lookup tables (see
    :func:`_conjugation_lut`); the generic row-multiplication path is kept
    for gates wider than the LUT supports.

    ``table`` may be a boolean-matrix :class:`~repro.paulis.table.PauliTable`
    or a word-packed :class:`~repro.paulis.packed_table.PackedPauliTable`;
    the packed kernel extracts and deposits single bit columns of the
    uint64 words and is bit-identical to the boolean path (the oracle the
    equivalence suite checks against).

    ``rows`` optionally restricts the conjugation to a boolean row mask --
    the seam population-batched evaluation uses to apply each genome's gate
    choice to only that genome's rows of a stacked table.  Masked rows see
    exactly the arithmetic the unmasked path applies, so per-row results
    are bit-identical either way.
    """
    qubits = list(qubits)
    k = gate.num_qubits
    if len(qubits) != k:
        raise ValueError("gate arity does not match qubit list")
    if isinstance(table, PackedPauliTable):
        _apply_gate_packed(table, gate, qubits, rows)
        return
    if k <= 2:
        lut_x, lut_z, lut_dq = _conjugation_lut(gate)
        if rows is None:
            codes = (table.x[:, qubits[0]]
                     + 2 * table.z[:, qubits[0]].astype(np.int64))
            if k == 2:
                codes = codes + 4 * (table.x[:, qubits[1]]
                                     + 2 * table.z[:, qubits[1]].astype(np.int64))
            for j, q in enumerate(qubits):
                table.x[:, q] = lut_x[codes, j]
                table.z[:, q] = lut_z[codes, j]
            table.phase_exp += lut_dq[codes]
            table.phase_exp %= 4
            return
        codes = (table.x[rows, qubits[0]]
                 + 2 * table.z[rows, qubits[0]].astype(np.int64))
        if k == 2:
            codes = codes + 4 * (table.x[rows, qubits[1]]
                                 + 2 * table.z[rows, qubits[1]].astype(np.int64))
        for j, q in enumerate(qubits):
            table.x[rows, q] = lut_x[codes, j]
            table.z[rows, q] = lut_z[codes, j]
        table.phase_exp[rows] = (table.phase_exp[rows] + lut_dq[codes]) % 4
        return
    if rows is not None:
        sub = PauliTable(table.x[rows], table.z[rows], table.phase_exp[rows])
        apply_gate_to_table(sub, gate, qubits)
        table.x[rows] = sub.x
        table.z[rows] = sub.z
        table.phase_exp[rows] = sub.phase_exp
        return
    subx = table.x[:, qubits]
    subz = table.z[:, qubits]
    acc = PauliTable.identity(table.num_rows, k)
    for j in range(k):
        acc.mul_pauli_on_rows(subz[:, j], gate.rows.row(k + j))
    for j in range(k):
        acc.mul_pauli_on_rows(subx[:, j], gate.rows.row(j))
    table.x[:, qubits] = acc.x
    table.z[:, qubits] = acc.z
    table.phase_exp += acc.phase_exp
    table.phase_exp %= 4


def _apply_gate_packed(table: PackedPauliTable, gate: CliffordTableau,
                       qubits: list[int],
                       rows: np.ndarray | None) -> None:
    """The LUT conjugation kernel on the word-packed layout.

    Sub-Pauli codes are read straight out of the uint64 words and the image
    bits are deposited back through per-code *pre-shifted* word
    contributions aggregated per word, so a gate application is a handful
    of O(M) word operations regardless of n.  A boolean row mask is
    converted to an index array once up front: every subsequent gather and
    scatter is an integer fancy-index on a contiguous 1-D word column,
    roughly 10x cheaper than repeated boolean-mask indexing at population
    scale.  The arithmetic mirrors the boolean kernel bit for bit.
    """
    k = gate.num_qubits
    idx = None
    rows_touched = table.num_rows
    if rows is not None:
        idx = np.flatnonzero(rows)
        if idx.size == 0:
            return
        rows_touched = int(idx.size)
    KERNEL.rows += rows_touched
    if k > 2:
        # generic fall-back: extract the sub-bits, run the boolean-path
        # row multiplications, deposit the image bits back
        KERNEL.words += rows_touched * table.num_words
        sel = slice(None) if idx is None else idx
        subx = np.column_stack([bitops.get_bit_i64(table.x, q, sel)
                                for q in qubits]).astype(bool)
        subz = np.column_stack([bitops.get_bit_i64(table.z, q, sel)
                                for q in qubits]).astype(bool)
        acc = PauliTable.identity(len(subx), k)
        for j in range(k):
            acc.mul_pauli_on_rows(subz[:, j], gate.rows.row(k + j))
        for j in range(k):
            acc.mul_pauli_on_rows(subx[:, j], gate.rows.row(j))
        for j, q in enumerate(qubits):
            bitops.set_bit(table.x, q, acc.x[:, j], sel)
            bitops.set_bit(table.z, q, acc.z[:, j], sel)
        table.phase_exp[sel] = (table.phase_exp[sel] + acc.phase_exp) % 4
        return
    lut_x, lut_z, lut_dq = _conjugation_lut(gate)
    one = np.uint64(1)
    # one gather per distinct word and plane, reused for code extraction
    # and the read-modify-write deposit; code bits are read through a
    # zero-copy int64 view so the LUT gathers index with int64 (uint64
    # fancy indices force a bounds conversion that costs ~2.5x)
    placements = [divmod(q, bitops.WORD_BITS) for q in qubits]
    gathered: dict[int, tuple] = {}
    for word, _ in placements:
        if word in gathered:
            continue
        colx = table.x[:, word]
        colz = table.z[:, word]
        if idx is None:
            gathered[word] = (colx, colz, colx, colz,
                              colx.view(np.int64), colz.view(np.int64))
        else:
            gx = colx[idx]
            gz = colz[idx]
            gathered[word] = (colx, colz, gx, gz,
                              gx.view(np.int64), gz.view(np.int64))
    codes = None
    for word, bit in placements:
        xi, zi = gathered[word][4], gathered[word][5]
        sub = ((xi >> bit) & 1) + 2 * ((zi >> bit) & 1)
        codes = sub if codes is None else codes + 4 * sub
    # aggregate clear masks and per-code image contributions per word on
    # the tiny pre-shifted LUTs FIRST, then gather once per word and
    # plane (codes were fully extracted above, so same-word qubit pairs
    # cannot corrupt each other)
    word_luts: dict[int, tuple] = {}
    for j, (word, bit) in enumerate(placements):
        shift = np.uint64(bit)
        lx = lut_x[:, j].astype(np.uint64) << shift
        lz = lut_z[:, j].astype(np.uint64) << shift
        clear, ax, az = word_luts.get(word, (np.uint64(0), None, None))
        word_luts[word] = (clear | (one << shift),
                           lx if ax is None else ax | lx,
                           lz if az is None else az | lz)
    KERNEL.words += len(word_luts) * rows_touched
    for word, (clear, ax, az) in word_luts.items():
        cx = ax[codes]
        cz = az[codes]
        colx, colz, gx, gz = gathered[word][:4]
        if idx is None:
            colx &= ~clear
            colx |= cx
            colz &= ~clear
            colz |= cz
        else:
            colx[idx] = (gx & ~clear) | cx
            colz[idx] = (gz & ~clear) | cz
    # phases stay in [0, 4), so `& 3` is the mod-4 of the boolean path
    if idx is None:
        phase = table.phase_exp
        np.add(phase, lut_dq[codes], out=phase)
        np.bitwise_and(phase, 3, out=phase)
    else:
        phase = table.phase_exp
        phase[idx] = (phase[idx] + lut_dq[codes]) & 3


#: combined multi-level LUT cache (same bounded-LRU policy as _LUT_CACHE)
_LEVELED_LUT_CACHE: OrderedDict[tuple, tuple] = OrderedDict()


def _leveled_lut(entries, k: int
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked LUT over gate alternatives sharing k target columns.

    Entry ``level * 4**k + code`` maps to the image bits and phase
    increment of conjugating the sub-Pauli ``code`` by that level's gate;
    a ``None`` entry is the identity (its rows come out untouched).  A
    ``(gate, reversed)`` entry with ``reversed=True`` applies the 2-qubit
    gate with its qubit order flipped relative to the shared columns
    (e.g. ``cx(l, k)`` on columns ``(k, l)``): the per-code rows are
    re-indexed through the symplectic code permutation and the output
    columns swapped, which is exactly the LUT the boolean path uses for
    that target order.
    """
    size = 4 ** k
    key_parts = []
    for entry in entries:
        if entry is None:
            key_parts.append(None)
        else:
            gate, flipped = entry
            key_parts.append((_gate_lut_key(gate), flipped))
    key = (k, tuple(key_parts))
    cached = _LEVELED_LUT_CACHE.get(key)
    if cached is not None:
        KERNEL.lut_hits += 1
        _LEVELED_LUT_CACHE.move_to_end(key)
        return cached
    KERNEL.lut_misses += 1
    codes = np.arange(size)
    xs, zs, dqs = [], [], []
    for entry in entries:
        if entry is None:
            xs.append(np.stack([(codes >> (2 * j)) & 1 for j in range(k)],
                               axis=1).astype(bool))
            zs.append(np.stack([(codes >> (2 * j + 1)) & 1 for j in range(k)],
                               axis=1).astype(bool))
            dqs.append(np.zeros(size, dtype=np.int64))
            continue
        gate, flipped = entry
        if gate.num_qubits != k:
            raise ValueError("gate arity does not match the column count")
        lut_x, lut_z, lut_dq = _conjugation_lut(gate)
        if flipped:
            if k != 2:
                raise ValueError("only 2-qubit gates can be order-flipped")
            gate_codes = (codes // 4) + 4 * (codes % 4)
            lut_x = lut_x[gate_codes][:, ::-1]
            lut_z = lut_z[gate_codes][:, ::-1]
            lut_dq = lut_dq[gate_codes]
        xs.append(lut_x)
        zs.append(lut_z)
        dqs.append(lut_dq)
    result = (np.ascontiguousarray(np.concatenate(xs)),
              np.ascontiguousarray(np.concatenate(zs)),
              np.ascontiguousarray(np.concatenate(dqs)))
    _LEVELED_LUT_CACHE[key] = result
    while len(_LEVELED_LUT_CACHE) > _LUT_CACHE_MAX:
        _LEVELED_LUT_CACHE.popitem(last=False)
    return result


def apply_gate_levels_to_table(table: PackedPauliTable, entries,
                               columns: Sequence[int],
                               level_of_row: np.ndarray) -> None:
    """In place, conjugate each row by the gate alternative its level picks.

    The population-batched transformation's packed fast path: instead of
    one masked conjugation per (slot, level) -- three boolean-mask passes
    over the stacked table -- the level becomes an extra LUT dimension
    (:func:`_leveled_lut`) and the whole slot is a single unmasked pass:
    extract codes from the shared columns, gather image bits at
    ``level * 4**k + code``, deposit.  Per row the arithmetic is the exact
    LUT application the masked path performs, so results are
    bit-identical; there is simply no masking left to pay for.

    Args:
        table: Word-packed stacked table (mutated in place).
        entries: One ``(gate, reversed)`` pair or ``None`` per level.
        columns: The k table columns all alternatives act on.
        level_of_row: ``(num_rows,)`` integer level of every row.
    """
    k = len(columns)
    lut_x, lut_z, lut_dq = _leveled_lut(entries, k)
    KERNEL.fused_passes += 1
    KERNEL.rows += table.num_rows
    one = np.uint64(1)
    placements = [divmod(q, bitops.WORD_BITS) for q in columns]
    words: dict[int, tuple] = {}
    for word, _ in placements:
        if word not in words:
            colx = table.x[:, word]
            colz = table.z[:, word]
            words[word] = (colx, colz,
                           colx.view(np.int64), colz.view(np.int64))
    # int64 throughout: zero-copy views for bit extraction and int64
    # LUT indices (uint64 fancy indices cost a bounds conversion)
    codes = None
    for word, bit in placements:
        xi, zi = words[word][2], words[word][3]
        sub = ((xi >> bit) & 1) + 2 * ((zi >> bit) & 1)
        codes = sub if codes is None else codes + 4 * sub
    combined = codes + (level_of_row << (2 * k))
    # pre-shift and OR the tiny LUT columns per touched word, then gather
    # once per word and plane -- same-word 2q gates pay 2 gathers, not 4
    word_luts: dict[int, tuple] = {}
    for j, (word, bit) in enumerate(placements):
        shift = np.uint64(bit)
        lx = lut_x[:, j].astype(np.uint64) << shift
        lz = lut_z[:, j].astype(np.uint64) << shift
        clear, ax, az = word_luts.get(word, (np.uint64(0), None, None))
        word_luts[word] = (clear | (one << shift),
                           lx if ax is None else ax | lx,
                           lz if az is None else az | lz)
    KERNEL.words += len(word_luts) * table.num_rows
    for word, (clear, ax, az) in word_luts.items():
        colx, colz = words[word][:2]
        colx &= ~clear
        colx |= ax[combined]
        colz &= ~clear
        colz |= az[combined]
    # phases stay in [0, 4), so `& 3` is the mod-4 of the boolean path
    phase = table.phase_exp
    np.add(phase, lut_dq[combined], out=phase)
    np.bitwise_and(phase, 3, out=phase)


def conjugate_pauli_sum(circuit: Circuit, hamiltonian) -> "PauliSum":
    """``H -> C† H C`` -- the paper's anticonjugation (Eq. 6).

    Implemented by building the tableau of the *inverse* circuit, so the
    result is exactly the transformed Hamiltonian whose coefficients absorb
    the conjugation signs.
    """
    from ..paulis.pauli_sum import PauliSum

    tableau = CliffordTableau.from_circuit(circuit.inverse())
    new_table = tableau.conjugate_table(hamiltonian.table)
    return PauliSum(new_table, hamiltonian.coefficients.copy())
