"""Clifford tableaus and the CHP stabilizer simulator (stim substitute)."""

from .tableau import (
    CliffordTableau,
    apply_gate_to_table,
    conjugate_pauli_sum,
    gate_tableau,
    tableau_from_unitary,
)
from .simulator import StabilizerSimulator, clifford_state_expectation

__all__ = [
    "CliffordTableau", "StabilizerSimulator", "apply_gate_to_table",
    "clifford_state_expectation", "conjugate_pauli_sum", "gate_tableau",
    "tableau_from_unitary",
]
