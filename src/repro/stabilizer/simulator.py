"""CHP-style stabilizer simulator (Aaronson-Gottesman).

This is the package's stand-in for stim's simulation core: it tracks a
stabilizer state as 2n phase-signed Pauli rows (n destabilizers, n
stabilizers), applies Clifford gates by conjugating all rows at once, and
supports Z-basis measurement and exact Pauli expectation values.

Expectation values are what Clapton's losses consume: for a stabilizer state
``|psi>`` and Pauli ``P``, ``<psi|P|psi>`` is 0 when ``P`` anticommutes with
any stabilizer generator and otherwise ``+-1``, with the sign recovered by
expressing ``P`` as a product of generators via the destabilizer pairing.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..paulis.pauli import PauliString
from ..paulis.table import PauliTable
from .tableau import apply_gate_to_table, gate_tableau


class StabilizerSimulator:
    """A stabilizer state on ``num_qubits`` qubits, initially ``|0...0>``.

    Rows ``0..n-1`` of :attr:`rows` are destabilizers (initially ``X_k``),
    rows ``n..2n-1`` stabilizers (initially ``Z_k``).
    """

    def __init__(self, num_qubits: int):
        self.num_qubits = int(num_qubits)
        self.reset()

    def reset(self) -> None:
        n = self.num_qubits
        x = np.zeros((2 * n, n), dtype=bool)
        z = np.zeros_like(x)
        idx = np.arange(n)
        x[idx, idx] = True
        z[n + idx, idx] = True
        self.rows = PauliTable(x, z)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_gate(self, name: str, qubits, params: tuple = ()) -> None:
        gate = gate_tableau(name, tuple(float(p) for p in params))
        apply_gate_to_table(self.rows, gate, tuple(qubits))

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("register size mismatch")
        for inst in circuit.instructions:
            self.apply_gate(inst.name, inst.qubits, inst.params)

    def apply_pauli(self, pauli: PauliString) -> None:
        """Apply a (stochastic-noise) Pauli: flips signs of anticommuting rows."""
        anti = ((self.rows.x & pauli.z[None, :]).sum(axis=1)
                + (self.rows.z & pauli.x[None, :]).sum(axis=1)) % 2
        self.rows.phase_exp = (self.rows.phase_exp + 2 * anti) % 4

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        """Measure ``qubit`` in the Z basis, collapsing the state."""
        n = self.num_qubits
        stab_x = self.rows.x[n:, qubit]
        candidates = np.flatnonzero(stab_x)
        if candidates.size:
            p = int(candidates[0]) + n  # random outcome branch
            pivot = self.rows.row(p)
            others = np.flatnonzero(self.rows.x[:, qubit])
            mask = np.zeros(2 * n, dtype=bool)
            mask[others] = True
            mask[p] = False
            self.rows.mul_pauli_on_rows(mask, pivot)
            # destabilizer p-n becomes the old stabilizer; stabilizer p
            # becomes +-Z_qubit with a fair random sign.
            self.rows.x[p - n] = pivot.x
            self.rows.z[p - n] = pivot.z
            self.rows.phase_exp[p - n] = pivot.phase_exp
            outcome = int(rng.integers(0, 2))
            self.rows.x[p] = False
            self.rows.z[p] = False
            self.rows.z[p, qubit] = True
            self.rows.phase_exp[p] = 2 * outcome
            return outcome
        # Deterministic branch: Z_qubit is (up to sign) in the stabilizer
        # group; accumulate the product of stabilizers paired with the
        # destabilizers that anticommute with Z_qubit.
        acc = PauliString.identity(n)
        for i in range(n):
            if self.rows.x[i, qubit]:
                acc = acc * self.rows.row(n + i)
        sign = acc.sign
        return 0 if sign == 1 else 1

    def measure_all(self, rng: np.random.Generator) -> np.ndarray:
        return np.array([self.measure(q, rng) for q in range(self.num_qubits)])

    # ------------------------------------------------------------------
    # Expectation values
    # ------------------------------------------------------------------
    def expectation(self, pauli: PauliString) -> float:
        """Exact ``<psi|P|psi>`` (0 or +-1) without collapsing the state."""
        n = self.num_qubits
        stab_x = self.rows.x[n:]
        stab_z = self.rows.z[n:]
        anti_stab = ((stab_x & pauli.z[None, :]).sum(axis=1)
                     + (stab_z & pauli.x[None, :]).sum(axis=1)) % 2
        if anti_stab.any():
            return 0.0
        destab_x = self.rows.x[:n]
        destab_z = self.rows.z[:n]
        anti_destab = ((destab_x & pauli.z[None, :]).sum(axis=1)
                       + (destab_z & pauli.x[None, :]).sum(axis=1)) % 2
        acc = PauliString.identity(n)
        for i in np.flatnonzero(anti_destab):
            acc = acc * self.rows.row(n + int(i))
        # acc equals +-P; compare canonical signs and bodies.
        if not (np.array_equal(acc.x, pauli.x) and np.array_equal(acc.z, pauli.z)):
            raise AssertionError("destabilizer decomposition failed")
        return float(acc.sign * pauli.sign)

    def expectation_sum(self, hamiltonian) -> float:
        """``<psi|H|psi>`` for a :class:`~repro.paulis.pauli_sum.PauliSum`."""
        total = 0.0
        for coeff, pauli in hamiltonian.terms():
            total += coeff * self.expectation(pauli)
        return total

    def statevector(self) -> np.ndarray:
        """Dense statevector (tests only; exponential in n).

        Reconstructed by projecting ``|0...0>``-seeded random vector onto the
        stabilizer group's +1 eigenspace via the group projector
        ``prod_k (1 + S_k) / 2``.
        """
        n = self.num_qubits
        dim = 2 ** n
        projector = np.eye(dim, dtype=complex)
        for i in range(n):
            s = self.rows.row(n + i).to_matrix()
            projector = projector @ (np.eye(dim) + s) / 2
        # any column with non-zero norm is the state (rank-1 projector)
        for col in range(dim):
            vec = projector[:, col]
            norm = np.linalg.norm(vec)
            if norm > 1e-8:
                vec = vec / norm
                # fix global phase: make first non-zero amplitude real positive
                first = vec[np.flatnonzero(np.abs(vec) > 1e-10)[0]]
                return vec * (abs(first) / first)
        raise AssertionError("stabilizer projector has no support")


def clifford_state_expectation(circuit: Circuit, hamiltonian) -> float:
    """``<0|C† H C|0>`` for a Clifford circuit ``C`` -- one tableau pass.

    This is the noiseless path used by CAFQA's cost and Clapton's L0; it
    anticonjugates all Hamiltonian terms at once instead of simulating.
    """
    from .tableau import CliffordTableau

    tableau = CliffordTableau.from_circuit(circuit.inverse())
    conjugated = tableau.conjugate_table(hamiltonian.table)
    return float(hamiltonian.coefficients @ conjugated.expectation_all_zeros())
