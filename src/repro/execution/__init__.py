"""Unified estimation + execution layer: the seam every scaling PR plugs into.

``make_estimator`` builds batched energy estimators (exact density-matrix,
shot-sampling, Clifford fast path) behind one protocol; the ``Executor``
backends (serial/thread/process) give the Figure-4 engine and any future
fan-out a uniform ``map``; ``memoize_loss`` is the shared loss cache that
works under all of them.
"""

from .cache import MemoizedLoss, genome_key, memoize_loss
from .estimator import (
    BatchResult,
    CliffordEstimator,
    EstimateResult,
    Estimator,
    ExactEstimator,
    ShotSamplingEstimator,
    make_estimator,
)
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    spawn_seeds,
)

__all__ = [
    "BatchResult", "CliffordEstimator", "EstimateResult", "Estimator",
    "ExactEstimator", "Executor", "MemoizedLoss", "ProcessExecutor",
    "SerialExecutor", "ShotSamplingEstimator", "ThreadExecutor",
    "genome_key", "make_estimator", "memoize_loss", "resolve_executor",
    "spawn_seeds",
]
