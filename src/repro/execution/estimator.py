"""Unified energy-estimation API: one protocol, three engines, batch-first.

Every evaluation surface of the reproduction (the Figure-4 GA losses, the
SPSA/VQE loop, the figure runners, the CLI) estimates Pauli-sum energies of
the bound ansatz ``A'(theta)``.  This module gives them a single seam:

* :class:`ExactEstimator` (``mode="exact"``) -- full density-matrix
  evolution with every modeled channel, optionally adding Gaussian noise
  with the exact per-term sampling variance.  The successor of the old
  ``repro.vqe.estimator.EnergyEstimator``.
* :class:`ShotSamplingEstimator` (``mode="shots"``) -- the faithful
  hardware measurement flow: qubit-wise-commuting grouping, noisy basis
  rotations, multinomial bitstring sampling through readout confusion,
  optional tensored readout mitigation.  Absorbs the old
  ``repro.vqe.counts_estimator.CountsEnergyEstimator``.
* :class:`CliffordEstimator` (``mode="clifford"``) -- stabilizer fast path
  for Clifford parameter points (every theta a multiple of pi/2): the
  Pauli-channel noise projection evaluated in one backward tableau pass,
  orders of magnitude faster than density-matrix evolution.

All estimators implement ``estimate(theta) -> EstimateResult`` and the
batched ``estimate_many(thetas) -> BatchResult``.  The batched path
precomputes and shares the bound-circuit skeleton (a fused bind +
identity-drop plan over the ansatz template) and the per-term measurement
attenuations across the whole batch instead of rebuilding them per call --
this is what amortizes circuit setup across a GA population or SPSA sweep.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..circuits.circuit import Circuit
from ..densesim.evaluator import evolve_with_noise, measurement_attenuations
from ..noise.clifford_model import CliffordNoiseModel
from ..noise.model import NoiseModel
from ..paulis.pauli_sum import PauliSum

if TYPE_CHECKING:  # annotation-only; avoids a core <-> execution cycle
    from ..core.problem import VQEProblem

_TWO_PI = 2.0 * math.pi


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class EstimateResult:
    """One energy estimate with its full provenance.

    Attributes:
        value: The estimate itself (shot-noised when ``shots`` is set).
        exact_value: The infinite-shot value under the same model (equals
            ``value`` for exact estimators; ``None`` for sampled-counts
            estimates, where the infinite-shot value is never computed).
        term_expectations: Per-term expectations ``<P_i>`` after noise and
            measurement attenuation, aligned with the observable's terms.
        variance: Analytic sampling variance of ``value`` when the
            estimator knows it, else ``None``.
        shots: Shot budget charged (``None`` for infinite-shot estimates).
        seconds: Wall time of this estimate.
        mode: Which engine produced it (``"exact"``/``"shots"``/``"clifford"``).
    """

    value: float
    exact_value: float | None
    term_expectations: np.ndarray
    variance: float | None
    shots: int | None
    seconds: float
    mode: str


@dataclass
class BatchResult:
    """Results of one batched ``estimate_many`` call.

    Attributes:
        values: Energy estimates, one per input point.
        results: Full per-point :class:`EstimateResult` records.
        seconds: Wall time of the whole batch.
    """

    values: np.ndarray
    results: list[EstimateResult] = field(repr=False)
    seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> EstimateResult:
        return self.results[index]

    @property
    def term_expectations(self) -> np.ndarray:
        """``(num_points, num_terms)`` matrix of per-term expectations."""
        return np.stack([r.term_expectations for r in self.results])


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
@runtime_checkable
class Estimator(Protocol):
    """What every energy estimator exposes to the rest of the package."""

    mode: str
    num_evaluations: int

    def estimate(self, theta: np.ndarray) -> EstimateResult: ...

    def estimate_many(self, thetas: np.ndarray) -> BatchResult: ...

    def energy(self, theta: np.ndarray) -> float: ...


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
class _BindingPlan:
    """Fused bind + identity-drop plan over an ansatz template.

    ``Circuit.bind`` walks every instruction substituting parameters, and
    ``drop_identity_rotations`` walks the result again.  For batched
    estimation both passes are folded into one precomputed plan: static
    instructions are resolved once (explicit ``i`` gates and zero-angle
    bound rotations dropped at plan time), and per point only the
    parameterized rotations are re-dispatched.  Output is instruction-for-
    instruction identical to ``problem.bound_ansatz(theta)``.
    """

    def __init__(self, template: Circuit, tol: float = 1e-12):
        from ..circuits.ansatz import bound_skeleton_steps

        self.num_qubits = template.num_qubits
        self.num_parameters = template.num_parameters
        self.tol = tol
        #: (instruction, parameter index | None); None = append verbatim
        self.steps: list[tuple] = bound_skeleton_steps(template, tol)

    def bind(self, theta: np.ndarray) -> Circuit:
        if len(theta) < self.num_parameters:
            raise ValueError(f"need {self.num_parameters} parameter values, "
                             f"got {len(theta)}")
        out = Circuit(self.num_qubits)
        instructions = out.instructions
        tol = self.tol
        for inst, index in self.steps:
            if index is None:
                instructions.append(inst)
                continue
            angle = float(theta[index])
            folded = angle % _TWO_PI
            if min(folded, _TWO_PI - folded) < tol:
                continue
            instructions.append(replace(inst, params=(angle,)))
        return out

    def keep_mask(self, theta: np.ndarray) -> tuple[bool, ...]:
        """Which parameterized steps survive identity-dropping at ``theta``.

        The mask is the point's circuit-structure signature: points with
        equal masks share an instruction sequence and can be evolved as
        one batch.
        """
        if len(theta) < self.num_parameters:
            raise ValueError(f"need {self.num_parameters} parameter values, "
                             f"got {len(theta)}")
        mask = []
        tol = self.tol
        for _, index in self.steps:
            if index is None:
                continue
            folded = float(theta[index]) % _TWO_PI
            mask.append(min(folded, _TWO_PI - folded) >= tol)
        return tuple(mask)

    def steps_for(self, mask: tuple[bool, ...], thetas: np.ndarray
                  ) -> list[tuple]:
        """The shared instruction sequence of one structure group.

        Returns ``(instruction, angles)`` pairs for the batched evolver:
        ``angles`` is the group's ``(B,)`` per-point angle vector for kept
        rotations and ``None`` for static instructions.  The
        representative instruction of a rotation carries the first point's
        angle (noise channels only read its name and qubits).
        """
        out = []
        position = 0
        for inst, index in self.steps:
            if index is None:
                out.append((inst, None))
                continue
            kept = mask[position]
            position += 1
            if not kept:
                continue
            angles = np.asarray(thetas[:, index], dtype=float)
            out.append((replace(inst, params=(float(angles[0]),)), angles))
        return out


class BaseEstimator:
    """Common bookkeeping: validation, counters, the batched default."""

    mode = "base"

    def __init__(self, problem: "VQEProblem", observable: PauliSum,
                 noise_model: NoiseModel | None = None):
        self.problem = problem
        self.observable = observable
        self.noise_model = noise_model or problem.noise_model
        if self.noise_model.num_qubits != problem.num_eval_qubits:
            raise ValueError("noise model width must match the eval register")
        self.num_evaluations = 0
        self._plan: _BindingPlan | None = None

    # -- batched circuit construction ---------------------------------
    def _bound_circuit_batched(self, theta: np.ndarray) -> Circuit:
        """Bind via the shared precomputed skeleton plan."""
        if self._plan is None:
            self._plan = _BindingPlan(self.problem.eval_ansatz)
        return self._plan.bind(theta)

    # -- protocol surface ---------------------------------------------
    def estimate(self, theta: np.ndarray) -> EstimateResult:
        raise NotImplementedError

    def _estimate_batched(self, theta: np.ndarray) -> EstimateResult:
        """One point of a batch; subclasses override to share setup."""
        return self.estimate(theta)

    def estimate_many(self, thetas: np.ndarray) -> BatchResult:
        """Estimate a whole batch, amortizing circuit setup across points."""
        start = time.perf_counter()
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        results = [self._estimate_batched(theta) for theta in thetas]
        return BatchResult(
            values=np.array([r.value for r in results]),
            results=results,
            seconds=time.perf_counter() - start)

    def energy(self, theta: np.ndarray) -> float:
        """Scalar convenience: just the energy estimate."""
        return self.estimate(theta).value

    def __call__(self, theta: np.ndarray) -> float:
        return self.energy(theta)


# ----------------------------------------------------------------------
# Exact density-matrix estimator
# ----------------------------------------------------------------------
class ExactEstimator(BaseEstimator):
    """Estimate noisy energies of ``A'(theta)`` against one observable.

    Evolves the density matrix exactly (the paper's AerSimulator role) and
    optionally emulates measurement shot noise by adding Gaussian noise with
    the exact per-term sampling variance

        Var[E_hat] = sum_i c_i^2 (1 - <P_i>^2) / shots_i

    (each term measured with ``shots`` shots; covariance between qubit-wise
    commuting terms measured in shared bases is neglected, which is the
    usual conservative emulation).

    Args:
        problem: The VQE problem bundle (supplies the ansatz and register).
        observable: Hamiltonian on the evaluation register (the transformed
            one for post-Clapton VQE).
        noise_model: Device model; defaults to the problem's.  Pass the
            hardware twin's model to emulate on-device evaluation.
        shots: ``None`` for exact (infinite-shot) estimates, otherwise the
            per-term shot budget used for noise emulation.
        seed: Seed of the shot-noise generator.
    """

    mode = "exact"

    def __init__(self, problem: "VQEProblem", observable: PauliSum,
                 noise_model: NoiseModel | None = None,
                 shots: int | None = None, seed: int | None = None):
        super().__init__(problem, observable, noise_model)
        self.shots = shots
        self.rng = np.random.default_rng(seed)
        self._attenuation = measurement_attenuations(observable,
                                                     self.noise_model)
        self._paulis = [p for _, p in observable.terms()]
        self._coefficients = observable.coefficients

    def with_problem(self, problem: "VQEProblem") -> "ExactEstimator":
        """Clone over another problem (same observable, model, rng stream).

        Mitigation strategies use this to evaluate folded circuit variants:
        the clone shares this estimator's shot-noise generator, so a stack
        that touches several variants draws from one deterministic stream.
        """
        clone = ExactEstimator(problem, self.observable,
                               noise_model=self.noise_model, shots=self.shots)
        clone.rng = self.rng
        return clone

    def _finish(self, circuit: Circuit, start: float) -> EstimateResult:
        sim = evolve_with_noise(circuit, self.noise_model)
        values = np.array([sim.pauli_expectation(p) for p in self._paulis])
        values = values * self._attenuation
        exact = float(self._coefficients @ values)
        self.num_evaluations += 1
        if self.shots is None:
            return EstimateResult(
                value=exact, exact_value=exact, term_expectations=values,
                variance=0.0, shots=None,
                seconds=time.perf_counter() - start, mode=self.mode)
        variances = (self._coefficients ** 2
                     * np.clip(1.0 - values ** 2, 0.0, 1.0) / self.shots)
        variance = float(variances.sum())
        value = exact + float(self.rng.normal(0.0, np.sqrt(variance)))
        return EstimateResult(
            value=value, exact_value=exact, term_expectations=values,
            variance=variance, shots=self.shots,
            seconds=time.perf_counter() - start, mode=self.mode)

    def estimate(self, theta: np.ndarray) -> EstimateResult:
        start = time.perf_counter()
        return self._finish(self.problem.bound_ansatz(theta), start)

    def _estimate_batched(self, theta: np.ndarray) -> EstimateResult:
        start = time.perf_counter()
        return self._finish(self._bound_circuit_batched(theta), start)

    #: Complex state entries per chunk tensor (~2 MB): keeps each chunk's
    #: working set cache-resident so batching never trades locality away.
    _CHUNK_ELEMENTS = 1 << 17
    #: Below this many points per chunk the amortized dispatch saving no
    #: longer beats the scalar path's cache reuse; fall back to per-point.
    _MIN_CHUNK = 8

    def estimate_many(self, thetas: np.ndarray) -> BatchResult:
        """Batched estimation through shared density-matrix evolutions.

        Points are grouped by circuit structure (the identity-dropping
        pattern of their angles) and each group is evolved as one
        ``(B, 2^n, 2^n)`` tensor -- in cache-sized chunks -- so the
        per-instruction gate/channel dispatch, the dominant cost at these
        register sizes, is paid once per chunk instead of once per point.
        Above ~7 qubits a single point's state already amortizes the
        dispatch and the batch tensor would just thrash the cache, so the
        evaluation falls back to a per-point loop over the shared
        precomputed skeleton.  Shot-noise draws happen in point order,
        matching the sequential ``estimate`` stream exactly.
        """
        from ..densesim.batched import evolve_steps_with_noise

        num_qubits = self.problem.num_eval_qubits
        chunk_size = self._CHUNK_ELEMENTS // (4 ** num_qubits)
        if chunk_size < self._MIN_CHUNK:
            return super().estimate_many(thetas)

        start = time.perf_counter()
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        num_points = len(thetas)
        if self._plan is None:
            self._plan = _BindingPlan(self.problem.eval_ansatz)
        plan = self._plan

        groups: dict[tuple[bool, ...], list[int]] = {}
        for b in range(num_points):
            groups.setdefault(plan.keep_mask(thetas[b]), []).append(b)

        num_terms = len(self._paulis)
        exact_values = np.empty(num_points)
        term_matrix = np.empty((num_points, num_terms))
        point_seconds = np.empty(num_points)
        for mask, members in groups.items():
            for lo in range(0, len(members), chunk_size):
                chunk = members[lo:lo + chunk_size]
                chunk_start = time.perf_counter()
                steps = plan.steps_for(mask, thetas[chunk])
                sim = evolve_steps_with_noise(
                    steps, num_qubits, len(chunk), self.noise_model)
                values = sim.pauli_expectations(self._paulis)
                values *= self._attenuation[None, :]
                term_matrix[chunk] = values
                exact_values[chunk] = values @ self._coefficients
                point_seconds[chunk] = ((time.perf_counter() - chunk_start)
                                        / len(chunk))
        self.num_evaluations += num_points

        results = []
        for b in range(num_points):
            exact = float(exact_values[b])
            if self.shots is None:
                results.append(EstimateResult(
                    value=exact, exact_value=exact,
                    term_expectations=term_matrix[b], variance=0.0,
                    shots=None, seconds=float(point_seconds[b]),
                    mode=self.mode))
                continue
            variances = (self._coefficients ** 2
                         * np.clip(1.0 - term_matrix[b] ** 2, 0.0, 1.0)
                         / self.shots)
            variance = float(variances.sum())
            value = exact + float(self.rng.normal(0.0, np.sqrt(variance)))
            results.append(EstimateResult(
                value=value, exact_value=exact,
                term_expectations=term_matrix[b], variance=variance,
                shots=self.shots, seconds=float(point_seconds[b]),
                mode=self.mode))
        return BatchResult(
            values=np.array([r.value for r in results]),
            results=results,
            seconds=time.perf_counter() - start)


# ----------------------------------------------------------------------
# Shot-sampling (counts-based) estimator
# ----------------------------------------------------------------------
class ShotSamplingEstimator(BaseEstimator):
    """Estimate energies from sampled measurement outcomes.

    The slow-but-faithful reference path reproducing what actually happens
    on hardware: group terms into shared measurement bases, append (noisy)
    basis-rotation gates, sample bitstring counts through the asymmetric
    readout confusion, and reconstruct each term's expectation from the
    bits -- optionally applying tensored readout mitigation first.

    Args:
        problem: Problem bundle (ansatz + register).
        observable: Hamiltonian on the evaluation register.
        noise_model: Device model (defaults to the problem's).
        shots: Shots per measurement basis.
        seed: Sampling seed; ``None`` (the default) draws fresh OS entropy,
            matching every other estimator -- pass an explicit seed for
            reproducible sampling.
        readout_mitigation: Apply tensored confusion-matrix inversion to
            every sampled distribution before estimating expectations.
    """

    mode = "shots"

    def __init__(self, problem: "VQEProblem", observable: PauliSum,
                 noise_model: NoiseModel | None = None, shots: int = 4096,
                 seed: int | None = None, readout_mitigation: bool = False):
        from ..mitigation.readout import confusion_matrices
        from ..vqe.grouping import group_qubit_wise_commuting

        super().__init__(problem, observable, noise_model)
        self.shots = shots
        self.rng = np.random.default_rng(seed)
        self.readout_mitigation = readout_mitigation
        self.groups = group_qubit_wise_commuting(observable)
        self._constant = observable.identity_constant()
        self._matrices = confusion_matrices(self.noise_model)
        # Theta-independent per-batch precomputation: basis rotations and
        # per-term support qubit lists never change across a sweep.
        supports = observable.table.supports_mask()
        self._term_qubits = [[int(q) for q in np.flatnonzero(supports[idx])]
                             for idx in range(observable.num_terms)]
        self._rotations = [g.basis_rotation(problem.num_eval_qubits)
                           for g in self.groups]

    def with_problem(self, problem: "VQEProblem") -> "ShotSamplingEstimator":
        """Clone over another problem (same observable, model, rng stream)."""
        clone = ShotSamplingEstimator(
            problem, self.observable, noise_model=self.noise_model,
            shots=self.shots, readout_mitigation=self.readout_mitigation)
        clone.rng = self.rng
        return clone

    @property
    def num_bases(self) -> int:
        return len(self.groups)

    def _finish(self, circuit: Circuit, start: float) -> EstimateResult:
        from ..mitigation.readout import (
            mitigate_probabilities,
            z_expectation_from_probabilities,
        )

        coefficients = self.observable.coefficients
        term_values = np.zeros(self.observable.num_terms)
        for group, rotation in zip(self.groups, self._rotations):
            rotated = circuit.compose(rotation)
            sim = evolve_with_noise(rotated, self.noise_model)
            probs = sim.probabilities_with_readout_error(
                self.noise_model.readout_p01, self.noise_model.readout_p10)
            sampled = self.rng.multinomial(self.shots, probs) / self.shots
            if self.readout_mitigation:
                sampled = mitigate_probabilities(sampled, self._matrices)
            for idx in group.term_indices:
                term_values[idx] = z_expectation_from_probabilities(
                    sampled, self._term_qubits[idx])
        value = float(self._constant + coefficients @ term_values)
        self.num_evaluations += 1
        return EstimateResult(
            value=value, exact_value=None, term_expectations=term_values,
            variance=None, shots=self.shots,
            seconds=time.perf_counter() - start, mode=self.mode)

    def estimate(self, theta: np.ndarray) -> EstimateResult:
        start = time.perf_counter()
        return self._finish(self.problem.bound_ansatz(theta), start)

    def _estimate_batched(self, theta: np.ndarray) -> EstimateResult:
        start = time.perf_counter()
        return self._finish(self._bound_circuit_batched(theta), start)


# ----------------------------------------------------------------------
# Clifford fast-path estimator
# ----------------------------------------------------------------------
class CliffordEstimator(BaseEstimator):
    """Stabilizer fast path for Clifford parameter points.

    When every ansatz angle is a multiple of pi/2 the bound circuit is
    Clifford and the Pauli-channel projection of the device model evaluates
    the noisy energy in one backward tableau pass (no density matrix).
    This is the engine behind Clapton's own cost function, exposed through
    the uniform estimator interface so GA populations and Clifford sweeps
    can use it as a drop-in.

    Raises ``ValueError`` from :meth:`estimate` when the bound circuit is
    not Clifford.
    """

    mode = "clifford"

    def __init__(self, problem: "VQEProblem", observable: PauliSum,
                 noise_model: NoiseModel | None = None,
                 clifford_model: CliffordNoiseModel | None = None,
                 packed: bool = True):
        super().__init__(problem, observable, noise_model)
        self.clifford_model = clifford_model or CliffordNoiseModel(
            self.noise_model)
        self.packed = packed
        self._coefficients = observable.coefficients
        self._clifford_plan = None
        if packed:
            from ..paulis.packed_table import PackedPauliTable

            # observable packed once; every pass copies/tiles the words
            self._observable_table = PackedPauliTable.from_table(
                observable.table)
        else:
            self._observable_table = observable.table

    def with_problem(self, problem: "VQEProblem") -> "CliffordEstimator":
        """Clone over another problem (same observable and noise models)."""
        return CliffordEstimator(problem, self.observable,
                                 noise_model=self.noise_model,
                                 clifford_model=self.clifford_model,
                                 packed=self.packed)

    def _finish(self, circuit: Circuit, start: float) -> EstimateResult:
        if not circuit.is_clifford():
            raise ValueError(
                "CliffordEstimator requires a Clifford parameter point "
                "(every angle a multiple of pi/2)")
        values = self.clifford_model.noisy_zero_state_term_values(
            circuit, self._observable_table)
        value = float(self._coefficients @ values)
        self.num_evaluations += 1
        return EstimateResult(
            value=value, exact_value=value, term_expectations=values,
            variance=0.0, shots=None,
            seconds=time.perf_counter() - start, mode=self.mode)

    def estimate(self, theta: np.ndarray) -> EstimateResult:
        start = time.perf_counter()
        return self._finish(self.problem.bound_ansatz(theta), start)

    def _estimate_batched(self, theta: np.ndarray) -> EstimateResult:
        start = time.perf_counter()
        return self._finish(self._bound_circuit_batched(theta), start)

    def estimate_many(self, thetas: np.ndarray) -> BatchResult:
        """One stacked backward tableau pass for the whole batch.

        The observable's term table is tiled once per point into a
        ``(P*M, n)`` bit tensor and the Pauli-channel projection walks the
        shared ansatz skeleton a single time, applying each point's kept
        rotations through per-point row masks
        (:class:`~repro.noise.clifford_model.CliffordCircuitPlan`) --
        instead of rebuilding the bound circuit and re-running the pass
        per point.  Per-point values are bit-identical to
        :meth:`estimate`.
        """
        from ..noise.clifford_model import CliffordCircuitPlan

        start = time.perf_counter()
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        num_points = len(thetas)
        if self._clifford_plan is None:
            self._clifford_plan = CliffordCircuitPlan(
                self.problem.eval_ansatz)
        plan = self._clifford_plan
        if not plan.is_clifford(thetas):
            raise ValueError(
                "CliffordEstimator requires a Clifford parameter point "
                "(every angle a multiple of pi/2)")
        table = self._observable_table
        num_terms = table.num_rows
        schedule = plan.reverse_schedule(thetas, num_terms)
        values = self.clifford_model.noisy_zero_state_term_values_steps(
            schedule, table.tile(num_points))
        term_matrix = values.reshape(num_points, num_terms)
        self.num_evaluations += num_points
        seconds = time.perf_counter() - start
        results = [EstimateResult(
            value=(value := float(self._coefficients @ term_matrix[b])),
            exact_value=value, term_expectations=term_matrix[b],
            variance=0.0, shots=None, seconds=seconds / num_points,
            mode=self.mode) for b in range(num_points)]
        return BatchResult(
            values=np.array([r.value for r in results]),
            results=results,
            seconds=time.perf_counter() - start)


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
_MODES = ("exact", "shots", "clifford")


def make_estimator(problem: "VQEProblem", observable: PauliSum | None = None,
                   *, mode: str = "exact",
                   noise_model: NoiseModel | None = None,
                   shots: int | None = None, seed: int | None = None,
                   readout_mitigation: bool = False,
                   clifford_model: CliffordNoiseModel | None = None
                   ) -> Estimator:
    """Build an estimator for one problem/observable pair.

    Args:
        problem: The VQE problem bundle.
        observable: Hamiltonian on the evaluation register; defaults to the
            problem's Hamiltonian mapped onto it.
        mode: ``"exact"`` (density matrix, optional Gaussian shot
            emulation), ``"shots"`` (sampled measurement flow), or
            ``"clifford"`` (stabilizer fast path for Clifford points).
        noise_model: Device model override (e.g. a hardware twin).
        shots: Shot budget; for ``"exact"`` ``None`` means infinite shots,
            for ``"shots"`` it defaults to 4096.
        seed: Seed of the estimator's sampling generator.  ``seed=None``
            (the default) means fresh OS entropy in **every** mode --
            identical calls are then statistically independent, never
            silently pinned.  Pass an explicit seed for reproducible
            sampling; exact infinite-shot and Clifford estimates are
            deterministic and take no seed.
        readout_mitigation: (``"shots"`` only) tensored confusion-matrix
            inversion before expectation reconstruction.
        clifford_model: (``"clifford"`` only) override the Pauli-channel
            projection used.

    Arguments that do not apply to the selected mode raise ``ValueError``
    rather than being silently ignored.
    """
    def reject(**irrelevant) -> None:
        passed = [name for name, value in irrelevant.items()
                  if value not in (None, False)]
        if passed:
            raise ValueError(f"arguments {passed} do not apply to "
                             f"mode={mode!r}")

    if observable is None:
        observable = problem.mapped_hamiltonian()
    if mode == "exact":
        reject(readout_mitigation=readout_mitigation,
               clifford_model=clifford_model)
        return ExactEstimator(problem, observable, noise_model=noise_model,
                              shots=shots, seed=seed)
    if mode == "shots":
        reject(clifford_model=clifford_model)
        return ShotSamplingEstimator(
            problem, observable, noise_model=noise_model,
            shots=4096 if shots is None else shots,
            seed=seed, readout_mitigation=readout_mitigation)
    if mode == "clifford":
        reject(shots=shots, seed=seed, readout_mitigation=readout_mitigation)
        return CliffordEstimator(problem, observable, noise_model=noise_model,
                                 clifford_model=clifford_model)
    raise ValueError(f"unknown estimator mode {mode!r}; expected one of {_MODES}")
