"""Shared loss memoisation that works under every executor.

Converging GA populations re-propose identical genomes constantly, so every
evaluation surface wants a ``genome -> loss`` memo table.  The table here is
a plain ``bytes -> float`` dict, wrapped so that the Figure-4 engine can
ship snapshots to worker threads/processes and merge the new entries back
after each round -- the serial, threaded, and multi-process paths (and the
:class:`~repro.optim.genetic.GeneticAlgorithm`, which routes all its
memoisation through this wrapper) share one cache discipline.

:meth:`MemoizedLoss.evaluate_many` is the batch face of the same table:
dedupe a whole population within the batch and against the cache, then
dispatch only the distinct misses -- through the loss's own population-
batched ``evaluate_many`` when it provides one.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs import REGISTRY

_CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total", "MemoizedLoss lookups served from the table")
_CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total", "MemoizedLoss lookups dispatched to the loss")
_CACHE_DEDUP = REGISTRY.counter(
    "repro_cache_dedup_total",
    "Within-batch duplicate genomes collapsed by evaluate_many")


def genome_key(genome) -> bytes:
    """Canonical dict key of an integer genome (shared with the GA)."""
    return np.ascontiguousarray(genome, dtype=np.int64).tobytes()


class MemoizedLoss:
    """Picklable memoising wrapper around a loss function.

    The wrapper is callable in place of the loss and exposes the underlying
    table for sharing: pass :attr:`cache` to a
    :class:`~repro.optim.genetic.GeneticAlgorithm`, ship :meth:`snapshot`
    copies to workers, and fold their discoveries back with :meth:`merge`.

    Args:
        loss_fn: Maps a genome (1-D int array) to a float loss.
        cache: Optional existing table to adopt (not copied).
    """

    def __init__(self, loss_fn: Callable[[np.ndarray], float],
                 cache: dict[bytes, float] | None = None):
        self.loss_fn = loss_fn
        self.cache: dict[bytes, float] = {} if cache is None else cache
        self.hits = 0
        self.misses = 0
        self.dedups = 0

    def __call__(self, genome) -> float:
        key = genome_key(genome)
        hit = self.cache.get(key)
        if hit is not None:
            self.hits += 1
            _CACHE_HITS.inc()
            return hit
        value = float(self.loss_fn(genome))
        self.cache[key] = value
        self.misses += 1
        _CACHE_MISSES.inc()
        return value

    def evaluate_many(self, genomes) -> np.ndarray:
        """``(P,)`` losses of a genome batch, deduped before dispatch.

        Within-batch duplicates and cache hits are resolved first; only the
        distinct misses reach the wrapped loss -- through its own batched
        ``evaluate_many`` when it has one, else one call per miss in
        first-occurrence order.  Values and hit/miss accounting are
        identical to calling the wrapper genome by genome (a within-batch
        duplicate is one miss plus hits, exactly as the serial order would
        produce), so the GA's generation loop can switch to batches without
        moving any number.
        """
        genomes = np.asarray(genomes)
        out = np.empty(len(genomes))
        miss_keys: list[bytes] = []           # first-occurrence order
        miss_rows: dict[bytes, list[int]] = {}
        for i, genome in enumerate(genomes):
            key = genome_key(genome)
            hit = self.cache.get(key)
            if hit is not None:
                out[i] = hit
                self.hits += 1
                _CACHE_HITS.inc()
            elif key in miss_rows:
                miss_rows[key].append(i)
                self.hits += 1
                self.dedups += 1
                _CACHE_DEDUP.inc()
            else:
                miss_rows[key] = [i]
                miss_keys.append(key)
        if miss_keys:
            reps = np.stack([genomes[miss_rows[k][0]] for k in miss_keys])
            batch_fn = getattr(self.loss_fn, "evaluate_many", None)
            if batch_fn is not None:
                values = np.asarray(batch_fn(reps), dtype=float)
                if values.shape != (len(miss_keys),):
                    raise ValueError(
                        f"loss evaluate_many returned shape {values.shape} "
                        f"for {len(miss_keys)} genomes")
            else:
                values = np.array([float(self.loss_fn(g)) for g in reps])
            for key, value in zip(miss_keys, values):
                self.cache[key] = float(value)
                self.misses += 1
                out[miss_rows[key]] = value
            _CACHE_MISSES.inc(len(miss_keys))
        return out

    def stats(self) -> dict[str, int]:
        """This wrapper's own hit/miss/dedup accounting, for surfacing
        into :class:`~repro.search.base.SearchResult` and campaign
        records (``dedups`` is the within-batch-duplicate subset of
        ``hits``)."""
        return {"hits": self.hits, "misses": self.misses,
                "dedups": self.dedups, "entries": len(self.cache)}

    def __len__(self) -> int:
        return len(self.cache)

    def snapshot(self) -> dict[bytes, float]:
        """Copy of the table, safe to ship to a worker."""
        return dict(self.cache)

    def merge(self, entries: dict[bytes, float]) -> None:
        """Fold entries discovered elsewhere (a worker) into the table."""
        self.cache.update(entries)

    def __getstate__(self):
        # hit/miss counters are per-process diagnostics; reset on the wire.
        return {"loss_fn": self.loss_fn, "cache": self.cache}

    def __setstate__(self, state):
        self.loss_fn = state["loss_fn"]
        self.cache = state["cache"]
        self.hits = 0
        self.misses = 0
        self.dedups = 0


def memoize_loss(loss_fn: Callable[[np.ndarray], float],
                 cache: dict[bytes, float] | None = None) -> MemoizedLoss:
    """Wrap ``loss_fn`` with the shared genome-keyed memo table."""
    return MemoizedLoss(loss_fn, cache)
