"""Shared loss memoisation that works under every executor.

Converging GA populations re-propose identical genomes constantly, so every
evaluation surface wants a ``genome -> loss`` memo table.  The table here is
a plain ``bytes -> float`` dict (the same representation
:class:`~repro.optim.genetic.GeneticAlgorithm` uses internally), wrapped so
that the Figure-4 engine can ship snapshots to worker threads/processes and
merge the new entries back after each round -- the serial, threaded, and
multi-process paths all share one cache discipline.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def genome_key(genome) -> bytes:
    """Canonical dict key of an integer genome (shared with the GA)."""
    return np.ascontiguousarray(genome, dtype=np.int64).tobytes()


class MemoizedLoss:
    """Picklable memoising wrapper around a loss function.

    The wrapper is callable in place of the loss and exposes the underlying
    table for sharing: pass :attr:`cache` to a
    :class:`~repro.optim.genetic.GeneticAlgorithm`, ship :meth:`snapshot`
    copies to workers, and fold their discoveries back with :meth:`merge`.

    Args:
        loss_fn: Maps a genome (1-D int array) to a float loss.
        cache: Optional existing table to adopt (not copied).
    """

    def __init__(self, loss_fn: Callable[[np.ndarray], float],
                 cache: dict[bytes, float] | None = None):
        self.loss_fn = loss_fn
        self.cache: dict[bytes, float] = {} if cache is None else cache
        self.hits = 0
        self.misses = 0

    def __call__(self, genome) -> float:
        key = genome_key(genome)
        hit = self.cache.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        value = float(self.loss_fn(genome))
        self.cache[key] = value
        self.misses += 1
        return value

    def __len__(self) -> int:
        return len(self.cache)

    def snapshot(self) -> dict[bytes, float]:
        """Copy of the table, safe to ship to a worker."""
        return dict(self.cache)

    def merge(self, entries: dict[bytes, float]) -> None:
        """Fold entries discovered elsewhere (a worker) into the table."""
        self.cache.update(entries)

    def __getstate__(self):
        # hit/miss counters are per-process diagnostics; reset on the wire.
        return {"loss_fn": self.loss_fn, "cache": self.cache}

    def __setstate__(self, state):
        self.loss_fn = state["loss_fn"]
        self.cache = state["cache"]
        self.hits = 0
        self.misses = 0


def memoize_loss(loss_fn: Callable[[np.ndarray], float],
                 cache: dict[bytes, float] | None = None) -> MemoizedLoss:
    """Wrap ``loss_fn`` with the shared genome-keyed memo table."""
    return MemoizedLoss(loss_fn, cache)
