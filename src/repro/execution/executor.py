"""Pluggable execution backends: one ``map`` seam for every parallel axis.

The Figure-4 engine (and any future fan-out: batched estimation shards,
parameter sweeps, population evaluation) dispatches work through an
:class:`Executor` instead of hard-coding a process pool.  Three backends
ship here:

* :class:`SerialExecutor` -- in-process, submission order, shares caller
  memory.  The engine keeps its legacy single-rng schedule under it, so
  serial results are bit-identical to the pre-executor code.
* :class:`ThreadExecutor` -- a thread pool; useful when the loss releases
  the GIL or is I/O bound.
* :class:`ProcessExecutor` -- a process pool; requires picklable work items
  (the package's loss objects are).

All backends preserve item order in ``map`` and are context managers.
Deterministic parallelism comes from :func:`spawn_seeds`: per-item
``SeedSequence`` streams derived from one root seed, so runs with the same
seed agree across backends and worker counts.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, Sequence, TypeVar, runtime_checkable

import numpy as np

T = TypeVar("T")
R = TypeVar("R")


def spawn_seeds(seed_sequence: np.random.SeedSequence,
                count: int) -> list[np.random.SeedSequence]:
    """``count`` fresh child seed streams (stateful: successive calls differ)."""
    return seed_sequence.spawn(count)


@runtime_checkable
class Executor(Protocol):
    """Uniform fan-out interface consumed by the engine and estimators."""

    #: True when ``map`` runs items one-by-one in the caller's
    #: thread/process -- callers may then thread shared mutable state
    #: (a single rng, a live cache) through the work items.
    in_process_sequential: bool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in item order."""
        ...

    def close(self) -> None:
        """Release pool resources (idempotent)."""
        ...


class SerialExecutor:
    """Run every item inline, in submission order."""

    in_process_sequential = True
    #: Workers share the caller's process (tracer, metric registry,
    #: memo counters).  Not part of the Executor protocol; consumers use
    #: ``getattr(executor, "in_process", True)``.
    in_process = True

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "SerialExecutor()"


class _PoolExecutor:
    """Shared lazy-pool plumbing for the thread and process backends."""

    in_process_sequential = False

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self._pool = None

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Fan items out over a lazily created thread pool."""

    in_process = True

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessExecutor(_PoolExecutor):
    """Fan items out over a lazily created process pool.

    Work items and results must be picklable; every loss object and job
    tuple the engine produces is.
    """

    in_process = False

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.max_workers)


def resolve_executor(executor: "Executor | None",
                     num_processes: int = 1) -> tuple["Executor", bool]:
    """The engine's executor-selection rule.

    Returns ``(executor, owned)``: ``owned`` is True when this call created
    the executor (the caller must close it).  ``num_processes`` is the
    deprecated integer knob kept for backward compatibility.
    """
    if executor is not None:
        return executor, False
    if num_processes > 1:
        return ProcessExecutor(num_processes), True
    return SerialExecutor(), True
