"""The paper's two ansatz families (Section 4).

* :func:`hardware_efficient_ansatz` -- the circular hardware-efficient VQE
  ansatz ``A(theta)`` with ``d = 4N`` rotation parameters: a layer of
  ``RY, RZ`` per qubit, a circular CX ring, and a second ``RY, RZ`` layer.
  At ``theta = 0`` every rotation is the identity and only the CX skeleton
  remains, with ``A(0)|0> = |0>``.

* :func:`clapton_transformation_circuit` -- the Clifford transformation
  ansatz ``C(gamma)`` with ``dim Gamma = 5N``: the same rotation layers but
  restricted to Clifford angles ``gamma_j * pi/2``, and the CX ring replaced
  by parameterized two-qubit slots (Eq. 8)

      gamma_j = 0: II      gamma_j = 1: CX k->l
      gamma_j = 2: CX l->k gamma_j = 3: SWAP

  so every ``gamma`` in ``{0,1,2,3}^{5N}`` decodes to a Clifford circuit.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .circuit import Circuit, Parameter


def entanglement_pairs(num_qubits: int, kind: str = "circular"
                       ) -> list[tuple[int, int]]:
    """Qubit pairs of one entangling layer.

    ``"circular"`` is the paper's choice: a nearest-neighbour chain plus the
    wrap-around pair (omitted for 2 qubits, where it would be a duplicate).
    """
    if num_qubits < 2:
        return []
    chain = [(i, i + 1) for i in range(num_qubits - 1)]
    if kind == "linear":
        return chain
    if kind == "circular":
        if num_qubits == 2:
            return chain
        return chain + [(num_qubits - 1, 0)]
    raise ValueError(f"unknown entanglement kind {kind!r}")


def hardware_efficient_ansatz(num_qubits: int, entanglement: str = "circular"
                              ) -> Circuit:
    """The VQE ansatz ``A(theta)`` with ``4N`` symbolic parameters.

    Parameter layout: indices ``2q`` / ``2q+1`` are the first-layer RY / RZ
    on qubit ``q``; indices ``2N + 2q`` / ``2N + 2q + 1`` the second layer.
    """
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.ry(Parameter(2 * q), q)
        circ.rz(Parameter(2 * q + 1), q)
    for control, target in entanglement_pairs(num_qubits, entanglement):
        circ.cx(control, target)
    offset = 2 * num_qubits
    for q in range(num_qubits):
        circ.ry(Parameter(offset + 2 * q), q)
        circ.rz(Parameter(offset + 2 * q + 1), q)
    return circ


def layered_hardware_efficient_ansatz(num_qubits: int, reps: int,
                                      entanglement: str = "circular"
                                      ) -> Circuit:
    """Deeper hardware-efficient ansatz: ``reps`` entangling layers.

    Generalizes :func:`hardware_efficient_ansatz` (which is ``reps = 1``,
    the paper's d = 4N configuration) to ``d = 2N (reps + 1)`` parameters:
    rotation layers interleaved with ``reps`` CX rings.  Useful for studying
    how Clapton's advantage scales with circuit depth -- deeper skeletons
    mean more noise locations for L_N to account for.
    """
    if reps < 0:
        raise ValueError("reps must be >= 0")
    circ = Circuit(num_qubits)
    index = 0
    for layer in range(reps + 1):
        for q in range(num_qubits):
            circ.ry(Parameter(index), q)
            circ.rz(Parameter(index + 1), q)
            index += 2
        if layer < reps:
            for control, target in entanglement_pairs(num_qubits, entanglement):
                circ.cx(control, target)
    return circ


def ansatz_skeleton(num_qubits: int, entanglement: str = "circular") -> Circuit:
    """``A(0)``: only the CX skeleton remains (Sec. 4.2.1).

    Zero-angle rotations compile to nothing on hardware (RZ is virtual and
    RY(0) is removed by the basis optimizer), so they contribute no noise
    locations; we therefore drop them rather than emit identity gates.
    """
    ansatz = hardware_efficient_ansatz(num_qubits, entanglement)
    return drop_identity_rotations(ansatz.bind(np.zeros(ansatz.num_parameters)))


def drop_identity_rotations(circuit: Circuit, tol: float = 1e-12) -> Circuit:
    """Remove bound rotations with angle 0 (mod 2*pi) and explicit ``i`` gates."""
    out = Circuit(circuit.num_qubits)
    for inst in circuit.instructions:
        if inst.name == "i":
            continue
        if inst.name in ("rx", "ry", "rz") and inst.is_bound:
            if is_identity_angle(float(inst.params[0]), tol):
                continue
        out.instructions.append(inst)
    return out


def is_identity_angle(angle: float, tol: float = 1e-12) -> bool:
    """Whether a rotation angle is an exact identity (0 mod 2*pi).

    The single definition of the drop rule shared by
    :func:`drop_identity_rotations` and the batched binding/schedule plans.
    """
    folded = angle % (2 * math.pi)
    return min(folded, 2 * math.pi - folded) < tol


def bound_skeleton_steps(template: Circuit, tol: float = 1e-12
                         ) -> list[tuple]:
    """``(instruction, parameter index | None)`` steps of a bound template.

    The instruction skeleton that binding + :func:`drop_identity_rotations`
    would leave, resolved once per template: explicit ``i`` gates and
    zero-angle *bound* rotations are dropped here, parameterized rotations
    keep their first parameter index for per-point decisions.  Shared by
    the batched binding plan (:mod:`repro.execution.estimator`) and the
    population Clifford schedule plan
    (:class:`repro.noise.clifford_model.CliffordCircuitPlan`) so the
    identity-drop semantics cannot drift between the serial and batched
    paths.
    """
    steps: list[tuple] = []
    for inst in template.instructions:
        if inst.name == "i":
            continue
        indices = [p.index for p in inst.params if isinstance(p, Parameter)]
        if indices:
            steps.append((inst, indices[0]))
            continue
        if inst.name in ("rx", "ry", "rz") \
                and is_identity_angle(float(inst.params[0]), tol):
            continue
        steps.append((inst, None))
    return steps


def num_transformation_parameters(num_qubits: int,
                                  entanglement: str = "circular") -> int:
    """Dimension of Clapton's search space Gamma (``5N`` for circular)."""
    return 4 * num_qubits + len(entanglement_pairs(num_qubits, entanglement))


def transformation_slots(num_qubits: int, entanglement: str = "circular"
                         ) -> list[tuple[str, tuple[int, ...], int]]:
    """Forward slot layout of ``C(gamma)``: ``(kind, qubits, gene)`` triples.

    The single definition of the genome decode shared by the serial
    :func:`clapton_transformation_circuit` and the population-batched
    :func:`~repro.core.transformation.transform_table_many`: the first
    ``2N`` genes choose first-layer ``ry``/``rz`` rotation levels, the next
    ``len(pairs)`` genes the two-qubit slot contents (Eq. 8), and the final
    ``2N`` genes the second rotation layer.
    """
    pairs = entanglement_pairs(num_qubits, entanglement)
    slots: list[tuple[str, tuple[int, ...], int]] = []
    for q in range(num_qubits):
        slots.append(("ry", (q,), 2 * q))
        slots.append(("rz", (q,), 2 * q + 1))
    offset = 2 * num_qubits
    for j, pair in enumerate(pairs):
        slots.append(("pair", pair, offset + j))
    offset = 2 * num_qubits + len(pairs)
    for q in range(num_qubits):
        slots.append(("ry", (q,), offset + 2 * q))
        slots.append(("rz", (q,), offset + 2 * q + 1))
    return slots


def clapton_transformation_circuit(gamma: Sequence[int], num_qubits: int,
                                   entanglement: str = "circular") -> Circuit:
    """Decode a genome ``gamma in {0,1,2,3}^{5N}`` into the Clifford ``C(gamma)``.

    Genome layout mirrors :func:`hardware_efficient_ansatz`; see
    :func:`transformation_slots` for the shared slot/gene map.
    """
    gamma = np.asarray(gamma, dtype=int)
    slots = transformation_slots(num_qubits, entanglement)
    if gamma.shape != (len(slots),):
        raise ValueError(f"gamma must have length {len(slots)}, got {gamma.shape}")
    if np.any((gamma < 0) | (gamma > 3)):
        raise ValueError("gamma entries must be in {0, 1, 2, 3}")

    circ = Circuit(num_qubits)
    for kind, qubits, gene in slots:
        level = gamma[gene]
        if kind != "pair":
            _append_clifford_rotation(circ, kind, level, qubits[0])
        elif level == 1:
            circ.cx(*qubits)
        elif level == 2:
            circ.cx(qubits[1], qubits[0])
        elif level == 3:
            circ.swap(*qubits)
        # pair level == 0: identity, emit nothing
    return circ


def cafqa_angles(genome: Sequence[int]) -> np.ndarray:
    """Map a CAFQA genome in ``{0,1,2,3}^d`` to angles ``k * pi/2``."""
    genome = np.asarray(genome, dtype=int)
    if np.any((genome < 0) | (genome > 3)):
        raise ValueError("genome entries must be in {0, 1, 2, 3}")
    return genome * (math.pi / 2)


def _append_clifford_rotation(circ: Circuit, kind: str, level: int, qubit: int
                              ) -> None:
    """Append RY/RZ at angle ``level * pi/2``, skipping exact identities."""
    if level == 0:
        return
    angle = level * (math.pi / 2)
    getattr(circ, kind)(angle, qubit)
