"""Gate library: names, unitaries, and Clifford metadata.

Only the gates the Clapton stack needs are defined: the Pauli gates, the
single-qubit Cliffords used to build tableaus, parameterized rotations
``RX/RY/RZ`` (Clifford at multiples of pi/2 -- the discrete angles CAFQA and
Clapton search over), and the two-qubit gates ``CX``, ``CZ``, ``SWAP``.

Every gate carries a dense unitary so that simulators and tests never need a
second source of truth: Clifford tableaus are *derived* from these matrices
(:func:`repro.stabilizer.tableau.tableau_from_unitary`) rather than written
down by hand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

_SQ2 = 1.0 / math.sqrt(2.0)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array([[np.exp(-0.5j * theta), 0], [0, np.exp(0.5j * theta)]],
                    dtype=complex)


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: Canonical lower-case name, e.g. ``"cx"``.
        num_qubits: Arity (1 or 2).
        num_params: Number of rotation parameters (0 or 1).
        unitary: Function mapping the parameter tuple to a dense unitary.
            Two-qubit unitaries use the convention that the *first* qubit of
            the instruction is the most significant index (row-major kron
            order ``U = kron(first, second)`` for separable gates).
        always_clifford: True when the gate is Clifford for every parameter
            value (all non-parameterized gates here).
    """

    name: str
    num_qubits: int
    num_params: int
    unitary: Callable[[tuple], np.ndarray]
    always_clifford: bool

    def matrix(self, params: tuple = ()) -> np.ndarray:
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name} takes {self.num_params} parameter(s), "
                f"got {len(params)}")
        return self.unitary(params)

    def is_clifford(self, params: tuple = ()) -> bool:
        """Clifford for these parameters (rotations: multiples of pi/2)."""
        if self.always_clifford:
            return True
        return all(_is_multiple_of_half_pi(p) for p in params)


def _is_multiple_of_half_pi(angle: float, tol: float = 1e-9) -> bool:
    ratio = angle / (math.pi / 2)
    return abs(ratio - round(ratio)) < tol


_STATIC = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": _SQ2 * np.array([[1, 1], [1, -1]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "sxdg": 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex),
    # Two-qubit gates; first instruction qubit = most significant bit.
    "cx": np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
                   dtype=complex),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
                     dtype=complex),
}

_PARAMETRIC = {"rx": _rx, "ry": _ry, "rz": _rz}


def _build_registry() -> dict[str, GateSpec]:
    registry = {}
    for name, mat in _STATIC.items():
        nq = 1 if mat.shape == (2, 2) else 2
        registry[name] = GateSpec(
            name=name, num_qubits=nq, num_params=0,
            unitary=(lambda m: (lambda params: m))(mat), always_clifford=True)
    for name, fn in _PARAMETRIC.items():
        registry[name] = GateSpec(
            name=name, num_qubits=1, num_params=1,
            unitary=(lambda f: (lambda params: f(params[0])))(fn),
            always_clifford=False)
    return registry


GATES: dict[str, GateSpec] = _build_registry()

#: The names CAFQA's discrete search assigns to rotation angles k*pi/2.
CLIFFORD_ANGLES = (0.0, math.pi / 2, math.pi, 3 * math.pi / 2)


def get_gate(name: str) -> GateSpec:
    try:
        return GATES[name]
    except KeyError:
        raise ValueError(f"unknown gate {name!r}") from None
