"""Circuit IR, gate library, and the paper's ansatz families."""

from .gates import CLIFFORD_ANGLES, GATES, GateSpec, get_gate
from .circuit import Circuit, Instruction, Parameter, embed_unitary
from .ansatz import (
    drop_identity_rotations,
    ansatz_skeleton,
    cafqa_angles,
    clapton_transformation_circuit,
    entanglement_pairs,
    hardware_efficient_ansatz,
    layered_hardware_efficient_ansatz,
    num_transformation_parameters,
)

__all__ = [
    "CLIFFORD_ANGLES", "GATES", "GateSpec", "get_gate",
    "Circuit", "Instruction", "Parameter", "embed_unitary",
    "ansatz_skeleton", "cafqa_angles", "drop_identity_rotations", "clapton_transformation_circuit",
    "entanglement_pairs", "hardware_efficient_ansatz",
    "layered_hardware_efficient_ansatz",
    "num_transformation_parameters",
]
