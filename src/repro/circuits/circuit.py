"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of gate instructions on a fixed qubit
register.  Parameters may be concrete floats or :class:`Parameter`
placeholders (an index into a parameter vector), so the same object serves as
the VQE ansatz template ``A(theta)`` and its bound instances.

Bit/qubit-order convention used across the whole package: qubit 0 is the
*most significant* bit of a computational-basis index (so labels like
``"XIZ"`` read left to right as qubits 0, 1, 2, and ``kron`` composition
follows qubit order).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from .gates import GateSpec, get_gate


@dataclass(frozen=True)
class Parameter:
    """Symbolic placeholder: index ``index`` of the ansatz parameter vector."""

    index: int


@dataclass(frozen=True)
class Instruction:
    """One gate application.

    Attributes:
        name: Gate name (key into :data:`repro.circuits.gates.GATES`).
        qubits: Target qubit indices, control first for controlled gates.
        params: Rotation parameters; floats or :class:`Parameter` objects.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple = ()

    @property
    def spec(self) -> GateSpec:
        return get_gate(self.name)

    @property
    def is_bound(self) -> bool:
        return not any(isinstance(p, Parameter) for p in self.params)

    def matrix(self) -> np.ndarray:
        if not self.is_bound:
            raise ValueError(f"instruction {self} has unbound parameters")
        return self.spec.matrix(tuple(float(p) for p in self.params))


_INVERSE_NAME = {"s": "sdg", "sdg": "s", "sx": "sxdg", "sxdg": "sx"}


class Circuit:
    """An ordered sequence of instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = int(num_qubits)
        self.instructions: list[Instruction] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, name: str, qubits: Sequence[int], params: Sequence = ()) -> "Circuit":
        spec = get_gate(name)
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != spec.num_qubits:
            raise ValueError(f"gate {name} acts on {spec.num_qubits} qubit(s)")
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubit in instruction")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range for {self.num_qubits}-qubit circuit")
        params = tuple(params)
        if len(params) != spec.num_params:
            raise ValueError(f"gate {name} takes {spec.num_params} parameter(s)")
        self.instructions.append(Instruction(name, qubits, params))
        return self

    # Convenience wrappers keep call sites close to familiar Qiskit style.
    def i(self, q):
        return self.append("i", [q])

    def x(self, q):
        return self.append("x", [q])

    def y(self, q):
        return self.append("y", [q])

    def z(self, q):
        return self.append("z", [q])

    def h(self, q):
        return self.append("h", [q])

    def s(self, q):
        return self.append("s", [q])

    def sdg(self, q):
        return self.append("sdg", [q])

    def sx(self, q):
        return self.append("sx", [q])

    def sxdg(self, q):
        return self.append("sxdg", [q])

    def rx(self, theta, q):
        return self.append("rx", [q], [theta])

    def ry(self, theta, q):
        return self.append("ry", [q], [theta])

    def rz(self, theta, q):
        return self.append("rz", [q], [theta])

    def cx(self, control, target):
        return self.append("cx", [control, target])

    def cz(self, a, b):
        return self.append("cz", [a, b])

    def swap(self, a, b):
        return self.append("swap", [a, b])

    def compose(self, other: "Circuit") -> "Circuit":
        """New circuit running ``self`` then ``other`` (same register size)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("register size mismatch")
        out = self.copy()
        out.instructions.extend(other.instructions)
        return out

    def copy(self) -> "Circuit":
        out = Circuit(self.num_qubits)
        out.instructions = list(self.instructions)
        return out

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        indices = {p.index for inst in self.instructions
                   for p in inst.params if isinstance(p, Parameter)}
        return (max(indices) + 1) if indices else 0

    @property
    def is_bound(self) -> bool:
        return all(inst.is_bound for inst in self.instructions)

    def bind(self, values: Sequence[float]) -> "Circuit":
        """Substitute every :class:`Parameter` with ``values[p.index]``."""
        values = np.asarray(values, dtype=float)
        if len(values) < self.num_parameters:
            raise ValueError(
                f"need {self.num_parameters} parameter values, got {len(values)}")
        out = Circuit(self.num_qubits)
        for inst in self.instructions:
            params = tuple(float(values[p.index]) if isinstance(p, Parameter) else p
                           for p in inst.params)
            out.instructions.append(replace(inst, params=params))
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for inst in self.instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def num_two_qubit_gates(self) -> int:
        return sum(1 for inst in self.instructions if len(inst.qubits) == 2)

    def depth(self) -> int:
        """Circuit depth counting each instruction as one time step."""
        frontier = [0] * self.num_qubits
        for inst in self.instructions:
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def is_clifford(self) -> bool:
        """True when every (bound) instruction is a Clifford operation."""
        for inst in self.instructions:
            if not inst.is_bound:
                return False
            if not inst.spec.is_clifford(tuple(float(p) for p in inst.params)):
                return False
        return True

    def inverse(self) -> "Circuit":
        """The exact inverse circuit (reversed order, inverted gates)."""
        out = Circuit(self.num_qubits)
        for inst in reversed(self.instructions):
            if inst.spec.num_params:
                params = tuple(-p if not isinstance(p, Parameter) else p
                               for p in inst.params)
                if any(isinstance(p, Parameter) for p in params):
                    raise ValueError("cannot invert an unbound circuit")
                out.instructions.append(replace(inst, params=params))
            else:
                name = _INVERSE_NAME.get(inst.name, inst.name)
                out.instructions.append(replace(inst, name=name))
        return out

    # ------------------------------------------------------------------
    # Dense semantics (tests and small-n evaluation)
    # ------------------------------------------------------------------
    def unitary(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` unitary of the whole circuit (small n only)."""
        dim = 2 ** self.num_qubits
        out = np.eye(dim, dtype=complex)
        for inst in self.instructions:
            out = embed_unitary(inst.matrix(), inst.qubits, self.num_qubits) @ out
        return out

    def __repr__(self) -> str:
        return (f"Circuit(num_qubits={self.num_qubits}, "
                f"instructions={len(self.instructions)})")


def embed_unitary(gate: np.ndarray, qubits: Sequence[int], num_qubits: int
                  ) -> np.ndarray:
    """Embed a k-qubit gate matrix on ``qubits`` into an n-qubit unitary.

    Follows the package convention that qubit 0 is the most significant bit.
    """
    k = len(qubits)
    if gate.shape != (2 ** k, 2 ** k):
        raise ValueError("gate matrix shape does not match qubit count")
    rest = [q for q in range(num_qubits) if q not in qubits]
    order = list(qubits) + rest
    full = np.kron(gate, np.eye(2 ** (num_qubits - k), dtype=complex))
    # ``full`` acts with qubit ordering ``order``; permute tensor axes back to
    # the standard ordering 0..n-1 on both row and column indices.
    tensor = full.reshape((2,) * (2 * num_qubits))
    inverse = np.argsort(order)
    axes = list(inverse) + [num_qubits + a for a in inverse]
    return tensor.transpose(axes).reshape(2 ** num_qubits, 2 ** num_qubits)
