"""The open strategy registry: ``@register_strategy`` + name lookup.

Every consumer of the search axis -- ``InitializationMethod.run``,
``Experiment.run``, campaign specs, the CLI -- resolves strategy names
through this module, so a strategy registered from user code (no core
edits) runs everywhere a built-in does::

    from repro.search import SearchStrategy, register_strategy

    @register_strategy
    class MyStrategy(SearchStrategy):
        name = "my_strategy"
        description = "one line for `repro strategies`"
        ...

Lookups of unknown names fail with a did-you-mean suggestion naming the
registered strategies (mirroring ``repro.methods``).
"""

from __future__ import annotations

from ..naming import did_you_mean
from .base import SearchStrategy

#: The strategy every surface defaults to: the paper's Figure-4 engine.
DEFAULT_STRATEGY = "multi_ga"

_REGISTRY: dict[str, SearchStrategy] = {}


def register_strategy(strategy=None, *, replace: bool = False):
    """Register a :class:`SearchStrategy` class or instance.

    Usable as a bare decorator (``@register_strategy``), a parameterized
    one (``@register_strategy(replace=True)``), or a plain call
    (``register_strategy(instance)``).  Classes are instantiated with no
    arguments; pre-built instances register as-is (use this for
    parameterized variants).  Returns the decorated object unchanged.
    """
    def _register(obj):
        instance = obj() if isinstance(obj, type) else obj
        if not isinstance(instance, SearchStrategy):
            raise TypeError(
                f"register_strategy needs a SearchStrategy subclass or "
                f"instance, got {obj!r}")
        name = instance.name
        if not name:
            raise ValueError(
                f"{type(instance).__name__} has no `name`; set the class "
                f"attribute before registering")
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"strategy {name!r} is already registered "
                f"({_REGISTRY[name]!r}); pass replace=True to override")
        _REGISTRY[name] = instance
        return obj

    if strategy is None:
        return _register
    return _register(strategy)


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (primarily for test cleanup)."""
    _REGISTRY.pop(name, None)


def strategy_names() -> tuple[str, ...]:
    """Registered names, in registration order (built-ins first)."""
    return tuple(_REGISTRY)


def available_strategies() -> dict[str, SearchStrategy]:
    """Name -> instance snapshot of the registry."""
    return dict(_REGISTRY)


def get_strategy(name: str) -> SearchStrategy:
    """Look up a registered strategy; ``KeyError`` with a did-you-mean
    hint."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}{did_you_mean(name, _REGISTRY)}; "
            f"registered "
            f"strategies: {list(_REGISTRY)}") from None


def resolve_strategy(strategy=None) -> SearchStrategy:
    """Normalize a strategy selection into a registry instance.

    Accepts ``None`` (the Figure-4 default ``multi_ga``), a registered
    name, or a :class:`SearchStrategy` instance.
    """
    if strategy is None:
        strategy = DEFAULT_STRATEGY
    if isinstance(strategy, SearchStrategy):
        return strategy
    if isinstance(strategy, str):
        return get_strategy(strategy)
    raise TypeError(
        f"strategy must be a registered name or a SearchStrategy "
        f"instance, got {strategy!r}")
