"""The pluggable discrete-search protocol: budget, trace, result, strategy.

The Figure-4 multi-GA engine is one point on a *search* axis, the same way
Clapton is one point on the method axis.  A :class:`SearchStrategy`
minimizes an integer-genome loss under a shared :class:`SearchBudget`
(evaluation / round / target-loss caps) and reports per-round
:class:`SearchTrace` records inside a :class:`SearchResult`, so campaigns
can ask "is the GA actually the right searcher for Clifford loss
landscapes?" with every other axis held fixed.

Budget enforcement is shared, not per-strategy: :class:`BudgetedLoss`
wraps the raw loss, counts every *distinct* evaluation (strategies route
all evaluation through :class:`~repro.execution.cache.MemoizedLoss`, so
cache hits are free, exactly like the engine's accounting), tracks the
incumbent best genome, and raises :class:`BudgetExhausted` /
:class:`TargetReached` the moment a cap binds -- trimming the final batch
so ``max_evaluations`` is respected *exactly*, never approximately.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..optim.engine import EngineConfig, EngineResult, RoundRecord


class BudgetExhausted(Exception):
    """Raised by :class:`BudgetedLoss` when ``max_evaluations`` binds."""


class TargetReached(Exception):
    """Raised by :class:`BudgetedLoss` when ``target_loss`` is hit."""


@dataclass(frozen=True)
class SearchBudget:
    """Stopping rules shared by every strategy.

    Attributes:
        max_evaluations: Hard cap on *distinct* loss evaluations (cache
            hits are free).  Enforced exactly: the final batch is trimmed.
        max_rounds: Cap on strategy rounds (GA engine rounds, annealing
            temperature steps, tabu moves, climb restarts).
        target_loss: Stop as soon as any evaluation reaches this loss.
    """

    max_evaluations: int | None = None
    max_rounds: int | None = None
    target_loss: float | None = None

    def validate(self) -> None:
        for name in ("max_evaluations", "max_rounds"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"SearchBudget.{name} must be >= 1")

    @classmethod
    def from_engine(cls, config: EngineConfig) -> "SearchBudget":
        """The default budget of a strategy run under ``config``.

        ``max_evaluations`` is the Figure-4 engine's own hard ceiling at
        that working point -- ``s * |S| * (m + 1)`` evaluations per round
        for up to ``max_rounds`` rounds -- so comparisons across
        strategies share one evaluation envelope.  ``max_rounds`` is that
        same ceiling measured in *population batches* (the unit the
        non-GA strategies call a round: one engine round spans ``m + 1``
        generation batches); the GA adapter still clips it to the
        engine's own round cap.
        """
        per_round = (config.num_instances * config.population_size
                     * (config.generations_per_round + 1))
        return cls(max_evaluations=per_round * config.max_rounds,
                   max_rounds=(config.max_rounds
                               * (config.generations_per_round + 1)))


@dataclass(frozen=True)
class SearchTrace:
    """One strategy round (the search-axis analogue of ``RoundRecord``)."""

    round_index: int
    best_loss: float
    num_evaluations: int
    duration_seconds: float

    def to_dict(self) -> dict:
        return {"round_index": self.round_index,
                "best_loss": float(self.best_loss),
                "num_evaluations": int(self.num_evaluations),
                "duration_seconds": float(self.duration_seconds)}

    @classmethod
    def from_dict(cls, data: dict) -> "SearchTrace":
        return cls(round_index=int(data["round_index"]),
                   best_loss=float(data["best_loss"]),
                   num_evaluations=int(data["num_evaluations"]),
                   duration_seconds=float(data["duration_seconds"]))


@dataclass
class SearchResult:
    """Outcome of one :meth:`SearchStrategy.minimize` call.

    Attributes:
        strategy: Registered strategy name that produced this result.
        best_genome / best_loss: The incumbent.
        trace: Per-round records, in execution order.
        num_evaluations: Distinct loss evaluations paid.
        total_seconds: Wall time of the whole search.
        stopped_by: What ended the search: ``"converged"``, ``"rounds"``,
            ``"evaluations"``, or ``"target"``.
        engine: The underlying :class:`EngineResult` when the strategy is
            the multi-GA adapter (preserved so downstream consumers see
            bit-identical engine bookkeeping).
        cache_stats: Memo-table accounting of the run (``hits`` /
            ``misses`` / ``dedups`` / ``entries``), aggregated across
            process workers when the engine fans instances out.
    """

    strategy: str
    best_genome: np.ndarray
    best_loss: float
    trace: list[SearchTrace]
    num_evaluations: int
    total_seconds: float
    stopped_by: str = "converged"
    engine: EngineResult | None = field(default=None, repr=False,
                                        compare=False)
    cache_stats: dict | None = field(default=None, repr=False,
                                     compare=False)

    @property
    def num_rounds(self) -> int:
        return len(self.trace)

    def trace_dicts(self) -> list[dict]:
        return [t.to_dict() for t in self.trace]

    def as_engine_result(self) -> EngineResult:
        """Engine-shaped view for legacy consumers (``InitializationResult
        .engine``); the multi-GA adapter returns its real engine result."""
        if self.engine is not None:
            return self.engine
        rounds = [RoundRecord(best_loss=t.best_loss,
                              duration_seconds=t.duration_seconds,
                              num_evaluations=t.num_evaluations)
                  for t in self.trace]
        return EngineResult(best_genome=self.best_genome,
                            best_loss=self.best_loss, rounds=rounds,
                            num_evaluations=self.num_evaluations,
                            total_seconds=self.total_seconds)


class BudgetedLoss:
    """Budget enforcement + incumbent tracking around a raw loss.

    Strategies wrap the (possibly executor-sharded) loss in this class and
    then memoize it, so only distinct genomes consume budget.  The wrapper
    evaluates through the loss's own population-batched ``evaluate_many``
    when it has one, trims the batch that would overshoot
    ``max_evaluations`` (the allowed prefix is still evaluated and folded
    into the incumbent, so the count lands *exactly* on the cap), and
    raises :class:`BudgetExhausted` / :class:`TargetReached` as control
    flow the strategy's round loop catches.

    Accounting is guarded by a lock, so a tracker shared across thread
    workers (the budgeted multi-GA adapter under a ``ThreadExecutor``)
    stays exact -- budgeted evaluation serializes in that case; the
    built-in strategies call the tracker from the driving thread only,
    where the lock is uncontended.  Process workers each deserialize
    their own copy and check the cap independently.
    """

    def __init__(self, loss_fn: Callable[[np.ndarray], float],
                 budget: SearchBudget):
        self.loss_fn = loss_fn
        self.budget = budget
        self.evaluations = 0
        self.best_loss = float("inf")
        self.best_genome: np.ndarray | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _record(self, genomes: np.ndarray, values: np.ndarray) -> None:
        self.evaluations += len(values)
        i = int(np.argmin(values))
        if values[i] < self.best_loss:
            self.best_loss = float(values[i])
            self.best_genome = np.asarray(genomes[i]).copy()
        target = self.budget.target_loss
        if target is not None and self.best_loss <= target:
            raise TargetReached

    def _raw_many(self, genomes: np.ndarray) -> np.ndarray:
        batch_fn = getattr(self.loss_fn, "evaluate_many", None)
        if batch_fn is not None:
            return np.asarray(batch_fn(genomes), dtype=float)
        return np.array([float(self.loss_fn(g)) for g in genomes])

    # ------------------------------------------------------------------
    def __call__(self, genome) -> float:
        return float(self.evaluate_many(np.asarray(genome)[None, :])[0])

    def evaluate_many(self, genomes) -> np.ndarray:
        genomes = np.asarray(genomes)
        with self._lock:
            cap = self.budget.max_evaluations
            if cap is not None:
                allowed = cap - self.evaluations
                if allowed <= 0:
                    raise BudgetExhausted
                if len(genomes) > allowed:
                    # evaluate the prefix that fits, land exactly on the
                    # cap, and end the search; the partial round still
                    # feeds the incumbent (its values are lost only to
                    # the caller)
                    values = self._raw_many(genomes[:allowed])
                    self._record(genomes[:allowed], values)
                    raise BudgetExhausted
            values = self._raw_many(genomes)
            self._record(genomes, values)
        return values

    def __getstate__(self):
        # locks do not pickle; each process worker guards its own copy
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class SearchStrategy(abc.ABC):
    """One discrete-search algorithm, addressable by name.

    Subclasses set the class attributes ``name`` (registry key) and
    ``description`` (one line, shown by ``repro strategies``) and
    implement :meth:`minimize`.  Register with
    :func:`~repro.search.register_strategy` to make the strategy runnable
    through ``InitializationMethod.run(strategy=...)``, ``Experiment``,
    campaigns, and the CLI.
    """

    name: str = ""
    description: str = ""

    @abc.abstractmethod
    def minimize(self, loss_fn: Callable[[np.ndarray], float],
                 num_parameters: int, num_values: int = 4, *,
                 budget: SearchBudget | None = None,
                 config: EngineConfig | None = None,
                 rng: np.random.Generator | None = None,
                 executor=None) -> SearchResult:
        """Minimize ``loss_fn`` over ``{0..num_values-1}^num_parameters``.

        Args:
            loss_fn: Maps a genome (1-D int array) to a float loss; a loss
                exposing a population-batched ``evaluate_many`` is
                dispatched whole-batch (all built-in strategies propose in
                batches).
            num_parameters: Genome length.
            num_values: Genome alphabet size.
            budget: Stopping rules; defaults to
                :meth:`SearchBudget.from_engine` of ``config``.
            config: Working-point hyperparameters (population sizes,
                seeds, round caps) shared with the Figure-4 engine.
            rng: Explicit generator; defaults to
                ``np.random.default_rng(config.seed)``.  The multi-GA
                adapter owns its schedule through ``config.seed`` and
                rejects an explicit ``rng``.
            executor: Any :mod:`repro.execution` backend; batched
                evaluations are sharded across its workers (values are
                bit-identical to serial execution).
        """

    def __repr__(self) -> str:  # registry listings, error messages
        return f"<{type(self).__name__} name={self.name!r}>"
