"""Built-in search strategies: the GA adapter plus three metaheuristics.

Four points on the search axis ship in-tree:

* ``multi_ga`` -- a thin adapter over the paper's Figure-4
  :func:`~repro.optim.engine.multi_ga_minimize`.  With no budget caps it
  *is* that call (bit-identical results), so the default search path is
  unchanged by the strategy axis existing.
* ``annealing`` -- population simulated annealing: every member proposes
  one single-gene move per temperature step and the whole proposal batch
  goes through **one** ``evaluate_many`` call.
* ``tabu`` -- batched tabu search: each round evaluates a whole
  neighborhood of single-gene moves at once and forbids undoing a recent
  move via a recency-keyed tabu list (with the standard best-so-far
  aspiration override).
* ``restart_climb`` -- best-of-K random-restart hill climbing with
  batched neighborhoods, generalizing the in-tree ``random_clifford``
  method's best-of-K sampling by actually climbing from each sample.

All strategies draw hyperparameters from the shared
:class:`~repro.optim.engine.EngineConfig` working point (population size,
seed, round caps), route every evaluation through
:class:`~repro.execution.cache.MemoizedLoss` (repeated genomes are free,
exactly like the engine), and shard batches over any
:mod:`repro.execution` executor with values bit-identical to serial runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np

from ..execution.cache import memoize_loss
from ..obs import get_tracer
# _ShardedBatchLoss is the engine's executor seam for population batches;
# the strategies reuse it so parallel values stay bit-identical to serial.
from ..optim.engine import (
    EngineConfig,
    EngineResult,
    _ShardedBatchLoss,
    multi_ga_minimize,
)
from .base import (
    BudgetedLoss,
    BudgetExhausted,
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTrace,
    TargetReached,
)
from .registry import register_strategy


def _prepare(loss_fn, budget, config, rng, executor):
    """Shared setup: config/budget validation, rng, sharding, memoisation.

    Returns ``(cfg, budget, rng, tracker, memo)`` where ``memo`` is the
    strategy's evaluation entry point (dedupe -> budget -> shard -> loss)
    and ``tracker`` holds the incumbent and the exact evaluation count.
    """
    cfg = config or EngineConfig()
    cfg.validate()
    budget = budget if budget is not None else SearchBudget.from_engine(cfg)
    budget.validate()
    rng = rng if rng is not None else np.random.default_rng(cfg.seed)
    inner = loss_fn
    if executor is not None and not executor.in_process_sequential:
        num_shards = (getattr(executor, "max_workers", None)
                      or os.cpu_count() or 1)
        inner = _ShardedBatchLoss(loss_fn, executor, num_shards)
    tracker = BudgetedLoss(inner, budget)
    return cfg, budget, rng, tracker, memoize_loss(tracker)


def _rounds_cap(budget: SearchBudget, cfg: EngineConfig) -> int:
    return budget.max_rounds if budget.max_rounds is not None \
        else cfg.max_rounds


def _result(name: str, tracker: BudgetedLoss, trace: list[SearchTrace],
            start: float, stopped_by: str, memo=None) -> SearchResult:
    if tracker.best_genome is None:
        raise ValueError(
            f"strategy {name!r} performed no evaluations; the budget "
            f"must allow at least one")
    return SearchResult(
        strategy=name, best_genome=tracker.best_genome.copy(),
        best_loss=tracker.best_loss, trace=trace,
        num_evaluations=tracker.evaluations,
        total_seconds=time.perf_counter() - start, stopped_by=stopped_by,
        cache_stats=memo.stats() if memo is not None else None)


class _TraceClock:
    """Per-round trace bookkeeping (evaluation deltas + lap times)."""

    def __init__(self, tracker: BudgetedLoss):
        self.tracker = tracker
        self.trace: list[SearchTrace] = []
        self._seen = tracker.evaluations
        self._last = time.perf_counter()

    def lap(self) -> None:
        now = time.perf_counter()
        self.trace.append(SearchTrace(
            round_index=len(self.trace),
            best_loss=self.tracker.best_loss,
            num_evaluations=self.tracker.evaluations - self._seen,
            duration_seconds=now - self._last))
        self._seen = self.tracker.evaluations
        self._last = now

    def lap_if_pending(self) -> None:
        """Record the partial round a budget stop interrupted."""
        if self.tracker.evaluations > self._seen:
            self.lap()


# ----------------------------------------------------------------------
# multi_ga: the Figure-4 engine as a strategy
# ----------------------------------------------------------------------
@register_strategy
class MultiGAStrategy(SearchStrategy):
    """Adapter over the paper's Figure-4 multi-GA engine.

    With no budget (the default) this is a plain ``multi_ga_minimize``
    call -- results are bit-identical to pre-strategy code.  A budget
    wraps the loss in :class:`~repro.search.base.BudgetedLoss`: the
    engine's schedule is unchanged until a cap binds, at which point the
    search stops with the incumbent (``max_evaluations`` is honored
    exactly).  The tracker's lock keeps accounting exact under thread
    executors (budgeted evaluation serializes); a process executor on
    the ``instances`` axis checks the cap per worker.
    """

    name = "multi_ga"
    description = ("the paper's Figure-4 multi-GA engine "
                   "(default; bit-identical to multi_ga_minimize)")

    def minimize(self, loss_fn, num_parameters, num_values=4, *,
                 budget=None, config=None, rng=None, executor=None
                 ) -> SearchResult:
        if rng is not None:
            raise ValueError(
                "multi_ga owns its rng schedule through EngineConfig.seed; "
                "pass config=EngineConfig(seed=...) instead of rng=")
        cfg = config or EngineConfig()
        start = time.perf_counter()
        with get_tracer().span("search.minimize", strategy=self.name):
            if budget is None:
                engine = multi_ga_minimize(loss_fn, num_parameters,
                                           num_values=num_values,
                                           config=cfg, executor=executor)
                return self._from_engine(engine, cfg)
            budget.validate()
            if (budget.max_rounds is not None
                    and budget.max_rounds < cfg.max_rounds):
                cfg = replace(cfg, max_rounds=budget.max_rounds)
            tracker = BudgetedLoss(loss_fn, budget)
            try:
                engine = multi_ga_minimize(tracker, num_parameters,
                                           num_values=num_values,
                                           config=cfg, executor=executor)
            except (BudgetExhausted, TargetReached) as stop:
                stopped_by = ("evaluations"
                              if isinstance(stop, BudgetExhausted)
                              else "target")
                elapsed = time.perf_counter() - start
                trace = [SearchTrace(0, tracker.best_loss,
                                     tracker.evaluations, elapsed)]
                return _result(self.name, tracker, trace, start, stopped_by)
            return self._from_engine(engine, cfg)

    def _from_engine(self, engine: EngineResult,
                     cfg: EngineConfig) -> SearchResult:
        trace = [SearchTrace(i, r.best_loss, r.num_evaluations,
                             r.duration_seconds)
                 for i, r in enumerate(engine.rounds)]
        stopped_by = ("rounds" if engine.num_rounds >= cfg.max_rounds
                      else "converged")
        return SearchResult(
            strategy=self.name, best_genome=engine.best_genome,
            best_loss=engine.best_loss, trace=trace,
            num_evaluations=engine.num_evaluations,
            total_seconds=engine.total_seconds, stopped_by=stopped_by,
            engine=engine, cache_stats=engine.cache_stats)


# ----------------------------------------------------------------------
# annealing: population simulated annealing
# ----------------------------------------------------------------------
@register_strategy
class AnnealingStrategy(SearchStrategy):
    """Population simulated annealing with one batch per temperature step.

    A population of ``config.population_size`` walkers each proposes one
    single-gene move per round; the whole proposal batch is evaluated in
    one ``evaluate_many`` call and accepted per-walker by the Metropolis
    rule at the round's temperature.  The schedule is geometric, from an
    initial temperature set by the initial population's loss spread down
    to ``final_fraction`` of it over the round budget.

    Args:
        final_fraction: End temperature as a fraction of the start.
        initial_temperature: Explicit start temperature (overrides the
            spread heuristic).
    """

    name = "annealing"
    description = ("population simulated annealing; one batched "
                   "evaluate_many per temperature step")

    def __init__(self, final_fraction: float = 1e-3,
                 initial_temperature: float | None = None):
        if not 0.0 < final_fraction <= 1.0:
            raise ValueError("final_fraction must be in (0, 1]")
        self.final_fraction = final_fraction
        self.initial_temperature = initial_temperature

    def minimize(self, loss_fn, num_parameters, num_values=4, *,
                 budget=None, config=None, rng=None, executor=None
                 ) -> SearchResult:
        cfg, budget, rng, tracker, memo = _prepare(
            loss_fn, budget, config, rng, executor)
        num_rounds = _rounds_cap(budget, cfg)
        size = cfg.population_size
        tracer = get_tracer()
        start = time.perf_counter()
        clock = _TraceClock(tracker)
        stopped_by = "rounds"
        with tracer.span("search.minimize", strategy=self.name):
            try:
                population = rng.integers(0, num_values,
                                          size=(size, num_parameters))
                losses = memo.evaluate_many(population)
                t0 = self.initial_temperature
                if t0 is None:
                    spread = float(losses.max() - losses.min())
                    t0 = spread if spread > 0 else 1.0
                alpha = (self.final_fraction
                         ** (1.0 / max(1, num_rounds - 1))
                         if num_rounds > 1 else 1.0)
                rows = np.arange(size)
                for step in range(num_rounds):
                    with tracer.span("search.round", round=step,
                                     batch=size):
                        temperature = t0 * alpha ** step
                        positions = rng.integers(0, num_parameters,
                                                 size=size)
                        offsets = rng.integers(1, num_values, size=size)
                        proposals = population.copy()
                        proposals[rows, positions] = (
                            population[rows, positions]
                            + offsets) % num_values
                        proposal_losses = memo.evaluate_many(proposals)
                        delta = proposal_losses - losses
                        accept = (delta <= 0) | (
                            rng.random(size)
                            < np.exp(-delta / temperature))
                        population[accept] = proposals[accept]
                        losses[accept] = proposal_losses[accept]
                        clock.lap()
            except BudgetExhausted:
                stopped_by = "evaluations"
                clock.lap_if_pending()
            except TargetReached:
                stopped_by = "target"
                clock.lap_if_pending()
        return _result(self.name, tracker, clock.trace, start, stopped_by,
                       memo)


# ----------------------------------------------------------------------
# tabu: batched neighborhood moves with a recency-keyed tabu list
# ----------------------------------------------------------------------
@register_strategy
class TabuStrategy(SearchStrategy):
    """Tabu search over single-gene moves, one batch per round.

    Each round builds a neighborhood of single-gene reassignments
    (exhaustive when it fits in ``config.population_size`` candidates,
    uniformly sampled otherwise), evaluates it in one ``evaluate_many``
    call, and steps to the best *admissible* candidate: a move is tabu
    while its ``(position, value)`` pair sits in the recency list --
    reassigning a recently overwritten value is forbidden for ``tenure``
    rounds -- unless it beats the best loss seen so far (aspiration).

    Args:
        tenure: Tabu tenure in rounds; defaults to
            ``ceil(sqrt(neighborhood size))``.
    """

    name = "tabu"
    description = ("batched tabu search over single-gene moves with a "
                   "recency-keyed tabu list")

    def __init__(self, tenure: int | None = None):
        if tenure is not None and tenure < 1:
            raise ValueError("tenure must be >= 1")
        self.tenure = tenure

    def minimize(self, loss_fn, num_parameters, num_values=4, *,
                 budget=None, config=None, rng=None, executor=None
                 ) -> SearchResult:
        cfg, budget, rng, tracker, memo = _prepare(
            loss_fn, budget, config, rng, executor)
        num_rounds = _rounds_cap(budget, cfg)
        full_size = num_parameters * (num_values - 1)
        batch = min(full_size, cfg.population_size)
        tenure = (self.tenure if self.tenure is not None
                  else max(2, int(np.ceil(np.sqrt(full_size)))))
        tracer = get_tracer()
        start = time.perf_counter()
        clock = _TraceClock(tracker)
        stopped_by = "rounds"
        tabu_until: dict[tuple[int, int], int] = {}
        with tracer.span("search.minimize", strategy=self.name):
            try:
                current = rng.integers(0, num_values, size=num_parameters)
                memo.evaluate_many(current[None, :])
                clock.lap()
                for round_index in range(num_rounds):
                    with tracer.span("search.round", round=round_index,
                                     batch=batch):
                        if full_size <= cfg.population_size:
                            positions = np.repeat(
                                np.arange(num_parameters), num_values - 1)
                            offsets = np.tile(np.arange(1, num_values),
                                              num_parameters)
                        else:
                            positions = rng.integers(0, num_parameters,
                                                     size=batch)
                            offsets = rng.integers(1, num_values,
                                                   size=batch)
                        values = (current[positions] + offsets) % num_values
                        candidates = np.tile(current, (len(positions), 1))
                        candidates[np.arange(len(positions)),
                                   positions] = values
                        aspiration = tracker.best_loss
                        candidate_losses = memo.evaluate_many(candidates)
                        admissible = np.array([
                            tabu_until.get((int(p), int(v)), -1)
                            <= round_index
                            or candidate_losses[i] < aspiration
                            for i, (p, v)
                            in enumerate(zip(positions, values))])
                        pool = (np.flatnonzero(admissible)
                                if admissible.any()
                                else np.arange(len(positions)))
                        pick = pool[int(np.argmin(candidate_losses[pool]))]
                        position = int(positions[pick])
                        # forbid restoring the value this move overwrites
                        tabu_until[(position, int(current[position]))] = \
                            round_index + 1 + tenure
                        current = candidates[pick]
                        clock.lap()
            except BudgetExhausted:
                stopped_by = "evaluations"
                clock.lap_if_pending()
            except TargetReached:
                stopped_by = "target"
                clock.lap_if_pending()
        return _result(self.name, tracker, clock.trace, start, stopped_by,
                       memo)


# ----------------------------------------------------------------------
# restart_climb: best-of-K random-restart hill climbing
# ----------------------------------------------------------------------
@register_strategy
class RestartClimbStrategy(SearchStrategy):
    """Best-of-K random-restart hill climbing with batched neighborhoods.

    Each restart climbs from a fresh random genome by steepest descent:
    a batch of single-gene neighbors (exhaustive when it fits in
    ``config.population_size`` candidates, sampled otherwise) is
    evaluated per step, and the climb moves while the best neighbor
    improves -- or, on the plateau-heavy Clifford landscapes, sideways
    along equal-loss neighbors for up to ``plateau_limit`` consecutive
    steps (a bounded plateau walk; strict-improvement-only climbing dies
    on the first plateau).  ``config.num_instances`` restarts (the
    engine's ``s``) each run at most ``config.generations_per_round``
    steps (its ``m``); one :class:`SearchTrace` record per restart.
    This is the in-tree ``random_clifford`` method's best-of-K sampling,
    generalized to climb from each sample.

    Args:
        num_restarts: Explicit K (overrides ``config.num_instances``).
        plateau_limit: Consecutive sideways steps tolerated before the
            restart is declared converged; defaults to the genome length.
    """

    name = "restart_climb"
    description = ("best-of-K random-restart hill climbing with batched "
                   "neighborhood steps and bounded plateau walks")

    def __init__(self, num_restarts: int | None = None,
                 plateau_limit: int | None = None):
        if num_restarts is not None and num_restarts < 1:
            raise ValueError("num_restarts must be >= 1")
        if plateau_limit is not None and plateau_limit < 0:
            raise ValueError("plateau_limit must be >= 0")
        self.num_restarts = num_restarts
        self.plateau_limit = plateau_limit

    def minimize(self, loss_fn, num_parameters, num_values=4, *,
                 budget=None, config=None, rng=None, executor=None
                 ) -> SearchResult:
        cfg, budget, rng, tracker, memo = _prepare(
            loss_fn, budget, config, rng, executor)
        restarts = self.num_restarts or cfg.num_instances
        restarts = min(restarts, _rounds_cap(budget, cfg))
        full_size = num_parameters * (num_values - 1)
        batch = min(full_size, cfg.population_size)
        plateau_limit = (self.plateau_limit
                         if self.plateau_limit is not None
                         else num_parameters)
        tracer = get_tracer()
        start = time.perf_counter()
        clock = _TraceClock(tracker)
        stopped_by = "converged"
        with tracer.span("search.minimize", strategy=self.name):
            try:
                for restart in range(restarts):
                    with tracer.span("search.round", round=restart,
                                     batch=batch):
                        current = rng.integers(0, num_values,
                                               size=num_parameters)
                        current_loss = float(
                            memo.evaluate_many(current[None, :])[0])
                        plateau_steps = 0
                        for _ in range(cfg.generations_per_round):
                            if full_size <= cfg.population_size:
                                positions = np.repeat(
                                    np.arange(num_parameters),
                                    num_values - 1)
                                offsets = np.tile(
                                    np.arange(1, num_values),
                                    num_parameters)
                            else:
                                positions = rng.integers(
                                    0, num_parameters, size=batch)
                                offsets = rng.integers(1, num_values,
                                                       size=batch)
                            neighbors = np.tile(current,
                                                (len(positions), 1))
                            neighbors[np.arange(len(positions)),
                                      positions] = (
                                current[positions] + offsets) % num_values
                            losses = memo.evaluate_many(neighbors)
                            step = int(np.argmin(losses))
                            if losses[step] < current_loss:
                                plateau_steps = 0
                            elif (losses[step] == current_loss
                                  and plateau_steps < plateau_limit):
                                # sideways: walk the plateau, bounded so a
                                # flat basin cannot absorb the whole step
                                # budget
                                plateau_steps += 1
                            else:
                                # local optimum w.r.t. this neighborhood
                                break
                            current = neighbors[step]
                            current_loss = float(losses[step])
                        clock.lap()
            except BudgetExhausted:
                stopped_by = "evaluations"
                clock.lap_if_pending()
            except TargetReached:
                stopped_by = "target"
                clock.lap_if_pending()
        return _result(self.name, tracker, clock.trace, start, stopped_by,
                       memo)
