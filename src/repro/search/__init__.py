"""Pluggable discrete-search strategies: protocol, registry, built-ins.

The search axis of the paper's evaluation is open, exactly like the
method and benchmark axes: implement :class:`SearchStrategy`, decorate it
with :func:`register_strategy`, and the strategy runs through
``InitializationMethod.run(strategy=...)``, ``Experiment.run``, campaign
sweeps, figure reports, and the CLI by name -- no core edits.
``repro strategies`` lists what is registered.
"""

from .base import (
    BudgetedLoss,
    BudgetExhausted,
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTrace,
    TargetReached,
)
from .registry import (
    DEFAULT_STRATEGY,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy,
    strategy_names,
    unregister_strategy,
)
from .strategies import (
    AnnealingStrategy,
    MultiGAStrategy,
    RestartClimbStrategy,
    TabuStrategy,
)

__all__ = [
    "AnnealingStrategy", "BudgetExhausted", "BudgetedLoss",
    "DEFAULT_STRATEGY", "MultiGAStrategy", "RestartClimbStrategy",
    "SearchBudget", "SearchResult", "SearchStrategy", "SearchTrace",
    "TabuStrategy", "TargetReached", "available_strategies",
    "get_strategy", "register_strategy", "resolve_strategy",
    "strategy_names", "unregister_strategy",
]
