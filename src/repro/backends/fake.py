"""The four named backends of the paper's evaluation (Sec. 5.2.2).

``FakeNairobi`` (7 qubits), ``FakeToronto`` and ``FakeMumbai`` (27 qubits)
play the role of Qiskit's fake-backend noise-model snapshots; ``FakeHanoi``
is the optimization-side model of the cloud device, whose "real hardware" is
obtained via :meth:`Backend.hardware_twin`.

Seeds are fixed so every run of the reproduction sees identical devices.
"""

from __future__ import annotations

from .backend import Backend
from .calibration import PROFILES, generate_calibration
from .topologies import EDGES_27Q_FALCON, EDGES_7Q_FALCON, coupling_graph, line_topology

_SEEDS = {"nairobi": 701, "toronto": 2701, "mumbai": 2702, "hanoi": 2703}


def _build(name: str, edges, num_qubits: int) -> Backend:
    calibration = generate_calibration(edges, num_qubits, PROFILES[name],
                                       seed=_SEEDS[name])
    return Backend(name=name, graph=coupling_graph(edges, num_qubits),
                   calibration=calibration)


def FakeNairobi() -> Backend:
    """7-qubit Falcon; the paper runs only the 7-qubit physics models here."""
    return _build("nairobi", EDGES_7Q_FALCON, 7)


def FakeToronto() -> Backend:
    """27-qubit Falcon r4; the noisiest of the three large devices."""
    return _build("toronto", EDGES_27Q_FALCON, 27)


def FakeMumbai() -> Backend:
    """27-qubit Falcon r5.1."""
    return _build("mumbai", EDGES_27Q_FALCON, 27)


def FakeHanoi() -> Backend:
    """27-qubit Falcon r5.11; pair with ``.hardware_twin()`` for experiments."""
    return _build("hanoi", EDGES_27Q_FALCON, 27)


def FakeLine(num_qubits: int, profile_name: str = "toronto",
             seed: int = 7) -> Backend:
    """A chain-topology device with a named profile's rate distributions.

    Used by the Fig. 7/8 isolated-channel sweeps (which override the rates)
    and the Fig. 9 scaling study (where topology is irrelevant).
    """
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    calibration = generate_calibration(edges, num_qubits,
                                       PROFILES[profile_name], seed=seed)
    return Backend(name=f"line-{num_qubits}", graph=line_topology(num_qubits),
                   calibration=calibration)


ALL_BACKENDS = {
    "nairobi": FakeNairobi,
    "toronto": FakeToronto,
    "mumbai": FakeMumbai,
    "hanoi": FakeHanoi,
}
