"""Device backends: topologies, synthetic calibrations, hardware twins."""

from .topologies import (
    EDGES_27Q_FALCON,
    EDGES_7Q_FALCON,
    coupling_graph,
    line_topology,
)
from .calibration import (
    PROFILES,
    CalibrationData,
    DeviceProfile,
    generate_calibration,
    perturb_calibration,
)
from .backend import Backend
from .fake import (
    ALL_BACKENDS,
    FakeHanoi,
    FakeLine,
    FakeMumbai,
    FakeNairobi,
    FakeToronto,
)

__all__ = [
    "ALL_BACKENDS", "Backend", "CalibrationData", "DeviceProfile",
    "EDGES_27Q_FALCON", "EDGES_7Q_FALCON", "FakeHanoi", "FakeLine",
    "FakeMumbai", "FakeNairobi", "FakeToronto", "PROFILES", "coupling_graph",
    "generate_calibration", "line_topology", "perturb_calibration",
]
