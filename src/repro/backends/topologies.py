"""Coupling maps of the IBM devices used in the paper's evaluation.

The edge lists reproduce the published heavy-hex lattices: the 7-qubit
Falcon r5.11H layout (``nairobi``) and the 27-qubit Falcon layout shared by
``toronto``, ``mumbai`` and ``hanoi``.  Only the connectivity is hardware
data here; error rates come from :mod:`repro.backends.calibration`.
"""

from __future__ import annotations

import networkx as nx

#: 7-qubit heavy-hex "H" layout:
#:
#:     0 - 1 - 2
#:         |
#:         3
#:         |
#:     4 - 5 - 6
EDGES_7Q_FALCON: list[tuple[int, int]] = [
    (0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6),
]

#: 27-qubit Falcon heavy-hex lattice (toronto / mumbai / hanoi).
EDGES_27Q_FALCON: list[tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]


def coupling_graph(edges: list[tuple[int, int]], num_qubits: int) -> nx.Graph:
    """Undirected coupling graph with every qubit present as a node."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    graph.add_edges_from(edges)
    return graph


def line_topology(num_qubits: int) -> nx.Graph:
    """A simple chain -- used by the Fig. 7/8 sweeps after transpiling to a
    line of ``toronto`` and by the scaling study, where topology is not the
    object of interest."""
    return coupling_graph([(i, i + 1) for i in range(num_qubits - 1)],
                          num_qubits)
