"""Synthetic device calibration data.

The paper reads calibration snapshots (T1/T2, gate and readout error rates)
from IBM fake backends and the live hanoi device.  Those snapshots are not
redistributable data files, so this module *generates* calibrations from
seeded random distributions whose centers match the public typical values
for each device generation.  The substitution is documented in DESIGN.md:
Clapton consumes only (topology, rates), so any realistic, fixed rate set
exercises the identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """Distribution parameters for one device generation.

    Times in seconds, errors as probabilities.  Log-normal spreads mimic the
    long right tail of real calibration data (a few bad qubits/pairs).
    """

    t1_mean: float
    t2_mean: float
    error_1q_median: float
    error_2q_median: float
    readout_median: float
    readout_asymmetry: float = 0.35   # p01 vs p10 relative skew
    spread: float = 0.35              # sigma of the log-normal factors
    gate_time_1q: float = 35e-9
    gate_time_2q: float = 300e-9


#: Device-class presets (centres near publicly reported typical values).
PROFILES: dict[str, DeviceProfile] = {
    "nairobi": DeviceProfile(t1_mean=110e-6, t2_mean=80e-6,
                             error_1q_median=3.5e-4, error_2q_median=1.1e-2,
                             readout_median=2.8e-2),
    "toronto": DeviceProfile(t1_mean=95e-6, t2_mean=70e-6,
                             error_1q_median=4.0e-4, error_2q_median=1.3e-2,
                             readout_median=3.5e-2),
    "mumbai": DeviceProfile(t1_mean=120e-6, t2_mean=90e-6,
                            error_1q_median=3.0e-4, error_2q_median=9.0e-3,
                            readout_median=2.2e-2),
    "hanoi": DeviceProfile(t1_mean=130e-6, t2_mean=100e-6,
                           error_1q_median=2.5e-4, error_2q_median=7.0e-3,
                           readout_median=1.6e-2),
}


@dataclass
class CalibrationData:
    """One snapshot of per-qubit / per-pair device parameters."""

    t1: np.ndarray
    t2: np.ndarray
    error_1q: np.ndarray
    error_2q: dict[tuple[int, int], float]
    readout_p01: np.ndarray
    readout_p10: np.ndarray
    gate_time_1q: float
    gate_time_2q: float

    @property
    def num_qubits(self) -> int:
        return len(self.t1)


def generate_calibration(edges: list[tuple[int, int]], num_qubits: int,
                         profile: DeviceProfile, seed: int) -> CalibrationData:
    """Draw a deterministic calibration snapshot for a topology."""
    rng = np.random.default_rng(seed)
    lognorm = lambda median, size: median * rng.lognormal(0.0, profile.spread, size)
    t1 = np.clip(profile.t1_mean * rng.lognormal(0.0, 0.25, num_qubits),
                 20e-6, None)
    t2 = np.minimum(np.clip(profile.t2_mean * rng.lognormal(0.0, 0.3, num_qubits),
                            10e-6, None), 2 * t1)
    error_1q = np.clip(lognorm(profile.error_1q_median, num_qubits), 0, 0.05)
    error_2q = {tuple(sorted(e)): float(np.clip(
        lognorm(profile.error_2q_median, None), 1e-4, 0.15)) for e in edges}
    readout = np.clip(lognorm(profile.readout_median, num_qubits), 1e-4, 0.3)
    # real devices misreport |1> as 0 more often than the reverse (decay
    # during readout), hence the asymmetric split around the median
    skew = profile.readout_asymmetry
    p01 = readout * (1.0 - skew)
    p10 = readout * (1.0 + skew)
    return CalibrationData(
        t1=t1, t2=t2, error_1q=error_1q, error_2q=error_2q,
        readout_p01=p01, readout_p10=p10,
        gate_time_1q=profile.gate_time_1q, gate_time_2q=profile.gate_time_2q)


def perturb_calibration(calibration: CalibrationData, seed: int,
                        jitter: float = 0.25) -> CalibrationData:
    """A 'same device, different day' recalibration for hardware twins.

    Every rate/time is multiplied by an independent log-normal factor with
    sigma ``jitter`` -- the calibration drift that makes optimization models
    diverge from what a job actually experiences on the queue.
    """
    rng = np.random.default_rng(seed)
    factor = lambda size=None: rng.lognormal(0.0, jitter, size)
    t1 = np.clip(calibration.t1 * factor(calibration.num_qubits), 10e-6, None)
    t2 = np.minimum(calibration.t2 * factor(calibration.num_qubits), 2 * t1)
    return CalibrationData(
        t1=t1,
        t2=t2,
        error_1q=np.clip(calibration.error_1q * factor(calibration.num_qubits),
                         0, 0.08),
        error_2q={k: float(np.clip(v * factor(), 1e-4, 0.2))
                  for k, v in calibration.error_2q.items()},
        readout_p01=np.clip(calibration.readout_p01
                            * factor(calibration.num_qubits), 1e-4, 0.4),
        readout_p10=np.clip(calibration.readout_p10
                            * factor(calibration.num_qubits), 1e-4, 0.4),
        gate_time_1q=calibration.gate_time_1q,
        gate_time_2q=calibration.gate_time_2q)
