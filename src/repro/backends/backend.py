"""Backend abstraction: topology + calibration + noise-model export."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..noise.model import NoiseModel
from .calibration import CalibrationData, perturb_calibration


@dataclass
class Backend:
    """A quantum device as the transpiler and evaluators see it.

    Attributes:
        name: Device name (e.g. ``"toronto"``).
        graph: Undirected coupling graph on physical qubit ids.
        calibration: Current snapshot of device parameters.
        is_hardware: True for "real device" twins whose parameters are *not*
            the ones optimization saw (Sec. 6.1's hanoi experiments).
    """

    name: str
    graph: nx.Graph
    calibration: CalibrationData
    is_hardware: bool = False

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(e)) for e in self.graph.edges]

    def noise_model(self, physical_qubits: list[int] | None = None,
                    coherent_zz_angle_2q: float = 0.0) -> NoiseModel:
        """Export a :class:`NoiseModel`, optionally restricted to a subset.

        Args:
            physical_qubits: When given, build the model on the *compact*
                register ``0..len-1`` whose index ``i`` corresponds to
                physical qubit ``physical_qubits[i]`` (the register the
                transpiler produces).
            coherent_zz_angle_2q: Unmodeled coherent error for twins.
        """
        cal = self.calibration
        if physical_qubits is None:
            physical_qubits = list(range(self.num_qubits))
        index_of = {phys: i for i, phys in enumerate(physical_qubits)}
        depol_2q = {}
        for (a, b), err in cal.error_2q.items():
            if a in index_of and b in index_of:
                depol_2q[(index_of[a], index_of[b])] = err
        sel = np.asarray(physical_qubits, dtype=int)
        return NoiseModel(
            num_qubits=len(physical_qubits),
            depol_1q=cal.error_1q[sel],
            depol_2q_default=float(np.median(list(cal.error_2q.values()))),
            depol_2q=depol_2q,
            t1=cal.t1[sel],
            t2=cal.t2[sel],
            readout_p01=cal.readout_p01[sel],
            readout_p10=cal.readout_p10[sel],
            gate_time_1q=cal.gate_time_1q,
            gate_time_2q=cal.gate_time_2q,
            coherent_zz_angle_2q=coherent_zz_angle_2q,
        )

    def hardware_twin(self, seed: int = 2024, jitter: float = 0.25,
                      coherent_zz_angle_2q: float = 0.04) -> "Backend":
        """The 'actual device' behind this backend's calibration model.

        Same topology, recalibrated (jittered) rates, plus a coherent ZZ
        over-rotation after two-qubit gates that no calibration-derived
        model contains.  Evaluating on the twin reproduces the paper's
        hardware experiments: optimization uses ``self.noise_model()``, the
        reported energy comes from the twin.
        """
        twin_cal = perturb_calibration(self.calibration, seed, jitter)
        twin = Backend(name=f"{self.name}-hw", graph=self.graph,
                       calibration=twin_cal, is_hardware=True)
        twin._coherent_zz = coherent_zz_angle_2q
        return twin

    def twin_noise_model(self, physical_qubits: list[int] | None = None
                         ) -> NoiseModel:
        """Noise model including the twin's unmodeled device effects.

        Beyond the recalibrated rates, the twin adds the coherent ZZ
        over-rotation and schedules relaxation on idle qubits -- both real
        device behaviours absent from calibration-derived models.
        """
        angle = getattr(self, "_coherent_zz", 0.0)
        model = self.noise_model(physical_qubits, coherent_zz_angle_2q=angle)
        return model.with_overrides(include_idle_relaxation=True)

    def __repr__(self) -> str:
        return (f"Backend({self.name!r}, num_qubits={self.num_qubits}, "
                f"is_hardware={self.is_hardware})")
