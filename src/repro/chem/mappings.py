"""Fermion-to-qubit mappings: parity transform and two-qubit reduction.

The paper maps molecular Hamiltonians "using the parity mapping with the
two-qubit reduction applied" (Sec. 5.1.2).  We obtain the parity mapping by
conjugating the Jordan-Wigner Hamiltonian with the CNOT-cascade Clifford
that turns occupation bits into prefix parities -- mathematically identical
to the Seeley-Richard-Love construction, and conveniently exercised through
this package's own tableau engine:

    |n_0, n_1, ..>  --cascade-->  |p_0, p_1, ..>,  p_j = n_0 ^ ... ^ n_j

Under spin-blocked ordering (all alpha modes, then all beta), qubit
``n/2 - 1`` then stores the total alpha parity and qubit ``n - 1`` the total
parity.  Both are conserved, every Hamiltonian term carries I or Z there,
and the two qubits can be replaced by their sector eigenvalues -- the
two-qubit reduction that brings the paper's molecules to 10 qubits.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..paulis.pauli_sum import PauliSum
from ..paulis.table import PauliTable
from ..stabilizer.tableau import CliffordTableau


def parity_cascade_circuit(num_modes: int) -> Circuit:
    """CNOT cascade computing prefix parities in place."""
    circ = Circuit(num_modes)
    for j in range(num_modes - 1):
        circ.cx(j, j + 1)
    return circ


def jw_to_parity(hamiltonian: PauliSum) -> PauliSum:
    """Convert a Jordan-Wigner Hamiltonian to the parity representation.

    If the cascade unitary is ``U`` (occupations -> parities), operators map
    as ``O -> U O U†``.
    """
    circuit = parity_cascade_circuit(hamiltonian.num_qubits)
    # conjugate_table computes C P C† for the tableau's circuit, so build
    # the tableau of U itself.
    tableau = CliffordTableau.from_circuit(circuit)
    table = tableau.conjugate_table(hamiltonian.table)
    return PauliSum(table, hamiltonian.coefficients.copy())


def taper_qubits(hamiltonian: PauliSum, qubits: list[int],
                 eigenvalues: list[int]) -> PauliSum:
    """Remove symmetry qubits, substituting their Z eigenvalues.

    Args:
        hamiltonian: Operator whose every term has I or Z on ``qubits``
            (guaranteed when the operator commutes with those Z's).
        qubits: Positions to remove.
        eigenvalues: ``+1`` or ``-1`` sector eigenvalue per removed qubit.

    Raises:
        ValueError: if a term acts with X or Y on a tapered qubit.
    """
    if len(qubits) != len(eigenvalues):
        raise ValueError("need one eigenvalue per tapered qubit")
    if any(e not in (-1, 1) for e in eigenvalues):
        raise ValueError("eigenvalues must be +-1")
    table = hamiltonian.table
    for q in qubits:
        if table.x[:, q].any():
            raise ValueError(
                f"qubit {q} carries X/Y components; not a Z symmetry")
    coeffs = hamiltonian.coefficients.copy()
    for q, e in zip(qubits, eigenvalues):
        coeffs = np.where(table.z[:, q], e * coeffs, coeffs)
    keep = [c for c in range(hamiltonian.num_qubits) if c not in set(qubits)]
    new_table = PauliTable(table.x[:, keep], table.z[:, keep])
    return PauliSum(new_table, coeffs)


def parity_two_qubit_reduction(jw_hamiltonian: PauliSum, num_alpha: int,
                               num_beta: int) -> PauliSum:
    """Parity mapping plus the two-qubit reduction (spin-blocked modes).

    Args:
        jw_hamiltonian: Jordan-Wigner Hamiltonian with modes ordered as
            ``alpha_0 .. alpha_{m-1}, beta_0 .. beta_{m-1}``.
        num_alpha / num_beta: Electrons per spin sector (fix the parities).
    """
    n = jw_hamiltonian.num_qubits
    if n % 2:
        raise ValueError("spin-blocked register must have even width")
    parity = jw_to_parity(jw_hamiltonian)
    alpha_parity = (-1) ** num_alpha
    total_parity = (-1) ** (num_alpha + num_beta)
    return taper_qubits(parity, [n // 2 - 1, n - 1],
                        [alpha_parity, total_parity])
