"""Geometries of the paper's molecular benchmarks (Sec. 5.1.2).

Each molecule is parameterized by one bond length ``l`` (angstrom), matching
how the paper sweeps geometry: a compact configuration where classical
methods are accurate and a stretched one where they struggle.
"""

from __future__ import annotations

import numpy as np

from .basis import ANGSTROM_TO_BOHR, Atom

#: H-O-H angle of the water benchmark (degrees).
WATER_ANGLE_DEG = 104.45


def water_geometry(bond_length: float) -> list[Atom]:
    """H2O: both O-H bonds at ``bond_length`` angstrom, fixed angle."""
    l = bond_length * ANGSTROM_TO_BOHR
    half = np.deg2rad(WATER_ANGLE_DEG) / 2.0
    return [
        Atom("O", np.zeros(3)),
        Atom("H", np.array([l * np.sin(half), l * np.cos(half), 0.0])),
        Atom("H", np.array([-l * np.sin(half), l * np.cos(half), 0.0])),
    ]


def hydrogen_chain_geometry(num_atoms: int, bond_length: float) -> list[Atom]:
    """Linear H_n chain with uniform spacing ``bond_length`` angstrom."""
    l = bond_length * ANGSTROM_TO_BOHR
    return [Atom("H", np.array([0.0, 0.0, i * l])) for i in range(num_atoms)]


def lithium_hydride_geometry(bond_length: float) -> list[Atom]:
    """LiH diatomic at ``bond_length`` angstrom."""
    l = bond_length * ANGSTROM_TO_BOHR
    return [Atom("Li", np.zeros(3)), Atom("H", np.array([0.0, 0.0, l]))]


GEOMETRY_BUILDERS = {
    "H2O": water_geometry,
    "H6": lambda l: hydrogen_chain_geometry(6, l),
    "LiH": lithium_hydride_geometry,
}
