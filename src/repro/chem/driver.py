"""End-to-end molecular Hamiltonian pipeline (the Qiskit Nature role).

``molecular_hamiltonian("H2O", 1.0)`` runs: geometry -> STO-3G integrals ->
RHF -> MO transform -> active-space reduction to six spatial orbitals ->
spin-orbital tensors -> Jordan-Wigner -> parity mapping with two-qubit
reduction -> a ten-qubit :class:`~repro.paulis.pauli_sum.PauliSum` whose
ground energy is the active-space FCI energy (nuclear + frozen core
included as the identity coefficient).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..paulis.pauli_sum import PauliSum
from .active_space import ActiveSpace, active_space_tensors, spin_orbital_hamiltonian
from .mappings import parity_two_qubit_reduction
from .molecules import GEOMETRY_BUILDERS
from .scf import SCFResult, run_rhf

#: active-space definitions reproducing the paper's ten-qubit problems
#: (six spatial orbitals each; H2O freezes the O 1s core).
ACTIVE_SPACES = {
    "H2O": ActiveSpace(num_frozen=1, num_active=6, num_active_electrons=8),
    "H6": ActiveSpace(num_frozen=0, num_active=6, num_active_electrons=6),
    "LiH": ActiveSpace(num_frozen=0, num_active=6, num_active_electrons=4),
}


@dataclass
class MolecularProblem:
    """A molecule reduced to a qubit Hamiltonian.

    Attributes:
        name / bond_length: Benchmark identity.
        hamiltonian: Ten-qubit parity-reduced Hamiltonian.
        scf: The underlying RHF solution.
        active_space: Orbital window used.
        hf_energy: Total RHF energy (the classical reference the VQE is
            supposed to beat at stretched geometries).
    """

    name: str
    bond_length: float
    hamiltonian: PauliSum
    scf: SCFResult
    active_space: ActiveSpace

    @property
    def hf_energy(self) -> float:
        return self.scf.energy


def molecular_hamiltonian(name: str, bond_length: float,
                          threshold: float = 1e-8) -> MolecularProblem:
    """Build one of the paper's molecular benchmarks.

    Args:
        name: ``"H2O"``, ``"H6"``, or ``"LiH"``.
        bond_length: Bond length / chain spacing in angstrom.
        threshold: Drop Pauli terms with |coefficient| below this (matches
            the integral-threshold pruning real pipelines apply).
    """
    if name not in GEOMETRY_BUILDERS:
        raise ValueError(f"unknown molecule {name!r}; "
                         f"known: {sorted(GEOMETRY_BUILDERS)}")
    atoms = GEOMETRY_BUILDERS[name](bond_length)
    space = ACTIVE_SPACES[name]
    scf = run_rhf(atoms)
    # stretched geometries (the paper's hard cases) can make bare
    # DIIS oscillate; retry with increasing density damping
    for damping in (0.3, 0.6):
        if scf.converged:
            break
        scf = run_rhf(atoms, damping=damping, max_iterations=500)
    core_energy, h_eff, eri_active = active_space_tensors(scf, space)
    fermion = spin_orbital_hamiltonian(core_energy, h_eff, eri_active)
    jw = fermion.to_qubits_jordan_wigner()
    reduced = parity_two_qubit_reduction(jw, space.num_alpha, space.num_beta)
    pruned = _prune(reduced, threshold)
    return MolecularProblem(name=name, bond_length=bond_length,
                            hamiltonian=pruned, scf=scf, active_space=space)


def _prune(hamiltonian: PauliSum, threshold: float) -> PauliSum:
    keep = abs(hamiltonian.coefficients) >= threshold
    if not keep.any():
        return hamiltonian
    from ..paulis.table import PauliTable

    table = PauliTable(hamiltonian.table.x[keep], hamiltonian.table.z[keep],
                       hamiltonian.table.phase_exp[keep])
    return PauliSum(table, hamiltonian.coefficients[keep])
