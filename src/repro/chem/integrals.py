"""Molecular integrals over contracted Gaussians (McMurchie-Davidson).

From-scratch replacement for the integral engine the paper gets through
PySCF: overlap, kinetic, nuclear-attraction, and two-electron repulsion
integrals for s and p Cartesian Gaussians, via Hermite Gaussian expansion
coefficients ``E_t`` and the Hermite Coulomb tensor ``R_{tuv}`` with the
Boys function.

ERI storage uses chemist's notation: ``eri[p, q, r, s] = (pq|rs)``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gamma, gammainc


# ----------------------------------------------------------------------
# Hermite expansion coefficients
# ----------------------------------------------------------------------
def hermite_coefficient(i: int, j: int, t: int, distance: float,
                        a: float, b: float) -> float:
    """``E_t^{ij}``: expansion of a Gaussian product in Hermite Gaussians.

    Args:
        i, j: Cartesian angular momenta of the two primitives (one axis).
        t: Hermite order.
        distance: ``A_x - B_x`` along this axis.
        a, b: Primitive exponents.
    """
    p = a + b
    q = a * b / p
    if t < 0 or t > i + j:
        return 0.0
    if i == j == t == 0:
        return math.exp(-q * distance * distance)
    if j == 0:
        return ((1.0 / (2 * p)) * hermite_coefficient(i - 1, j, t - 1, distance, a, b)
                - (q * distance / a) * hermite_coefficient(i - 1, j, t, distance, a, b)
                + (t + 1) * hermite_coefficient(i - 1, j, t + 1, distance, a, b))
    return ((1.0 / (2 * p)) * hermite_coefficient(i, j - 1, t - 1, distance, a, b)
            + (q * distance / b) * hermite_coefficient(i, j - 1, t, distance, a, b)
            + (t + 1) * hermite_coefficient(i, j - 1, t + 1, distance, a, b))


# ----------------------------------------------------------------------
# Boys function and Hermite Coulomb tensor
# ----------------------------------------------------------------------
def boys(n: int, t: float) -> float:
    """``F_n(t) = int_0^1 u^{2n} exp(-t u^2) du`` via the incomplete gamma."""
    if t < 1e-12:
        return 1.0 / (2 * n + 1)
    return (gammainc(n + 0.5, t) * gamma(n + 0.5)
            / (2.0 * t ** (n + 0.5)))


def hermite_coulomb(t: int, u: int, v: int, n: int, p: float,
                    pcx: float, pcy: float, pcz: float, rpc: float) -> float:
    """``R^n_{tuv}``: Coulomb integrals of Hermite Gaussians (recursive)."""
    if t == u == v == 0:
        return (-2.0 * p) ** n * boys(n, p * rpc * rpc)
    if t > 0:
        value = 0.0
        if t > 1:
            value += (t - 1) * hermite_coulomb(t - 2, u, v, n + 1, p,
                                               pcx, pcy, pcz, rpc)
        value += pcx * hermite_coulomb(t - 1, u, v, n + 1, p,
                                       pcx, pcy, pcz, rpc)
        return value
    if u > 0:
        value = 0.0
        if u > 1:
            value += (u - 1) * hermite_coulomb(t, u - 2, v, n + 1, p,
                                               pcx, pcy, pcz, rpc)
        value += pcy * hermite_coulomb(t, u - 1, v, n + 1, p,
                                       pcx, pcy, pcz, rpc)
        return value
    value = 0.0
    if v > 1:
        value += (v - 1) * hermite_coulomb(t, u, v - 2, n + 1, p,
                                           pcx, pcy, pcz, rpc)
    value += pcz * hermite_coulomb(t, u, v - 1, n + 1, p,
                                   pcx, pcy, pcz, rpc)
    return value


# ----------------------------------------------------------------------
# Primitive integrals
# ----------------------------------------------------------------------
def overlap_primitive(a: float, lmn1, pos_a, b: float, lmn2, pos_b) -> float:
    """Overlap of two unnormalized primitives."""
    s = 1.0
    for axis in range(3):
        s *= hermite_coefficient(lmn1[axis], lmn2[axis], 0,
                                 pos_a[axis] - pos_b[axis], a, b)
    return s * (math.pi / (a + b)) ** 1.5


def kinetic_primitive(a: float, lmn1, pos_a, b: float, lmn2, pos_b) -> float:
    """Kinetic-energy integral via the standard overlap ladder relation."""
    l2, m2, n2 = lmn2
    term0 = b * (2 * (l2 + m2 + n2) + 3) * overlap_primitive(
        a, lmn1, pos_a, b, lmn2, pos_b)
    term1 = -2.0 * b ** 2 * (
        overlap_primitive(a, lmn1, pos_a, b, (l2 + 2, m2, n2), pos_b)
        + overlap_primitive(a, lmn1, pos_a, b, (l2, m2 + 2, n2), pos_b)
        + overlap_primitive(a, lmn1, pos_a, b, (l2, m2, n2 + 2), pos_b))
    term2 = -0.5 * (
        l2 * (l2 - 1) * overlap_primitive(a, lmn1, pos_a, b, (l2 - 2, m2, n2), pos_b)
        + m2 * (m2 - 1) * overlap_primitive(a, lmn1, pos_a, b, (l2, m2 - 2, n2), pos_b)
        + n2 * (n2 - 1) * overlap_primitive(a, lmn1, pos_a, b, (l2, m2, n2 - 2), pos_b))
    return term0 + term1 + term2


def nuclear_primitive(a: float, lmn1, pos_a, b: float, lmn2, pos_b,
                      nucleus) -> float:
    """Nuclear-attraction integral ``<g1| 1/|r - C| |g2>`` (positive value)."""
    p = a + b
    gaussian_center = (a * np.asarray(pos_a) + b * np.asarray(pos_b)) / p
    rpc = float(np.linalg.norm(gaussian_center - np.asarray(nucleus)))
    value = 0.0
    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    dx, dy, dz = (pos_a[0] - pos_b[0], pos_a[1] - pos_b[1],
                  pos_a[2] - pos_b[2])
    pc = gaussian_center - np.asarray(nucleus)
    for t in range(l1 + l2 + 1):
        et = hermite_coefficient(l1, l2, t, dx, a, b)
        if et == 0.0:
            continue
        for u in range(m1 + m2 + 1):
            eu = hermite_coefficient(m1, m2, u, dy, a, b)
            if eu == 0.0:
                continue
            for v in range(n1 + n2 + 1):
                ev = hermite_coefficient(n1, n2, v, dz, a, b)
                if ev == 0.0:
                    continue
                value += et * eu * ev * hermite_coulomb(
                    t, u, v, 0, p, pc[0], pc[1], pc[2], rpc)
    return value * 2.0 * math.pi / p


def eri_primitive(a, lmn1, pos_a, b, lmn2, pos_b,
                  c, lmn3, pos_c, d, lmn4, pos_d) -> float:
    """Two-electron repulsion integral ``(g1 g2 | g3 g4)`` (chemist)."""
    p = a + b
    q = c + d
    alpha = p * q / (p + q)
    center_p = (a * np.asarray(pos_a) + b * np.asarray(pos_b)) / p
    center_q = (c * np.asarray(pos_c) + d * np.asarray(pos_d)) / q
    rpq = float(np.linalg.norm(center_p - center_q))
    pq = center_p - center_q

    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    l3, m3, n3 = lmn3
    l4, m4, n4 = lmn4
    d12 = (pos_a[0] - pos_b[0], pos_a[1] - pos_b[1], pos_a[2] - pos_b[2])
    d34 = (pos_c[0] - pos_d[0], pos_c[1] - pos_d[1], pos_c[2] - pos_d[2])

    value = 0.0
    for t in range(l1 + l2 + 1):
        e1 = hermite_coefficient(l1, l2, t, d12[0], a, b)
        if e1 == 0.0:
            continue
        for u in range(m1 + m2 + 1):
            e2 = hermite_coefficient(m1, m2, u, d12[1], a, b)
            if e2 == 0.0:
                continue
            for v in range(n1 + n2 + 1):
                e3 = hermite_coefficient(n1, n2, v, d12[2], a, b)
                if e3 == 0.0:
                    continue
                for tau in range(l3 + l4 + 1):
                    e4 = hermite_coefficient(l3, l4, tau, d34[0], c, d)
                    if e4 == 0.0:
                        continue
                    for nu in range(m3 + m4 + 1):
                        e5 = hermite_coefficient(m3, m4, nu, d34[1], c, d)
                        if e5 == 0.0:
                            continue
                        for phi in range(n3 + n4 + 1):
                            e6 = hermite_coefficient(n3, n4, phi, d34[2], c, d)
                            if e6 == 0.0:
                                continue
                            sign = (-1.0) ** (tau + nu + phi)
                            value += (e1 * e2 * e3 * e4 * e5 * e6 * sign
                                      * hermite_coulomb(
                                          t + tau, u + nu, v + phi, 0, alpha,
                                          pq[0], pq[1], pq[2], rpq))
    value *= 2.0 * math.pi ** 2.5 / (p * q * math.sqrt(p + q))
    return value


# ----------------------------------------------------------------------
# Contracted integrals over a whole basis
# ----------------------------------------------------------------------
def _contract_pair(fn, bf1, bf2, *extra) -> float:
    total = 0.0
    for ca, na, aa in zip(bf1.coefs, bf1.norms, bf1.exps):
        for cb, nb, ab in zip(bf2.coefs, bf2.norms, bf2.exps):
            total += ca * cb * na * nb * fn(aa, bf1.lmn, bf1.center,
                                            ab, bf2.lmn, bf2.center, *extra)
    return total


def overlap_matrix(basis) -> np.ndarray:
    n = len(basis)
    s = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            s[i, j] = s[j, i] = _contract_pair(overlap_primitive,
                                               basis[i], basis[j])
    return s


def kinetic_matrix(basis) -> np.ndarray:
    n = len(basis)
    t = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            t[i, j] = t[j, i] = _contract_pair(kinetic_primitive,
                                               basis[i], basis[j])
    return t


def nuclear_attraction_matrix(basis, atoms) -> np.ndarray:
    n = len(basis)
    v = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            total = 0.0
            for atom in atoms:
                total -= atom.charge * _contract_pair(
                    nuclear_primitive, basis[i], basis[j], atom.position)
            v[i, j] = v[j, i] = total
    return v


def eri_tensor(basis) -> np.ndarray:
    """Full ``(pq|rs)`` tensor with 8-fold permutation symmetry exploited."""
    n = len(basis)
    eri = np.zeros((n, n, n, n))
    for i in range(n):
        for j in range(i + 1):
            for k in range(n):
                for l in range(k + 1):
                    if (i * (i + 1) // 2 + j) < (k * (k + 1) // 2 + l):
                        continue
                    value = _contract_quartet(basis[i], basis[j],
                                              basis[k], basis[l])
                    for p, q in ((i, j), (j, i)):
                        for r, s in ((k, l), (l, k)):
                            eri[p, q, r, s] = value
                            eri[r, s, p, q] = value
    return eri


def _contract_quartet(bf1, bf2, bf3, bf4) -> float:
    total = 0.0
    for c1, n1, a1 in zip(bf1.coefs, bf1.norms, bf1.exps):
        for c2, n2, a2 in zip(bf2.coefs, bf2.norms, bf2.exps):
            for c3, n3, a3 in zip(bf3.coefs, bf3.norms, bf3.exps):
                for c4, n4, a4 in zip(bf4.coefs, bf4.norms, bf4.exps):
                    total += (c1 * c2 * c3 * c4 * n1 * n2 * n3 * n4
                              * eri_primitive(a1, bf1.lmn, bf1.center,
                                              a2, bf2.lmn, bf2.center,
                                              a3, bf3.lmn, bf3.center,
                                              a4, bf4.lmn, bf4.center))
    return total
