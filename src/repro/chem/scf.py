"""Restricted Hartree-Fock with DIIS -- the classical reference pipeline.

Produces the molecular orbitals whose integrals define the active-space
qubit Hamiltonians (Sec. 5.1.2).  RHF is the textbook Roothaan procedure:
orthogonalize, build the Fock matrix from the density, extrapolate with
DIIS, iterate to self-consistency.  At the paper's stretched geometries RHF
is qualitatively poor (that is the *point* of choosing them -- classical
methods struggle there); convergence is still reached with DIIS plus mild
damping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basis import Atom, build_basis, nuclear_repulsion
from .integrals import (
    eri_tensor,
    kinetic_matrix,
    nuclear_attraction_matrix,
    overlap_matrix,
)


@dataclass
class SCFResult:
    """Converged (or best-effort) RHF solution.

    Attributes:
        energy: Total RHF energy (electronic + nuclear), hartree.
        mo_coeff: AO -> MO coefficient matrix (columns are MOs).
        mo_energies: Orbital energies.
        density: AO density matrix (doubly occupied convention).
        hcore / overlap / eri: AO integrals (chemist ERI).
        nuclear_energy: Nuclear repulsion.
        num_electrons: Electron count (must be even for RHF).
        converged: Whether the SCF met its threshold.
        iterations: SCF cycles used.
    """

    energy: float
    mo_coeff: np.ndarray
    mo_energies: np.ndarray
    density: np.ndarray
    hcore: np.ndarray
    overlap: np.ndarray
    eri: np.ndarray
    nuclear_energy: float
    num_electrons: int
    converged: bool
    iterations: int


def fock_matrix(hcore: np.ndarray, eri: np.ndarray, density: np.ndarray
                ) -> np.ndarray:
    """``F = h + J - K/2`` for the doubly-occupied density convention."""
    coulomb = np.einsum("pqrs,rs->pq", eri, density)
    exchange = np.einsum("prqs,rs->pq", eri, density)
    return hcore + coulomb - 0.5 * exchange


def electronic_energy(hcore: np.ndarray, fock: np.ndarray,
                      density: np.ndarray) -> float:
    return float(0.5 * np.sum(density * (hcore + fock)))


def run_rhf(atoms: list[Atom], num_electrons: int | None = None,
            max_iterations: int = 200, conv_tol: float = 1e-9,
            diis_size: int = 8, damping: float = 0.0) -> SCFResult:
    """Run restricted Hartree-Fock for a geometry in the STO-3G basis.

    Args:
        atoms: Geometry (positions in bohr).
        num_electrons: Defaults to the neutral molecule's count.
        max_iterations / conv_tol: SCF loop controls (convergence on the
            DIIS error norm and energy change).
        diis_size: Size of the DIIS history.
        damping: Optional density damping factor in [0, 1) for stretched
            geometries (0 disables).
    """
    if num_electrons is None:
        num_electrons = sum(a.charge for a in atoms)
    if num_electrons % 2:
        raise ValueError("RHF needs an even electron count")
    n_occ = num_electrons // 2

    basis = build_basis(atoms)
    overlap = overlap_matrix(basis)
    hcore = kinetic_matrix(basis) + nuclear_attraction_matrix(basis, atoms)
    eri = eri_tensor(basis)
    e_nuc = nuclear_repulsion(atoms)

    # symmetric (Loewdin) orthogonalization
    s_vals, s_vecs = np.linalg.eigh(overlap)
    if s_vals.min() < 1e-8:
        raise ValueError("basis is (numerically) linearly dependent")
    x = s_vecs @ np.diag(s_vals ** -0.5) @ s_vecs.T

    def diagonalize(fock: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        f_ortho = x.T @ fock @ x
        energies, vectors = np.linalg.eigh(f_ortho)
        return energies, x @ vectors

    mo_energies, mo_coeff = diagonalize(hcore)
    occupied = mo_coeff[:, :n_occ]
    density = 2.0 * occupied @ occupied.T

    fock_history: list[np.ndarray] = []
    error_history: list[np.ndarray] = []
    energy = 0.0
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        fock = fock_matrix(hcore, eri, density)
        # DIIS error in the orthonormal basis: FDS - SDF
        error = x.T @ (fock @ density @ overlap
                       - overlap @ density @ fock) @ x
        fock_history.append(fock)
        error_history.append(error)
        if len(fock_history) > diis_size:
            fock_history.pop(0)
            error_history.pop(0)
        if len(fock_history) > 1:
            fock = _diis_extrapolate(fock_history, error_history)

        mo_energies, mo_coeff = diagonalize(fock)
        occupied = mo_coeff[:, :n_occ]
        new_density = 2.0 * occupied @ occupied.T
        if damping > 0:
            new_density = (1 - damping) * new_density + damping * density

        new_energy = electronic_energy(
            hcore, fock_matrix(hcore, eri, new_density), new_density) + e_nuc
        delta_e = abs(new_energy - energy)
        delta_d = float(np.abs(new_density - density).max())
        density = new_density
        energy = new_energy
        if delta_e < conv_tol and delta_d < math_sqrt_tol(conv_tol):
            converged = True
            break

    return SCFResult(
        energy=energy, mo_coeff=mo_coeff, mo_energies=mo_energies,
        density=density, hcore=hcore, overlap=overlap, eri=eri,
        nuclear_energy=e_nuc, num_electrons=num_electrons,
        converged=converged, iterations=iteration)


def math_sqrt_tol(tol: float) -> float:
    """Density threshold paired with an energy threshold (sqrt scaling)."""
    return tol ** 0.5


def _diis_extrapolate(focks: list[np.ndarray], errors: list[np.ndarray]
                      ) -> np.ndarray:
    """Pulay DIIS: solve for the error-minimizing Fock combination."""
    m = len(focks)
    b = np.empty((m + 1, m + 1))
    b[-1, :] = -1.0
    b[:, -1] = -1.0
    b[-1, -1] = 0.0
    for i in range(m):
        for j in range(m):
            b[i, j] = float(np.sum(errors[i] * errors[j]))
    rhs = np.zeros(m + 1)
    rhs[-1] = -1.0
    try:
        weights = np.linalg.solve(b, rhs)[:m]
    except np.linalg.LinAlgError:
        return focks[-1]
    return sum(w * f for w, f in zip(weights, focks))
