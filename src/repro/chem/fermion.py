"""Second quantization: fermionic operators and the Jordan-Wigner map.

The electronic Hamiltonian in a spin-orbital basis is

    H = E_core + sum_{PQ} h_PQ a†_P a_Q
        + 1/2 sum_{PQRS} <PQ|RS> a†_P a†_Q a_S a_R

Jordan-Wigner represents each ladder operator as a Pauli polynomial,

    a†_j = (X_j - i Y_j)/2 * Z_0 ... Z_{j-1}
    a_j  = (X_j + i Y_j)/2 * Z_0 ... Z_{j-1}

so products of ladder operators become complex-weighted Pauli sums.  The
intermediate algebra runs over a small complex Pauli polynomial type; the
final Hamiltonian is Hermitian, its imaginary parts cancel, and the result
is exported as a real :class:`~repro.paulis.pauli_sum.PauliSum`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..paulis.pauli_sum import PauliSum
from ..paulis.table import PauliTable

# i-exponent of the product of two single-qubit Paulis, indexed by the
# code x + 2z (I=0, X=1, Z=2, Y=3): sigma_a sigma_b = i^PHASE * sigma_{a^b}.
# Derived from: XY=iZ, YZ=iX, ZX=iY and cyclic/anti-cyclic counterparts.
_PHASE = np.zeros((4, 4), dtype=np.int64)
_PHASE[1, 3] = 1   # X*Y = iZ
_PHASE[3, 1] = 3   # Y*X = -iZ
_PHASE[3, 2] = 1   # Y*Z = iX
_PHASE[2, 3] = 3   # Z*Y = -iX
_PHASE[2, 1] = 1   # Z*X = iY
_PHASE[1, 2] = 3   # X*Z = -iY


class PauliPolynomial:
    """A complex-weighted sum of canonical Pauli strings (internal helper).

    Terms live in a dict keyed by the (x, z) bit patterns; coefficients are
    complex.  Only the handful of operations the JW pipeline needs are
    implemented: scalar init, addition in place, polynomial product.
    """

    __slots__ = ("num_qubits", "terms")

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        self.terms: dict[tuple[bytes, bytes], complex] = {}

    @classmethod
    def scalar(cls, num_qubits: int, value: complex) -> "PauliPolynomial":
        poly = cls(num_qubits)
        zeros = np.zeros(num_qubits, dtype=bool)
        poly.add_term(value, zeros, zeros)
        return poly

    def add_term(self, coeff: complex, x: np.ndarray, z: np.ndarray) -> None:
        key = (x.tobytes(), z.tobytes())
        self.terms[key] = self.terms.get(key, 0.0) + coeff

    def add(self, other: "PauliPolynomial") -> None:
        for key, coeff in other.terms.items():
            self.terms[key] = self.terms.get(key, 0.0) + coeff

    def scaled(self, factor: complex) -> "PauliPolynomial":
        out = PauliPolynomial(self.num_qubits)
        out.terms = {k: v * factor for k, v in self.terms.items()}
        return out

    def product(self, other: "PauliPolynomial") -> "PauliPolynomial":
        out = PauliPolynomial(self.num_qubits)
        n = self.num_qubits
        for (xa_b, za_b), ca in self.terms.items():
            xa = np.frombuffer(xa_b, dtype=bool)
            za = np.frombuffer(za_b, dtype=bool)
            code_a = xa + 2 * za.astype(np.int64)
            for (xb_b, zb_b), cb in other.terms.items():
                xb = np.frombuffer(xb_b, dtype=bool)
                zb = np.frombuffer(zb_b, dtype=bool)
                code_b = xb + 2 * zb.astype(np.int64)
                exponent = int(_PHASE[code_a, code_b].sum()) % 4
                coeff = ca * cb * (1j) ** exponent
                out.add_term(coeff, xa ^ xb, za ^ zb)
        return out

    def to_pauli_sum(self, imag_tol: float = 1e-9) -> PauliSum:
        """Export as a real PauliSum; raises if imaginary parts survive."""
        xs, zs, coeffs = [], [], []
        for (x_b, z_b), coeff in self.terms.items():
            if abs(coeff) < 1e-12:
                continue
            if abs(coeff.imag) > imag_tol:
                raise ValueError("non-Hermitian operator: imaginary Pauli "
                                 f"coefficient {coeff}")
            xs.append(np.frombuffer(x_b, dtype=bool))
            zs.append(np.frombuffer(z_b, dtype=bool))
            coeffs.append(coeff.real)
        if not xs:
            zeros = np.zeros(self.num_qubits, dtype=bool)
            xs, zs, coeffs = [zeros], [zeros], [0.0]
        table = PauliTable(np.stack(xs), np.stack(zs))
        return PauliSum(table, np.array(coeffs))


def jordan_wigner_ladder(index: int, num_modes: int, creation: bool
                         ) -> PauliPolynomial:
    """JW image of ``a†_index`` (creation) or ``a_index``."""
    if not 0 <= index < num_modes:
        raise ValueError("mode index out of range")
    poly = PauliPolynomial(num_modes)
    z_string = np.zeros(num_modes, dtype=bool)
    z_string[:index] = True
    x = np.zeros(num_modes, dtype=bool)
    x[index] = True
    # X_j with the Z string
    poly.add_term(0.5, x, z_string.copy())
    # -+ i/2 * Y_j with the Z string (Y has both x and z bits set)
    zy = z_string.copy()
    zy[index] = True
    poly.add_term(-0.5j if creation else 0.5j, x.copy(), zy)
    return poly


@dataclass
class FermionHamiltonian:
    """Spin-orbital electronic Hamiltonian (dense coefficient tensors).

    Attributes:
        core_energy: Scalar part (nuclear repulsion + frozen core).
        one_body: ``h[P, Q]`` coefficients of ``a†_P a_Q``.
        two_body: ``<PQ|RS>`` coefficients of ``1/2 a†_P a†_Q a_S a_R``
            (physicist notation, spin-orbital indices).
    """

    core_energy: float
    one_body: np.ndarray
    two_body: np.ndarray

    @property
    def num_modes(self) -> int:
        return self.one_body.shape[0]

    def to_qubits_jordan_wigner(self, threshold: float = 1e-10) -> PauliSum:
        """Map to a qubit Hamiltonian with Jordan-Wigner."""
        n = self.num_modes
        total = PauliPolynomial.scalar(n, complex(self.core_energy))
        create = [jordan_wigner_ladder(j, n, creation=True) for j in range(n)]
        annihilate = [jordan_wigner_ladder(j, n, creation=False)
                      for j in range(n)]
        for p in range(n):
            for q in range(n):
                coeff = self.one_body[p, q]
                if abs(coeff) < threshold:
                    continue
                total.add(create[p].product(annihilate[q]).scaled(coeff))
        right_cache: dict[tuple[int, int], PauliPolynomial] = {}
        for p in range(n):
            for q in range(n):
                if p == q:
                    continue
                left = None
                for s in range(n):
                    for r in range(n):
                        if s == r:
                            continue
                        coeff = 0.5 * self.two_body[p, q, r, s]
                        if abs(coeff) < threshold:
                            continue
                        if left is None:
                            left = create[p].product(create[q])
                        right = right_cache.get((s, r))
                        if right is None:
                            right = annihilate[s].product(annihilate[r])
                            right_cache[(s, r)] = right
                        total.add(left.product(right).scaled(coeff))
        return total.to_pauli_sum()
