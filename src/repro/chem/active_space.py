"""Active-space reduction and the spin-orbital Hamiltonian tensors.

The paper limits every molecule to six spatial orbitals (ten qubits after
the parity reduction) by "restricting the active space" (Sec. 5.1.2): the
lowest core orbitals are frozen at double occupancy and their mean-field
interaction is folded into an effective one-body term plus a scalar core
energy; orbitals above the active window are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fermion import FermionHamiltonian
from .scf import SCFResult


@dataclass
class ActiveSpace:
    """An orbital window.

    Attributes:
        num_frozen: Doubly-occupied core orbitals folded away.
        num_active: Spatial orbitals kept in the quantum problem.
        num_active_electrons: Electrons left for the active window.
    """

    num_frozen: int
    num_active: int
    num_active_electrons: int

    @property
    def num_alpha(self) -> int:
        if self.num_active_electrons % 2:
            raise ValueError("only closed-shell active spaces supported")
        return self.num_active_electrons // 2

    num_beta = num_alpha


def mo_integrals(scf: SCFResult) -> tuple[np.ndarray, np.ndarray]:
    """Transform AO integrals to the MO basis (chemist ERI)."""
    c = scf.mo_coeff
    hcore_mo = c.T @ scf.hcore @ c
    eri_mo = np.einsum("pi,qj,pqrs,rk,sl->ijkl", c, c, scf.eri, c, c,
                       optimize=True)
    return hcore_mo, eri_mo


def active_space_tensors(scf: SCFResult, space: ActiveSpace
                         ) -> tuple[float, np.ndarray, np.ndarray]:
    """Frozen-core energy and active-window MO tensors.

    Returns:
        ``(core_energy, h_eff, eri_active)`` with chemist-notation ERI; the
        core energy includes nuclear repulsion and the frozen orbitals'
        mean-field energy.
    """
    hcore_mo, eri_mo = mo_integrals(scf)
    n_mo = hcore_mo.shape[0]
    frozen = list(range(space.num_frozen))
    active = list(range(space.num_frozen, space.num_frozen + space.num_active))
    if space.num_frozen + space.num_active > n_mo:
        raise ValueError("active window exceeds the orbital count")
    expected = scf.num_electrons - 2 * space.num_frozen
    if space.num_active_electrons != expected:
        raise ValueError(
            f"active electrons should be {expected}, got "
            f"{space.num_active_electrons}")

    core_energy = scf.nuclear_energy
    for i in frozen:
        core_energy += 2.0 * hcore_mo[i, i]
        for j in frozen:
            core_energy += 2.0 * eri_mo[i, i, j, j] - eri_mo[i, j, j, i]

    h_eff = hcore_mo[np.ix_(active, active)].copy()
    for a_idx, p in enumerate(active):
        for b_idx, q in enumerate(active):
            for i in frozen:
                h_eff[a_idx, b_idx] += (2.0 * eri_mo[p, q, i, i]
                                        - eri_mo[p, i, i, q])
    eri_active = eri_mo[np.ix_(active, active, active, active)].copy()
    return core_energy, h_eff, eri_active


def spin_orbital_hamiltonian(core_energy: float, h_mo: np.ndarray,
                             eri_mo: np.ndarray) -> FermionHamiltonian:
    """Expand spatial MO tensors into spin-blocked spin-orbital tensors.

    Spin-orbital ordering is blocked: ``alpha_0..alpha_{m-1},
    beta_0..beta_{m-1}`` (the ordering the parity two-qubit reduction
    assumes).  Two-body coefficients are the physicist-notation
    ``<PQ|RS> = (pr|qs) * delta(sP,sR) * delta(sQ,sS)``.
    """
    m = h_mo.shape[0]
    n = 2 * m
    one_body = np.zeros((n, n))
    one_body[:m, :m] = h_mo
    one_body[m:, m:] = h_mo
    two_body = np.zeros((n, n, n, n))
    spatial = np.arange(m)
    for spin_p in (0, 1):
        for spin_q in (0, 1):
            p_off = spin_p * m
            q_off = spin_q * m
            # <PQ|RS>: spin of P must match R, spin of Q must match S
            block = np.einsum("prqs->pqrs", eri_mo)
            two_body[p_off:p_off + m, q_off:q_off + m,
                     p_off:p_off + m, q_off:q_off + m] = block
    return FermionHamiltonian(core_energy=core_energy, one_body=one_body,
                              two_body=two_body)
