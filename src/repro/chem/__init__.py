"""Mini quantum chemistry: integrals, RHF, mappings (PySCF/Nature substitute)."""

from .basis import ANGSTROM_TO_BOHR, Atom, BasisFunction, build_basis, nuclear_repulsion
from .scf import SCFResult, run_rhf
from .fermion import FermionHamiltonian, PauliPolynomial, jordan_wigner_ladder
from .mappings import (
    jw_to_parity,
    parity_cascade_circuit,
    parity_two_qubit_reduction,
    taper_qubits,
)
from .active_space import ActiveSpace, active_space_tensors, spin_orbital_hamiltonian
from .molecules import GEOMETRY_BUILDERS, hydrogen_chain_geometry, lithium_hydride_geometry, water_geometry
from .driver import ACTIVE_SPACES, MolecularProblem, molecular_hamiltonian

__all__ = [
    "ACTIVE_SPACES", "ANGSTROM_TO_BOHR", "ActiveSpace", "Atom",
    "BasisFunction", "FermionHamiltonian", "GEOMETRY_BUILDERS",
    "MolecularProblem", "PauliPolynomial", "SCFResult",
    "active_space_tensors", "build_basis", "hydrogen_chain_geometry",
    "jordan_wigner_ladder", "jw_to_parity", "lithium_hydride_geometry",
    "molecular_hamiltonian", "nuclear_repulsion", "parity_cascade_circuit",
    "parity_two_qubit_reduction", "run_rhf", "spin_orbital_hamiltonian",
    "taper_qubits", "water_geometry",
]
