"""STO-3G basis set data and contracted Gaussian basis functions.

The paper's chemistry Hamiltonians are computed in the STO-3G basis
(Sec. 5.1.2) by PySCF; this module carries the published STO-3G exponents
and contraction coefficients for the three elements the benchmarks need
(H, Li, O) and turns atoms into lists of contracted Cartesian Gaussians.

Primitive normalization follows the standard closed form for Cartesian
Gaussians; contracted functions are renormalized numerically so their
self-overlap is exactly 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: exponents and contraction coefficients, per element and shell.
#: ``sp`` shells share exponents between the s and p contractions
#: (the standard STO-3G Pople scheme).
STO3G = {
    "H": [
        ("s", [3.425250914, 0.6239137298, 0.1688554040],
              [0.1543289673, 0.5353281423, 0.4446345422]),
    ],
    "Li": [
        ("s", [16.11957475, 2.936200663, 0.7946504870],
              [0.1543289673, 0.5353281423, 0.4446345422]),
        ("sp", [0.6362897469, 0.1478600533, 0.0480886784],
               [-0.09996722919, 0.3995128261, 0.7001154689],
               [0.1559162750, 0.6076837186, 0.3919573931]),
    ],
    "O": [
        ("s", [130.7093200, 23.80886050, 6.443608313],
              [0.1543289673, 0.5353281423, 0.4446345422]),
        ("sp", [5.033151319, 1.169596125, 0.3803889600],
               [-0.09996722919, 0.3995128261, 0.7001154689],
               [0.1559162750, 0.6076837186, 0.3919573931]),
    ],
}

ATOMIC_NUMBERS = {"H": 1, "Li": 3, "O": 8}

#: 1 angstrom in bohr.
ANGSTROM_TO_BOHR = 1.8897259886


@dataclass
class BasisFunction:
    """One contracted Cartesian Gaussian.

    Attributes:
        center: Nuclear position (bohr).
        lmn: Cartesian angular momentum triple, e.g. ``(1, 0, 0)`` for p_x.
        exps: Primitive exponents.
        coefs: Contraction coefficients (for normalized primitives).
        norms: Per-primitive normalization constants (filled in __post_init__).
    """

    center: np.ndarray
    lmn: tuple[int, int, int]
    exps: np.ndarray
    coefs: np.ndarray
    norms: np.ndarray = field(default=None)

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=float)
        self.exps = np.asarray(self.exps, dtype=float)
        self.coefs = np.asarray(self.coefs, dtype=float)
        self.norms = np.array([_primitive_norm(a, self.lmn) for a in self.exps])
        self._normalize_contraction()

    def _normalize_contraction(self) -> None:
        """Scale coefficients so the contracted self-overlap equals 1."""
        from .integrals import overlap_primitive

        total = 0.0
        for ca, na, aa in zip(self.coefs, self.norms, self.exps):
            for cb, nb, ab in zip(self.coefs, self.norms, self.exps):
                total += ca * cb * na * nb * overlap_primitive(
                    aa, self.lmn, self.center, ab, self.lmn, self.center)
        self.coefs = self.coefs / math.sqrt(total)

    @property
    def angular_momentum(self) -> int:
        return sum(self.lmn)


def _primitive_norm(alpha: float, lmn: tuple[int, int, int]) -> float:
    """Normalization of a primitive Cartesian Gaussian x^l y^m z^n e^{-a r^2}."""
    l, m, n = lmn
    numerator = (2 * alpha / math.pi) ** 1.5 * (4 * alpha) ** (l + m + n)
    denominator = (_double_factorial(2 * l - 1) * _double_factorial(2 * m - 1)
                   * _double_factorial(2 * n - 1))
    return math.sqrt(numerator / denominator)


def _double_factorial(k: int) -> int:
    if k <= 0:
        return 1
    out = 1
    while k > 0:
        out *= k
        k -= 2
    return out


@dataclass
class Atom:
    symbol: str
    position: np.ndarray  # bohr

    @property
    def charge(self) -> int:
        return ATOMIC_NUMBERS[self.symbol]


def build_basis(atoms: list[Atom]) -> list[BasisFunction]:
    """Expand a geometry into its STO-3G contracted basis functions.

    AO ordering: per atom in input order, shells in data-file order, with
    ``sp`` shells contributing s, p_x, p_y, p_z (in that order).
    """
    functions: list[BasisFunction] = []
    for atom in atoms:
        if atom.symbol not in STO3G:
            raise ValueError(f"no STO-3G data for element {atom.symbol!r}")
        for shell in STO3G[atom.symbol]:
            kind, exps = shell[0], shell[1]
            if kind == "s":
                functions.append(BasisFunction(atom.position, (0, 0, 0),
                                               exps, shell[2]))
            elif kind == "sp":
                s_coefs, p_coefs = shell[2], shell[3]
                functions.append(BasisFunction(atom.position, (0, 0, 0),
                                               exps, s_coefs))
                for lmn in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
                    functions.append(BasisFunction(atom.position, lmn,
                                                   exps, p_coefs))
            else:
                raise ValueError(f"unsupported shell type {kind!r}")
    return functions


def nuclear_repulsion(atoms: list[Atom]) -> float:
    """Classical Coulomb repulsion between the nuclei (hartree)."""
    energy = 0.0
    for i, a in enumerate(atoms):
        for b in atoms[i + 1:]:
            distance = float(np.linalg.norm(a.position - b.position))
            energy += a.charge * b.charge / distance
    return energy
