"""Noise models: device parameters, Clifford projection, Pauli twirling."""

from .model import NoiseModel
from .clifford_model import CliffordNoiseModel, sample_noisy_energy
from .twirling import (
    pauli_channel_attenuation,
    pauli_twirl_probabilities,
    twirled_relaxation_probabilities,
)

__all__ = [
    "CliffordNoiseModel", "NoiseModel", "pauli_channel_attenuation",
    "pauli_twirl_probabilities", "sample_noisy_energy",
    "twirled_relaxation_probabilities",
]
