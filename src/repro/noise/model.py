"""Device noise models: the parameters Clapton extracts from calibration.

A :class:`NoiseModel` collects, per physical qubit / qubit pair, exactly the
quantities the paper's framework reads from IBM backend calibration data
(Sec. 5.2.2): depolarizing gate-error strengths, thermal decay times T1/T2,
gate durations, and asymmetric readout misassignment probabilities.

Two consumers share one model instance:

* the **full device model** (:mod:`repro.densesim.evaluator`) applies every
  channel exactly -- including non-Clifford amplitude damping -- and defines
  the "device (model) evaluation" energies of Figure 5;
* the **Clifford noise model** (:mod:`repro.noise.clifford_model`) keeps only
  the Pauli-channel part (depolarizing + readout flips, optionally
  Pauli-twirled relaxation), which is what Clapton's loss L_N can afford to
  simulate classically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..densesim import channels as ch


@dataclass(frozen=True)
class ChannelSpec:
    """One noise channel in structured (closed-form-applicable) form.

    Kinds:
        ``"depol"``: params ``(p,)`` -- depolarizing of strength p.
        ``"relax"``: params ``(gamma, eta)`` -- thermal relaxation with
            decay probability gamma and coherence retention eta.
        ``"unitary_zz"``: params ``(angle,)`` -- coherent exp(-i angle Z x Z).
        ``"pauli1q"``: params ``(p_x, p_y, p_z)`` -- single-qubit stochastic
            Pauli channel (the logical-qubit error model of Sec. 8).
    """

    kind: str
    qubits: tuple[int, ...]
    params: tuple[float, ...]

    def kraus_operators(self) -> list[np.ndarray]:
        """Equivalent Kraus set (reference path used in tests)."""
        if self.kind == "depol":
            return ch.depolarizing_kraus(self.params[0], len(self.qubits))
        if self.kind == "relax":
            gamma, eta = self.params
            damping = ch.amplitude_damping_kraus(gamma)
            # top up dephasing so total coherence retention equals eta
            base = float(np.sqrt(1.0 - gamma))
            lam = 1.0 - min(1.0, (eta / base) ** 2) if base > 0 else 0.0
            return ch.compose_kraus(damping, ch.phase_damping_kraus(lam))
        if self.kind == "unitary_zz":
            phase = np.exp(-1j * self.params[0])
            return [np.diag([phase, phase.conjugate(),
                             phase.conjugate(), phase])]
        if self.kind == "pauli1q":
            from ..paulis.pauli import PAULI_MATRICES

            px, py, pz = self.params
            ops = [np.sqrt(max(0.0, 1 - px - py - pz)) * PAULI_MATRICES["I"]]
            for p, label in zip((px, py, pz), "XYZ"):
                if p > 0:
                    ops.append(np.sqrt(p) * PAULI_MATRICES[label])
            return ops
        raise ValueError(f"unknown channel kind {self.kind!r}")


def _per_qubit(value, num_qubits: int) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        arr = np.full(num_qubits, float(arr))
    if arr.shape != (num_qubits,):
        raise ValueError(f"expected scalar or length-{num_qubits} array")
    return arr


@dataclass
class NoiseModel:
    """Per-qubit noise parameters of a device (or synthetic sweep point).

    Attributes:
        num_qubits: Size of the physical register.
        depol_1q: Single-qubit depolarizing strength per qubit.
        depol_2q_default: Two-qubit depolarizing strength used for pairs
            absent from ``depol_2q``.
        depol_2q: Optional per-pair strengths keyed by sorted qubit pair.
        t1: Amplitude-damping decay time per qubit, in seconds
            (``None`` disables thermal relaxation entirely).
        t2: Total dephasing time per qubit, clamped to ``2 * t1``.
        readout_p01: P(report 1 | state 0) per qubit.
        readout_p10: P(report 0 | state 1) per qubit.
        gate_time_1q: Duration of single-qubit gates (s).
        gate_time_2q: Duration of two-qubit gates (s).
        include_relaxation: Whether the *full* model applies thermal
            relaxation channels (the Clifford model never does unless
            twirling is requested explicitly).
        coherent_zz_angle_2q: Coherent ``exp(-i * angle * Z x Z)``
            over-rotation appended after every two-qubit gate.  Zero for
            calibrated models; the hanoi *hardware twin* sets it non-zero to
            emulate device effects absent from any calibration-derived model
            (the model-device discrepancy studied in Sec. 6.1).
    """

    num_qubits: int
    depol_1q: np.ndarray
    depol_2q_default: float
    depol_2q: dict[tuple[int, int], float] = field(default_factory=dict)
    t1: np.ndarray | None = None
    t2: np.ndarray | None = None
    readout_p01: np.ndarray = None
    readout_p10: np.ndarray = None
    gate_time_1q: float = 35e-9
    gate_time_2q: float = 300e-9
    include_relaxation: bool = True
    coherent_zz_angle_2q: float = 0.0
    #: schedule thermal relaxation on *idle* qubits as well (ASAP schedule
    #: with per-qubit clocks).  Only the full density-matrix model honours
    #: this -- the Clifford model never sees relaxation, which is exactly
    #: the modeling gap the paper studies.
    include_idle_relaxation: bool = False
    #: per-qubit (p_x, p_y, p_z) Pauli-flip channel after every gate, the
    #: discretized error model of error-corrected logical qubits that the
    #: paper's conclusion (Sec. 8) points to.  ``None`` disables it.
    logical_flip_probs: tuple[float, float, float] | None = None

    def __post_init__(self):
        n = self.num_qubits
        self.depol_1q = _per_qubit(self.depol_1q, n)
        if self.readout_p01 is None:
            self.readout_p01 = np.zeros(n)
        if self.readout_p10 is None:
            self.readout_p10 = np.zeros(n)
        self.readout_p01 = _per_qubit(self.readout_p01, n)
        self.readout_p10 = _per_qubit(self.readout_p10, n)
        if self.t1 is not None:
            self.t1 = _per_qubit(self.t1, n)
            self.t2 = (_per_qubit(self.t2, n) if self.t2 is not None
                       else self.t1.copy())
            self.t2 = np.minimum(self.t2, 2 * self.t1)
        self.depol_2q = {tuple(sorted(k)): float(v)
                         for k, v in self.depol_2q.items()}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_qubits: int, depol_1q: float = 1e-3,
                depol_2q: float = 1e-2, readout: float = 2e-2,
                t1: float | None = None, t2: float | None = None,
                **kwargs) -> "NoiseModel":
        """Globally uniform parameters -- the setting of the Fig. 7/8 sweeps."""
        return cls(num_qubits=num_qubits, depol_1q=depol_1q,
                   depol_2q_default=depol_2q,
                   readout_p01=readout, readout_p10=readout,
                   t1=(np.full(num_qubits, t1) if t1 is not None else None),
                   t2=(np.full(num_qubits, t2) if t2 is not None else None),
                   **kwargs)

    @classmethod
    def noiseless(cls, num_qubits: int) -> "NoiseModel":
        return cls(num_qubits=num_qubits, depol_1q=0.0, depol_2q_default=0.0,
                   t1=None, include_relaxation=False)

    @classmethod
    def logical(cls, num_qubits: int, flip_x: float = 1e-4,
                flip_z: float = 1e-4, readout: float = 1e-4) -> "NoiseModel":
        """Error-corrected-era model (Sec. 8): discrete bit/phase flips.

        No depolarizing continuum, no relaxation -- just independent X and Z
        flips after every gate (``p_y = p_x * p_z`` is second order and
        dropped) and a small residual logical readout error.
        """
        return cls(num_qubits=num_qubits, depol_1q=0.0, depol_2q_default=0.0,
                   t1=None, include_relaxation=False,
                   readout_p01=readout, readout_p10=readout,
                   logical_flip_probs=(flip_x, 0.0, flip_z))

    def with_overrides(self, **kwargs) -> "NoiseModel":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # JSON round trip (campaign specs ship noise models between workers)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form; inverse of :meth:`from_dict`."""
        return {
            "num_qubits": self.num_qubits,
            "depol_1q": np.asarray(self.depol_1q).tolist(),
            "depol_2q_default": float(self.depol_2q_default),
            "depol_2q": [[int(a), int(b), float(p)]
                         for (a, b), p in sorted(self.depol_2q.items())],
            "t1": None if self.t1 is None else np.asarray(self.t1).tolist(),
            "t2": None if self.t2 is None else np.asarray(self.t2).tolist(),
            "readout_p01": np.asarray(self.readout_p01).tolist(),
            "readout_p10": np.asarray(self.readout_p10).tolist(),
            "gate_time_1q": float(self.gate_time_1q),
            "gate_time_2q": float(self.gate_time_2q),
            "include_relaxation": bool(self.include_relaxation),
            "coherent_zz_angle_2q": float(self.coherent_zz_angle_2q),
            "include_idle_relaxation": bool(self.include_idle_relaxation),
            "logical_flip_probs": (
                None if self.logical_flip_probs is None
                else [float(p) for p in self.logical_flip_probs]),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NoiseModel":
        flips = data.get("logical_flip_probs")
        return cls(
            num_qubits=data["num_qubits"],
            depol_1q=np.asarray(data["depol_1q"], dtype=float),
            depol_2q_default=data["depol_2q_default"],
            depol_2q={(a, b): p for a, b, p in data.get("depol_2q", [])},
            t1=(None if data.get("t1") is None
                else np.asarray(data["t1"], dtype=float)),
            t2=(None if data.get("t2") is None
                else np.asarray(data["t2"], dtype=float)),
            readout_p01=np.asarray(data["readout_p01"], dtype=float),
            readout_p10=np.asarray(data["readout_p10"], dtype=float),
            gate_time_1q=data.get("gate_time_1q", 35e-9),
            gate_time_2q=data.get("gate_time_2q", 300e-9),
            include_relaxation=data.get("include_relaxation", True),
            coherent_zz_angle_2q=data.get("coherent_zz_angle_2q", 0.0),
            include_idle_relaxation=data.get("include_idle_relaxation",
                                             False),
            logical_flip_probs=(None if flips is None else tuple(flips)),
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def two_qubit_depol(self, a: int, b: int) -> float:
        return self.depol_2q.get(tuple(sorted((a, b))), self.depol_2q_default)

    def gate_depol(self, inst) -> float:
        """Depolarizing strength attached to one instruction."""
        if len(inst.qubits) == 1:
            return float(self.depol_1q[inst.qubits[0]])
        return self.two_qubit_depol(*inst.qubits)

    def gate_duration(self, inst) -> float:
        return self.gate_time_1q if len(inst.qubits) == 1 else self.gate_time_2q

    def symmetric_readout_flip(self) -> np.ndarray:
        """Per-qubit symmetrized flip probability ``(p01 + p10) / 2``."""
        return 0.5 * (self.readout_p01 + self.readout_p10)

    def readout_z_attenuation(self) -> np.ndarray:
        """Factor multiplying ``<Z_k>`` under the asymmetric confusion model.

        ``E[(-1)^reported] = (1 - p01 - p10) <Z_k> + (p10 - p01)``; the linear
        coefficient is the attenuation used by both evaluators (the constant
        offset vanishes for symmetric error and is second-order otherwise).
        """
        return 1.0 - self.readout_p01 - self.readout_p10

    # ------------------------------------------------------------------
    # Full-model channels
    # ------------------------------------------------------------------
    def channels_after(self, inst) -> list["ChannelSpec"]:
        """Structured noise channels appended after one instruction.

        The density-matrix evaluator dispatches on the channel kind and
        applies each in closed form (no Kraus-operator enumeration).
        """
        out: list[ChannelSpec] = []
        p = self.gate_depol(inst)
        if p > 0:
            out.append(ChannelSpec("depol", inst.qubits, (float(p),)))
        if self.coherent_zz_angle_2q != 0.0 and len(inst.qubits) == 2:
            out.append(ChannelSpec("unitary_zz", inst.qubits,
                                   (float(self.coherent_zz_angle_2q),)))
        if self.logical_flip_probs is not None:
            for q in inst.qubits:
                out.append(ChannelSpec("pauli1q", (q,),
                                       tuple(float(p)
                                             for p in self.logical_flip_probs)))
        if self.include_relaxation and self.t1 is not None:
            duration = self.gate_duration(inst)
            for q in inst.qubits:
                gamma = 1.0 - np.exp(-duration / float(self.t1[q]))
                eta = float(np.exp(-duration / float(self.t2[q])))
                out.append(ChannelSpec("relax", (q,), (float(gamma), eta)))
        return out

    def kraus_after(self, inst) -> list[tuple[list[np.ndarray], tuple[int, ...]]]:
        """Kraus form of :meth:`channels_after` (tests, reference path)."""
        out: list[tuple[list[np.ndarray], tuple[int, ...]]] = []
        for spec in self.channels_after(inst):
            out.append((spec.kraus_operators(), spec.qubits))
        return out

    def relaxation_spec(self, qubit: int, duration: float
                        ) -> "ChannelSpec | None":
        """Relaxation channel for one qubit over an idle/busy window."""
        if self.t1 is None or duration <= 0:
            return None
        gamma = 1.0 - float(np.exp(-duration / float(self.t1[qubit])))
        eta = float(np.exp(-duration / float(self.t2[qubit])))
        return ChannelSpec("relax", (qubit,), (gamma, eta))
