"""Pauli twirling: project arbitrary channels onto Pauli channels.

The Clifford noise model can only represent Pauli (stochastic) channels.
Thermal relaxation is not one -- amplitude damping has coherent Kraus
structure -- but its *Pauli twirl* is, and is the standard classically
simulable surrogate.  The paper's stim model omits relaxation entirely
(Clapton instead counteracts it structurally by transforming toward |0>);
we expose the twirled variant as an optional extension so its contribution
can be measured in the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..paulis.pauli import PAULI_MATRICES


def pauli_twirl_probabilities(kraus: Sequence[np.ndarray]) -> np.ndarray:
    """Probabilities ``(p_I, p_X, p_Y, p_Z)`` of the twirled 1-qubit channel.

    For a channel with Kraus set {K}, the Pauli-twirled channel applies Pauli
    ``sigma`` with probability ``p_sigma = sum_K |tr(sigma K) / 2|^2``.
    """
    probs = []
    for label in "IXYZ":
        sigma = PAULI_MATRICES[label]
        probs.append(sum(abs(np.trace(sigma @ k) / 2.0) ** 2 for k in kraus))
    probs = np.asarray(probs, dtype=float)
    if not math.isclose(probs.sum(), 1.0, abs_tol=1e-9):
        raise ValueError("twirled probabilities do not sum to 1 "
                         "(channel not trace preserving?)")
    return probs


def twirled_relaxation_probabilities(duration: float, t1: float, t2: float
                                     ) -> np.ndarray:
    """Twirl of the thermal-relaxation channel over ``duration``.

    Closed form: with ``gamma = 1 - exp(-t/T1)`` and off-diagonal factor
    ``eta = exp(-t/T2)``,

        p_X = p_Y = gamma / 4
        p_Z = (1 - gamma/2) / 2 - eta / 2
        p_I = 1 - p_X - p_Y - p_Z
    """
    from ..densesim.channels import thermal_relaxation_kraus

    return pauli_twirl_probabilities(thermal_relaxation_kraus(duration, t1, t2))


def pauli_channel_attenuation(probs: np.ndarray) -> np.ndarray:
    """Heisenberg-picture attenuation of ``(I, X, Y, Z)`` observables.

    A Pauli channel is diagonal in the Pauli basis: an observable ``W`` is
    scaled by ``sum_sigma p_sigma * (-1)^{[sigma, W]}``.  Returns the four
    factors for ``W in (I, X, Y, Z)`` (the identity factor is always 1).
    """
    p_i, p_x, p_y, p_z = probs
    return np.array([
        1.0,
        p_i + p_x - p_y - p_z,
        p_i - p_x + p_y - p_z,
        p_i - p_x - p_y + p_z,
    ])
