"""The Clifford noise model: Clapton's classically efficient L_N evaluator.

The paper evaluates the noisy cost term (Eq. 9)

    L_N(gamma) = <0| A~†(0) H(gamma) A~(0) |0>

with stim by sampling stochastic-Pauli noise shots.  Because every modeled
channel is a *Pauli channel* and the skeleton ``A(0)`` is Clifford, the same
quantity has a closed form: Pauli channels are diagonal in the Pauli
(Heisenberg) basis, so each Hamiltonian term picks up a scalar attenuation
factor at every noise location as it is pulled back through the circuit:

* 1q depolarizing of strength ``p``: factor ``1 - 4p/3`` if the term acts
  non-trivially on the gate qubit;
* 2q depolarizing of strength ``p``: factor ``1 - 16p/15`` if the term
  touches either gate qubit;
* readout flip ``p_k``: factor ``1 - 2 p_k`` per measured support qubit;
* (optional extension) Pauli-twirled thermal relaxation: a per-qubit,
  Pauli-dependent factor.

``noisy_zero_state_energy`` walks the circuit backward once, conjugating all
M terms simultaneously through gate tableaus and accumulating the factors --
an exact, deterministic O(M * L) evaluation that replaces stim's Monte Carlo
sampling (a sampling path is kept in :func:`sample_noisy_energy` for
validation and parity with the paper's implementation).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from ..circuits.ansatz import is_identity_angle
from ..circuits.circuit import Circuit, _INVERSE_NAME
from ..paulis.pauli_sum import PauliSum
from ..stabilizer.simulator import StabilizerSimulator
from ..stabilizer.tableau import CliffordTableau, apply_gate_to_table, gate_tableau
from .model import NoiseModel
from .twirling import pauli_channel_attenuation, twirled_relaxation_probabilities

_TWO_QUBIT_PAULIS = [(a, b) for a in "IXYZ" for b in "IXYZ"][1:]


def _inverse_gate_tableau(inst) -> CliffordTableau:
    if inst.spec.num_params:
        return gate_tableau(inst.name, tuple(-float(p) for p in inst.params))
    return gate_tableau(_INVERSE_NAME.get(inst.name, inst.name))


class CliffordNoiseModel:
    """Pauli-channel projection of a :class:`NoiseModel` for L_N evaluation.

    Args:
        noise_model: The device parameters.
        include_twirled_relaxation: Model T1/T2 as the Pauli-twirled
            relaxation channel.  Off by default to match the paper's stim
            model, which leaves relaxation out of the optimization loss;
            the ablation bench measures what turning it on buys.
        include_basis_prep_error: Attach one single-qubit depolarizing
            factor per X/Y support qubit of each measured term, modeling the
            noisy measurement-basis rotations (Sec. 4.2.3).
    """

    def __init__(self, noise_model: NoiseModel,
                 include_twirled_relaxation: bool = False,
                 include_basis_prep_error: bool = True,
                 packed: bool = True):
        self.noise_model = noise_model
        self.include_twirled_relaxation = include_twirled_relaxation
        self.include_basis_prep_error = include_basis_prep_error
        self.packed = packed
        self._twirl_cache: dict[tuple[int, float], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Attenuation pieces
    # ------------------------------------------------------------------
    def measurement_attenuations(self, table) -> np.ndarray:
        """Per-term factor from readout error and basis-prep gate error."""
        nm = self.noise_model
        att = nm.readout_z_attenuation()
        support = table.supports_mask()
        factors = np.prod(np.where(support, att[None, :], 1.0), axis=1)
        if self.include_basis_prep_error:
            prep = 1.0 - 4.0 * nm.depol_1q / 3.0
            factors = factors * np.prod(
                np.where(table.unpack_x(), prep[None, :], 1.0), axis=1)
        return factors

    def _relaxation_factors_by_code(self, qubit: int, duration: float
                                    ) -> np.ndarray:
        """Attenuation for codes ``x + 2z -> (I, X, Z, Y)`` on one qubit."""
        key = (qubit, duration)
        cached = self._twirl_cache.get(key)
        if cached is None:
            nm = self.noise_model
            probs = twirled_relaxation_probabilities(
                duration, float(nm.t1[qubit]), float(nm.t2[qubit]))
            f_i, f_x, f_y, f_z = pauli_channel_attenuation(probs)
            cached = np.array([f_i, f_x, f_z, f_y])
            self._twirl_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # The L_N evaluation
    # ------------------------------------------------------------------
    def noisy_zero_state_energy(self, circuit: Circuit,
                                hamiltonian: PauliSum) -> float:
        """Exact noisy ``<0| A~† H A~ |0>`` for a Clifford circuit ``A``.

        Walks the circuit in reverse (Heisenberg picture), attenuating at
        each noise location and conjugating the whole term table through the
        inverse gate tableau.  With ``packed=True`` (the model's default)
        the walk runs on the word-packed layout -- bit-identical values,
        much less memory traffic at large n.
        """
        table = hamiltonian.table
        if self.packed:
            from ..paulis.packed_table import PackedPauliTable

            table = PackedPauliTable.from_table(table)
        return self.noisy_zero_state_energy_table(
            circuit, table, hamiltonian.coefficients)

    def noisy_zero_state_energy_table(self, circuit: Circuit, table,
                                      coefficients: np.ndarray) -> float:
        """Table-level variant used by Clapton's hot loop.

        Accepts a raw :class:`~repro.paulis.table.PauliTable` (rows may carry
        +-1 signs from a preceding transformation; they fold into the
        all-zeros expectation) so candidate evaluation avoids PauliSum
        canonicalization overhead.
        """
        values = self.noisy_zero_state_term_values(circuit, table)
        return float(np.asarray(coefficients) @ values)

    def noisy_zero_state_term_values(self, circuit: Circuit, table
                                     ) -> np.ndarray:
        """Per-term noisy expectations ``<0| A~† P_i A~ |0>`` (one pass).

        The coefficient-weighted sum of these is the L_N energy; the
        Clifford fast-path estimator exposes them individually.
        """
        return self.noisy_zero_state_term_values_steps(
            [(inst, None) for inst in reversed(circuit.instructions)], table)

    def noisy_zero_state_term_values_steps(self, steps, table) -> np.ndarray:
        """The same backward pass over an explicit *reverse-order* schedule.

        ``steps`` is a sequence of ``(instruction, rows)`` pairs already in
        reverse circuit order, where ``rows`` is either ``None`` (the gate
        applies to every table row) or a boolean row mask.  This is the
        population-batched entry point: stack one Hamiltonian table copy
        per genome (:meth:`~repro.paulis.table.PauliTable.tile`), build a
        schedule whose masks select each genome's rows for its own gate
        choices (:class:`CliffordCircuitPlan`), and all genomes' term
        values come out of one vectorized walk.  Every arithmetic step is
        row-wise, so masked results are bit-identical to running the
        serial pass per genome.

        ``table`` may be either representation (boolean-matrix or
        word-packed); the walk only uses the shared column-accessor
        surface, and packed results are bit-identical to the boolean path.
        """
        nm = self.noise_model
        table = table.copy()
        factors = self.measurement_attenuations(table)
        relax = (self.include_twirled_relaxation and nm.t1 is not None)
        flips = nm.logical_flip_probs
        flip_by_code = None
        if flips is not None:
            from .twirling import pauli_channel_attenuation

            probs = np.array([1.0 - sum(flips), *flips])
            f_i, f_x, f_y, f_z = pauli_channel_attenuation(probs)
            flip_by_code = np.array([f_i, f_x, f_z, f_y])
        for inst, rows in steps:
            qubits = list(inst.qubits)
            sel = slice(None) if rows is None else rows
            p = nm.gate_depol(inst)
            if p > 0:
                touched = table.touches_any(qubits)
                if rows is not None:
                    touched &= rows
                factor = (1.0 - 4.0 * p / 3.0) if len(qubits) == 1 \
                    else (1.0 - 16.0 * p / 15.0)
                factors[touched] *= factor
            if flip_by_code is not None:
                for q in qubits:
                    factors[sel] *= flip_by_code[table.codes_on(q, sel)]
            if relax:
                duration = nm.gate_duration(inst)
                for q in qubits:
                    by_code = self._relaxation_factors_by_code(q, duration)
                    factors[sel] *= by_code[table.codes_on(q, sel)]
            apply_gate_to_table(table, _inverse_gate_tableau(inst),
                                inst.qubits, rows=rows)
        return factors * table.expectation_all_zeros()


_TWO_PI = 2.0 * math.pi


class CliffordCircuitPlan:
    """Population schedule over a parameterized Clifford-point template.

    Precomputes, once per ansatz template, the instruction skeleton that
    :func:`~repro.circuits.ansatz.drop_identity_rotations` would leave after
    binding (explicit ``i`` gates and zero-angle *bound* rotations are
    dropped at plan time), then turns a ``(P, d)`` batch of parameter points
    into one reverse-order ``(instruction, rows)`` schedule: points sharing
    the exact same angle at a parameterized rotation are grouped under one
    boolean row mask, so a whole population is conjugated through
    :meth:`CliffordNoiseModel.noisy_zero_state_term_values_steps` (or plain
    masked :func:`~repro.stabilizer.tableau.apply_gate_to_table` calls) in
    a handful of numpy ops per slot.  The per-point instruction sequence is
    identical to ``drop_identity_rotations(template.bind(theta))``, so
    batched results are bit-identical to the serial schedule.
    """

    def __init__(self, template: Circuit, tol: float = 1e-12):
        from ..circuits.ansatz import bound_skeleton_steps

        self.num_qubits = template.num_qubits
        self.num_parameters = template.num_parameters
        self.tol = tol
        #: (instruction, parameter index | None); None = static instruction
        self.steps: list[tuple] = bound_skeleton_steps(template, tol)

    def _check_thetas(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        if thetas.shape[1] < self.num_parameters:
            raise ValueError(f"need {self.num_parameters} parameter values, "
                             f"got {thetas.shape[1]}")
        return thetas

    def is_clifford(self, thetas: np.ndarray) -> bool:
        """Whether every point binds the template to a Clifford circuit."""
        thetas = self._check_thetas(thetas)
        for inst, index in self.steps:
            if index is None:
                if not inst.is_bound or not inst.spec.is_clifford(
                        tuple(float(p) for p in inst.params)):
                    return False
                continue
            for angle in np.unique(thetas[:, index]):
                if is_identity_angle(float(angle), self.tol):
                    continue  # dropped as an exact identity
                if not inst.spec.is_clifford((float(angle),)):
                    return False
        return True

    def reverse_schedule(self, thetas: np.ndarray, rows_per_point: int
                         ) -> list[tuple]:
        """``(instruction, rows)`` pairs in reverse circuit order.

        ``rows_per_point`` is the number of stacked table rows each point
        owns (the Hamiltonian's term count M); point ``p`` owns the
        contiguous row block ``[p*M, (p+1)*M)``.  Static instructions get
        ``rows=None`` (every point shares them); parameterized rotations
        get one entry per distinct kept angle with the matching row mask,
        zero angles dropping out exactly as the serial identity-drop does.
        """
        thetas = self._check_thetas(thetas)
        num_points = len(thetas)
        point_of_row = np.repeat(np.arange(num_points), rows_per_point)
        schedule: list[tuple] = []
        for inst, index in reversed(self.steps):
            if index is None:
                schedule.append((inst, None))
                continue
            angles = thetas[:, index]
            # vectorized is_identity_angle over the whole population
            folded = angles % _TWO_PI
            kept = np.minimum(folded, _TWO_PI - folded) >= self.tol
            for angle in np.unique(angles[kept]):
                members = kept & (angles == angle)
                bound = replace(inst, params=(float(angle),))
                schedule.append((bound, members[point_of_row]))
        return schedule

    def reverse_leveled_schedule(self, thetas: np.ndarray,
                                 rows_per_point: int) -> list[tuple]:
        """Reverse schedule with parameterized slots fused per level.

        The packed-layout counterpart of :meth:`reverse_schedule`: static
        instructions come out as ``("gate", inst, None)`` exactly as
        before, but a parameterized rotation becomes one
        ``("slot", bound_insts, qubits, level_of_row)`` entry -- the
        distinct kept angles as bound instructions, plus a per-row level
        index (0 = dropped/identity) -- which
        :func:`~repro.stabilizer.tableau.apply_gate_levels_to_table`
        applies in a single unmasked pass.  Each row is touched by
        exactly one angle group in either schedule, so the per-row
        arithmetic (and hence the result) is bit-identical.
        """
        thetas = self._check_thetas(thetas)
        num_points = len(thetas)
        point_of_row = np.repeat(np.arange(num_points), rows_per_point)
        schedule: list[tuple] = []
        for inst, index in reversed(self.steps):
            if index is None:
                schedule.append(("gate", inst, None))
                continue
            angles = thetas[:, index]
            folded = angles % _TWO_PI
            kept = np.minimum(folded, _TWO_PI - folded) >= self.tol
            distinct = np.unique(angles[kept])
            if distinct.size == 0:
                continue
            level_of_point = np.zeros(num_points, dtype=np.int64)
            bound_insts = []
            for level, angle in enumerate(distinct, start=1):
                level_of_point[kept & (angles == angle)] = level
                bound_insts.append(replace(inst, params=(float(angle),)))
            schedule.append(("slot", bound_insts, list(inst.qubits),
                             level_of_point[point_of_row]))
        return schedule


def sample_noisy_energy(circuit: Circuit, hamiltonian: PauliSum,
                        noise_model: NoiseModel, shots: int,
                        rng: np.random.Generator,
                        include_basis_prep_error: bool = True) -> float:
    """Monte-Carlo estimate of the same quantity, stim style.

    Each shot samples a concrete Pauli-error realization of every gate's
    depolarizing channel, runs the stabilizer simulator, and evaluates all
    Hamiltonian terms exactly on the resulting stabilizer state.  Readout
    and basis-prep errors are folded in analytically (they commute with the
    estimate and sampling them would only add variance).

    Used in tests to validate :class:`CliffordNoiseModel` and in benchmarks
    to compare the deterministic evaluator's cost with the sampling cost the
    paper paid.
    """
    model = CliffordNoiseModel(noise_model,
                               include_basis_prep_error=include_basis_prep_error)
    meas_factors = model.measurement_attenuations(hamiltonian.table)
    coeffs = hamiltonian.coefficients * meas_factors
    terms = hamiltonian.table.to_paulis()
    total = 0.0
    from ..paulis.pauli import PauliString

    for _ in range(shots):
        sim = StabilizerSimulator(circuit.num_qubits)
        for inst in circuit.instructions:
            sim.apply_gate(inst.name, inst.qubits,
                           tuple(float(p) for p in inst.params))
            p = noise_model.gate_depol(inst)
            if p <= 0 or rng.random() >= p:
                continue
            if len(inst.qubits) == 1:
                label = "XYZ"[rng.integers(0, 3)]
                error = PauliString.from_sparse({inst.qubits[0]: label},
                                                circuit.num_qubits)
            else:
                a, b = _TWO_QUBIT_PAULIS[rng.integers(0, 15)]
                factors = {q: c for q, c in zip(inst.qubits, (a, b)) if c != "I"}
                error = PauliString.from_sparse(factors, circuit.num_qubits)
            sim.apply_pauli(error)
        total += float(coeffs @ np.array([sim.expectation(t) for t in terms]))
    return total / shots
