"""The Clifford noise model: Clapton's classically efficient L_N evaluator.

The paper evaluates the noisy cost term (Eq. 9)

    L_N(gamma) = <0| A~†(0) H(gamma) A~(0) |0>

with stim by sampling stochastic-Pauli noise shots.  Because every modeled
channel is a *Pauli channel* and the skeleton ``A(0)`` is Clifford, the same
quantity has a closed form: Pauli channels are diagonal in the Pauli
(Heisenberg) basis, so each Hamiltonian term picks up a scalar attenuation
factor at every noise location as it is pulled back through the circuit:

* 1q depolarizing of strength ``p``: factor ``1 - 4p/3`` if the term acts
  non-trivially on the gate qubit;
* 2q depolarizing of strength ``p``: factor ``1 - 16p/15`` if the term
  touches either gate qubit;
* readout flip ``p_k``: factor ``1 - 2 p_k`` per measured support qubit;
* (optional extension) Pauli-twirled thermal relaxation: a per-qubit,
  Pauli-dependent factor.

``noisy_zero_state_energy`` walks the circuit backward once, conjugating all
M terms simultaneously through gate tableaus and accumulating the factors --
an exact, deterministic O(M * L) evaluation that replaces stim's Monte Carlo
sampling (a sampling path is kept in :func:`sample_noisy_energy` for
validation and parity with the paper's implementation).
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit, _INVERSE_NAME
from ..paulis.pauli_sum import PauliSum
from ..stabilizer.simulator import StabilizerSimulator
from ..stabilizer.tableau import CliffordTableau, apply_gate_to_table, gate_tableau
from .model import NoiseModel
from .twirling import pauli_channel_attenuation, twirled_relaxation_probabilities

_TWO_QUBIT_PAULIS = [(a, b) for a in "IXYZ" for b in "IXYZ"][1:]


def _inverse_gate_tableau(inst) -> CliffordTableau:
    if inst.spec.num_params:
        return gate_tableau(inst.name, tuple(-float(p) for p in inst.params))
    return gate_tableau(_INVERSE_NAME.get(inst.name, inst.name))


class CliffordNoiseModel:
    """Pauli-channel projection of a :class:`NoiseModel` for L_N evaluation.

    Args:
        noise_model: The device parameters.
        include_twirled_relaxation: Model T1/T2 as the Pauli-twirled
            relaxation channel.  Off by default to match the paper's stim
            model, which leaves relaxation out of the optimization loss;
            the ablation bench measures what turning it on buys.
        include_basis_prep_error: Attach one single-qubit depolarizing
            factor per X/Y support qubit of each measured term, modeling the
            noisy measurement-basis rotations (Sec. 4.2.3).
    """

    def __init__(self, noise_model: NoiseModel,
                 include_twirled_relaxation: bool = False,
                 include_basis_prep_error: bool = True):
        self.noise_model = noise_model
        self.include_twirled_relaxation = include_twirled_relaxation
        self.include_basis_prep_error = include_basis_prep_error
        self._twirl_cache: dict[tuple[int, float], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Attenuation pieces
    # ------------------------------------------------------------------
    def measurement_attenuations(self, table) -> np.ndarray:
        """Per-term factor from readout error and basis-prep gate error."""
        nm = self.noise_model
        att = nm.readout_z_attenuation()
        support = table.supports_mask()
        factors = np.prod(np.where(support, att[None, :], 1.0), axis=1)
        if self.include_basis_prep_error:
            prep = 1.0 - 4.0 * nm.depol_1q / 3.0
            factors = factors * np.prod(
                np.where(table.x, prep[None, :], 1.0), axis=1)
        return factors

    def _relaxation_factors_by_code(self, qubit: int, duration: float
                                    ) -> np.ndarray:
        """Attenuation for codes ``x + 2z -> (I, X, Z, Y)`` on one qubit."""
        key = (qubit, duration)
        cached = self._twirl_cache.get(key)
        if cached is None:
            nm = self.noise_model
            probs = twirled_relaxation_probabilities(
                duration, float(nm.t1[qubit]), float(nm.t2[qubit]))
            f_i, f_x, f_y, f_z = pauli_channel_attenuation(probs)
            cached = np.array([f_i, f_x, f_z, f_y])
            self._twirl_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # The L_N evaluation
    # ------------------------------------------------------------------
    def noisy_zero_state_energy(self, circuit: Circuit,
                                hamiltonian: PauliSum) -> float:
        """Exact noisy ``<0| A~† H A~ |0>`` for a Clifford circuit ``A``.

        Walks the circuit in reverse (Heisenberg picture), attenuating at
        each noise location and conjugating the whole term table through the
        inverse gate tableau.
        """
        return self.noisy_zero_state_energy_table(
            circuit, hamiltonian.table, hamiltonian.coefficients)

    def noisy_zero_state_energy_table(self, circuit: Circuit, table,
                                      coefficients: np.ndarray) -> float:
        """Table-level variant used by Clapton's hot loop.

        Accepts a raw :class:`~repro.paulis.table.PauliTable` (rows may carry
        +-1 signs from a preceding transformation; they fold into the
        all-zeros expectation) so candidate evaluation avoids PauliSum
        canonicalization overhead.
        """
        values = self.noisy_zero_state_term_values(circuit, table)
        return float(np.asarray(coefficients) @ values)

    def noisy_zero_state_term_values(self, circuit: Circuit, table
                                     ) -> np.ndarray:
        """Per-term noisy expectations ``<0| A~† P_i A~ |0>`` (one pass).

        The coefficient-weighted sum of these is the L_N energy; the
        Clifford fast-path estimator exposes them individually.
        """
        nm = self.noise_model
        table = table.copy()
        factors = self.measurement_attenuations(table)
        relax = (self.include_twirled_relaxation and nm.t1 is not None)
        flips = nm.logical_flip_probs
        flip_by_code = None
        if flips is not None:
            from .twirling import pauli_channel_attenuation

            probs = np.array([1.0 - sum(flips), *flips])
            f_i, f_x, f_y, f_z = pauli_channel_attenuation(probs)
            flip_by_code = np.array([f_i, f_x, f_z, f_y])
        for inst in reversed(circuit.instructions):
            qubits = list(inst.qubits)
            p = nm.gate_depol(inst)
            if p > 0:
                touched = (table.x[:, qubits] | table.z[:, qubits]).any(axis=1)
                factor = (1.0 - 4.0 * p / 3.0) if len(qubits) == 1 \
                    else (1.0 - 16.0 * p / 15.0)
                factors[touched] *= factor
            if flip_by_code is not None:
                for q in qubits:
                    codes = (table.x[:, q].astype(np.int8)
                             + 2 * table.z[:, q].astype(np.int8))
                    factors *= flip_by_code[codes]
            if relax:
                duration = nm.gate_duration(inst)
                for q in qubits:
                    codes = (table.x[:, q].astype(np.int8)
                             + 2 * table.z[:, q].astype(np.int8))
                    factors *= self._relaxation_factors_by_code(q, duration)[codes]
            apply_gate_to_table(table, _inverse_gate_tableau(inst), inst.qubits)
        return factors * table.expectation_all_zeros()


def sample_noisy_energy(circuit: Circuit, hamiltonian: PauliSum,
                        noise_model: NoiseModel, shots: int,
                        rng: np.random.Generator,
                        include_basis_prep_error: bool = True) -> float:
    """Monte-Carlo estimate of the same quantity, stim style.

    Each shot samples a concrete Pauli-error realization of every gate's
    depolarizing channel, runs the stabilizer simulator, and evaluates all
    Hamiltonian terms exactly on the resulting stabilizer state.  Readout
    and basis-prep errors are folded in analytically (they commute with the
    estimate and sampling them would only add variance).

    Used in tests to validate :class:`CliffordNoiseModel` and in benchmarks
    to compare the deterministic evaluator's cost with the sampling cost the
    paper paid.
    """
    model = CliffordNoiseModel(noise_model,
                               include_basis_prep_error=include_basis_prep_error)
    meas_factors = model.measurement_attenuations(hamiltonian.table)
    coeffs = hamiltonian.coefficients * meas_factors
    terms = hamiltonian.table.to_paulis()
    total = 0.0
    from ..paulis.pauli import PauliString

    for _ in range(shots):
        sim = StabilizerSimulator(circuit.num_qubits)
        for inst in circuit.instructions:
            sim.apply_gate(inst.name, inst.qubits,
                           tuple(float(p) for p in inst.params))
            p = noise_model.gate_depol(inst)
            if p <= 0 or rng.random() >= p:
                continue
            if len(inst.qubits) == 1:
                label = "XYZ"[rng.integers(0, 3)]
                error = PauliString.from_sparse({inst.qubits[0]: label},
                                                circuit.num_qubits)
            else:
                a, b = _TWO_QUBIT_PAULIS[rng.integers(0, 15)]
                factors = {q: c for q, c in zip(inst.qubits, (a, b)) if c != "I"}
                error = PauliString.from_sparse(factors, circuit.num_qubits)
            sim.apply_pauli(error)
        total += float(coeffs @ np.array([sim.expectation(t) for t in terms]))
    return total / shots
