"""Trace-context propagation + span shipping for the campaign fleet.

One campaign, one trace: the scheduler mints a 16-hex ``trace_id`` per
campaign and attaches a :class:`TraceContext` to every lease grant
(``grant["trace"]``).  The worker tags its ``worker.task`` span with the
context, so every span in the fleet is attributable to (trace, campaign,
task, worker) without any clock coordination between hosts.

Workers do not write their own trace files when connected to a service:
``run_worker`` installs a :class:`ShippingTracer` that buffers finished
spans in memory and batch-ships them to ``POST /traces`` after each
completed task (and on idle polls).  The server merges every worker's
batch into a single per-campaign ``trace.jsonl``
(:meth:`~repro.campaigns.service.state.Campaign.ingest_spans`):

- span ids are namespaced ``"<worker_id>:<local_id>"`` so parent links
  survive the merge (the summary treats ids as opaque keys),
- ``start`` offsets are rebased from each worker's monotonic clock onto
  the campaign's unix timebase via the batch's ``unix_t0`` anchor,
- each span is stamped with a top-level ``"worker"`` field for
  per-worker breakdowns (word-ops/s, perfetto process lanes).

Shipping failures requeue the batch -- a briefly unreachable collector
drops nothing, and a SIGKILL'd worker loses only its unshipped tail
(the chaos test bounds that loss at <5% of wall clock).
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass

from .tracer import _RecordingBase


def new_trace_id() -> str:
    """16-hex campaign trace id (uuid4 tail; no RNG-stream contact)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The ids that tie a leased task back to its campaign trace."""

    trace_id: str
    parent_span: str | int | None = None
    campaign: str | None = None
    task_id: str | None = None
    worker: str | None = None

    def to_dict(self) -> dict:
        """Wire form (lease payloads); omits empty fields."""
        out = {"trace_id": self.trace_id}
        for key in ("parent_span", "campaign", "task_id", "worker"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict | None) -> "TraceContext | None":
        """Parse a wire payload; ``None``/malformed -> ``None`` (old
        schedulers just don't send one)."""
        if not isinstance(payload, dict) or "trace_id" not in payload:
            return None
        return cls(trace_id=str(payload["trace_id"]),
                   parent_span=payload.get("parent_span"),
                   campaign=payload.get("campaign"),
                   task_id=payload.get("task_id"),
                   worker=payload.get("worker"))

    def tags(self) -> dict:
        """Span tags for a ``worker.task`` span (drops empties)."""
        return {k: v for k, v in (("trace", self.trace_id),
                                  ("campaign", self.campaign),
                                  ("task_id", self.task_id),
                                  ("worker", self.worker))
                if v is not None}


class ShippingTracer(_RecordingBase):
    """Buffers finished spans for batch shipment to a collector.

    Drop-in recording tracer for ``set_tracer``: spans nest through the
    usual per-thread stacks and are appended to an in-memory buffer on
    finish.  The worker loop calls :meth:`drain` at natural barriers
    (task complete, idle poll) and POSTs the batch; :meth:`requeue`
    puts a failed batch back at the front.

    ``underlying`` optionally receives every record too (pass-through),
    so a worker started with ``--trace PATH`` keeps its local file
    while also shipping.  The shipper owns the span ids either way, so
    parent links are consistent in both sinks.
    """

    def __init__(self, underlying=None):
        super().__init__()
        self.unix_t0 = time.time()
        self._buffer: list[dict] = []
        self._buffer_lock = threading.Lock()
        self._underlying = underlying

    def _emit(self, record: dict) -> None:
        with self._buffer_lock:
            self._buffer.append(record)
        if self._underlying is not None:
            self._underlying._emit(record)

    def pending(self) -> int:
        with self._buffer_lock:
            return len(self._buffer)

    def drain(self) -> list[dict]:
        """Take every buffered record (oldest first)."""
        with self._buffer_lock:
            batch, self._buffer = self._buffer, []
        return batch

    def requeue(self, records: list[dict]) -> None:
        """Put a failed batch back ahead of newer records."""
        if not records:
            return
        with self._buffer_lock:
            self._buffer[:0] = records

    def batch(self, worker_id: str, campaign: str | None = None,
              spans: list[dict] | None = None) -> dict:
        """Wire payload for ``POST /traces`` from drained ``spans``."""
        return {"worker_id": worker_id,
                "campaign": campaign,
                "unix_t0": self.unix_t0,
                "spans": self.drain() if spans is None else spans}

    def close(self) -> None:
        # does not own `underlying`; the installer flushes via drain()
        return None
