"""Always-on counters for the word-packed Clifford kernels.

The packed conjugation path (``paulis/packed_table.py``,
``stabilizer/tableau.py``) is the hot loop below every
``loss.evaluate_many`` span; this module gives it a profile without
timing it.  Call sites bump plain integer attributes on the process
singleton :data:`KERNEL` -- a few Python int adds per *gate
application* (never per row or word), derived from shapes the kernel
already computed, so the counters stay inside the <2% observability
overhead budget (``benchmarks/test_obs_overhead.py`` asserts they
advance *and* that the budget holds).

Counter vocabulary:

- ``words``         uint64 words run through a LUT/XOR update
- ``rows``          Pauli-table rows touched by those updates
- ``lut_hits`` / ``lut_misses``   conjugation + leveled LUT cache
- ``fused_passes``  fused leveled-LUT single passes (PR 9 fast path)

Process-pool children bump their own (fresh) singleton; the engine
ships ``KERNEL.snapshot()`` deltas back over the existing cache-stats
return path and the parent folds them in with :meth:`KernelCounters.
add` -- the same aggregation idiom as ``EngineResult.cache_stats``.

:func:`publish_kernel_metrics` mirrors the singleton into Prometheus
counters (monotonic, delta-since-last-publish) so ``GET /metrics``
exposes fleet-wide word throughput.
"""

from __future__ import annotations

import threading

from .metrics import REGISTRY

#: The snapshot/delta field order (stable; used by wire payloads too).
FIELDS = ("words", "rows", "lut_hits", "lut_misses", "fused_passes")


class KernelCounters:
    """Plain-attribute counters: increments are unlocked int adds.

    Lock-free on purpose -- CPython attribute adds on ints can race
    across threads only by *losing* increments, never corrupting, and
    the packed kernels run single-threaded per loss evaluation; the
    accounting is a profile, not a ledger.
    """

    __slots__ = FIELDS

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.words = 0
        self.rows = 0
        self.lut_hits = 0
        self.lut_misses = 0
        self.fused_passes = 0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in FIELDS}

    def delta(self, since: dict) -> dict:
        """Counters advanced since a previous :meth:`snapshot`."""
        return {name: getattr(self, name) - since.get(name, 0)
                for name in FIELDS}

    def add(self, delta: dict) -> None:
        """Fold a child's delta into this (parent) singleton."""
        for name in FIELDS:
            value = delta.get(name, 0)
            if value:
                setattr(self, name, getattr(self, name) + int(value))


#: Process singleton every packed-kernel call site increments.
KERNEL = KernelCounters()

_PROM = {
    "words": REGISTRY.counter(
        "repro_kernel_words_total",
        "uint64 words conjugated by the packed kernels"),
    "rows": REGISTRY.counter(
        "repro_kernel_rows_total",
        "Pauli-table rows touched by packed kernel updates"),
    "lut_hits": REGISTRY.counter(
        "repro_kernel_lut_hits_total",
        "Conjugation/leveled LUT cache hits"),
    "lut_misses": REGISTRY.counter(
        "repro_kernel_lut_misses_total",
        "Conjugation/leveled LUT cache misses (builds)"),
    "fused_passes": REGISTRY.counter(
        "repro_kernel_fused_passes_total",
        "Fused leveled-LUT single passes over a packed table"),
}

_publish_lock = threading.Lock()
_published = {name: 0 for name in FIELDS}


def publish_kernel_metrics() -> None:
    """Mirror :data:`KERNEL` into Prometheus (idempotent, monotonic).

    Prometheus counters only go up, so each call publishes the delta
    since the last publish -- safe to call from ``/metrics`` scrapes at
    any frequency.
    """
    with _publish_lock:
        snap = KERNEL.snapshot()
        for name in FIELDS:
            advance = snap[name] - _published[name]
            if advance > 0:
                _PROM[name].inc(advance)
                _published[name] = snap[name]
