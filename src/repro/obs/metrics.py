"""Process-wide metric registry: Counter / Gauge / Histogram.

Metrics are cheap enough to stay always-on (a dict update behind a
lock per increment), so instrumented code increments them
unconditionally -- only span *recording* is gated on an active tracer.
Families are registered idempotently: ``REGISTRY.counter(name, help)``
returns the existing family when called twice, so modules can declare
the metrics they touch at import time without coordination.

Label sets are encoded as sorted ``(key, value)`` tuples, one sample
per distinct label set, matching the Prometheus data model.
:func:`render_prometheus` emits the text exposition format (version
0.0.4) that ``GET /metrics`` serves.
"""

from __future__ import annotations

import math
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets (seconds): sub-millisecond through minutes,
#: wide enough for both heartbeat round trips and whole-task durations.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(key: tuple, extra: tuple = ()) -> str:
    items = tuple(key) + tuple(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets (0.0 when never incremented)."""
        with self._lock:
            return sum(self._samples.values())

    def _reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def _render(self) -> list[str]:
        with self._lock:
            samples = sorted(self._samples.items())
        if not samples:
            samples = [((), 0.0)]
        return [f"{self.name}{_format_labels(key)} {_format_value(v)}"
                for key, v in samples]


class Gauge(Counter):
    """A value that can go up and down (set/add)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Cumulative-bucket histogram of observations (seconds by default)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        # per label set: [bucket counts..., +Inf count], sum
        self._samples: dict[tuple, tuple[list, float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts, total = self._samples.get(
                key, ([0] * (len(self.buckets) + 1), 0.0))
            for i, upper in enumerate(self.buckets):
                if value <= upper:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._samples[key] = (counts, total + value)

    def count(self, **labels) -> int:
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return sum(sample[0]) if sample else 0

    def sum(self, **labels) -> float:
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return sample[1] if sample else 0.0

    def _reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def _render(self) -> list[str]:
        with self._lock:
            samples = sorted((k, (list(c), s))
                             for k, (c, s) in self._samples.items())
        if not samples:
            samples = [((), ([0] * (len(self.buckets) + 1), 0.0))]
        lines = []
        for key, (counts, total) in samples:
            cumulative = 0
            for upper, n in zip(self.buckets, counts):
                cumulative += n
                le = _format_labels(key, (("le", _format_value(upper)),))
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            cumulative += counts[-1]
            le = _format_labels(key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{le} {cumulative}")
            lines.append(
                f"{self.name}_sum{_format_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_format_labels(key)} {cumulative}")
        return lines


class MetricRegistry:
    """Thread-safe name -> metric-family table with idempotent getters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name, help, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every sample (families stay registered).  For tests."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()

    def collect(self) -> dict[str, dict]:
        """Plain-dict snapshot: {name: {labels-tuple-as-str: value}}."""
        out: dict[str, dict] = {}
        with self._lock:
            metrics = list(self._metrics.items())
        for name, metric in metrics:
            if isinstance(metric, Histogram):
                with metric._lock:
                    out[name] = {
                        _format_labels(k) or "": {"count": sum(c), "sum": s}
                        for k, (c, s) in metric._samples.items()}
            else:
                with metric._lock:
                    out[name] = {_format_labels(k) or "": v
                                 for k, v in metric._samples.items()}
        return out


def render_prometheus(registry: MetricRegistry) -> str:
    """Text exposition format 0.0.4 for every family in ``registry``."""
    lines: list[str] = []
    with registry._lock:
        metrics = [registry._metrics[name] for name in sorted(registry._metrics)]
    for metric in metrics:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        lines.extend(metric._render())
    return "\n".join(lines) + "\n"


#: The process-wide default registry all instrumentation points use.
REGISTRY = MetricRegistry()
