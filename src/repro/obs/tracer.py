"""Thread-safe nested spans with a JSONL sink and a no-op default.

The process has one *current tracer* (module global).  Instrumented
code does ``with get_tracer().span("engine.round", round=i):`` -- when
the current tracer is the default :class:`NullTracer` this costs two
attribute lookups and a shared no-op context manager, measured well
under the 2% overhead budget (``benchmarks/test_obs_overhead.py``).

Recording tracers keep a *per-thread* stack of open spans so nesting is
correct under ``ThreadExecutor``: a span started on thread T becomes
the parent of spans opened later on T, never of spans on other threads.
Spans use the monotonic clock (``time.perf_counter``) and are emitted
on *exit* as one JSON object per line; ``tracer.event(name, seconds)``
records work that was timed externally (executor shards, heartbeat
round trips, idle sleeps) as an already-finished child of the current
span.

Child processes never inherit a recording tracer: tracers are process
state, not task state, and ``ProcessExecutor`` workers fall back to the
null default.  Code that runs inside process pools therefore *returns*
its timings (see ``_evaluate_shard_timed`` in ``optim/engine.py``) and
the parent emits them as events.

Observability never touches RNG streams or record contents: spans only
*read* batch sizes / losses / durations, so traced runs stay
bit-identical to untraced runs.
"""

from __future__ import annotations

import atexit
import contextlib
import functools
import itertools
import json
import numbers
import os
import socket
import subprocess
import threading
import time
from pathlib import Path


@functools.lru_cache(maxsize=1)
def build_info() -> dict:
    """Build provenance stamped into trace meta headers.

    Merged fleet traces need to be attributable to a build: git SHA
    (``REPRO_GIT_SHA`` env wins -- CI containers without a checkout --
    else a quick ``git rev-parse``), package version, and hostname.
    Every lookup failure degrades to ``None`` rather than raising;
    cached because ``git rev-parse`` costs a subprocess.
    """
    sha = os.environ.get("REPRO_GIT_SHA")
    if not sha:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                capture_output=True, text=True, timeout=5.0,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            sha = None
    try:
        from .. import __version__ as version
    except Exception:  # pragma: no cover - package half-imported
        version = None
    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover
        hostname = None
    return {"git_sha": sha, "version": version, "hostname": hostname}


class _NullSpan:
    """Shared do-nothing span: never records, never stores state."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def tag(self, **tags):
        return self


#: The singleton handed out by :class:`NullTracer` -- stateless, so one
#: instance serves every thread.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **tags) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, seconds: float, **tags) -> None:
        return None

    def close(self) -> None:
        return None


class Span:
    """A live span: context manager started by a recording tracer."""

    __slots__ = ("tracer", "name", "tags", "span_id", "parent_id", "start")

    def __init__(self, tracer: "_RecordingBase", name: str, tags: dict):
        self.tracer = tracer
        self.name = name
        self.tags = tags
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.start = 0.0

    def tag(self, **tags) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exited out of order; keep the stack sane
            stack.remove(self)
        self.tracer._finish(self, end)
        return False


class _RecordingBase:
    """Shared machinery: per-thread stacks, ids, relative clock."""

    enabled = True

    def __init__(self):
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._t0 = time.perf_counter()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags) -> Span:
        return Span(self, name, tags)

    def event(self, name: str, seconds: float, **tags) -> None:
        """Record externally-timed work as a finished child span."""
        seconds = max(0.0, float(seconds))
        end = time.perf_counter()
        stack = self._stack()
        record = {
            "kind": "span",
            "name": name,
            "start": round(end - seconds - self._t0, 9),
            "dur": round(seconds, 9),
            "id": next(self._ids),
            "parent": stack[-1].span_id if stack else None,
            "thread": threading.current_thread().name,
        }
        if tags:
            record["tags"] = _jsonable_tags(tags)
        self._emit(record)

    def _finish(self, span: Span, end: float) -> None:
        record = {
            "kind": "span",
            "name": span.name,
            "start": round(span.start - self._t0, 9),
            "dur": round(end - span.start, 9),
            "id": span.span_id,
            "parent": span.parent_id,
            "thread": threading.current_thread().name,
        }
        if span.tags:
            record["tags"] = _jsonable_tags(span.tags)
        self._emit(record)

    def _emit(self, record: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        return None


def _jsonable_tags(tags: dict) -> dict:
    out = {}
    for key, value in tags.items():
        if isinstance(value, (str, bool, type(None))):
            out[key] = value
        elif isinstance(value, numbers.Integral):
            # the numbers ABCs catch numpy scalars without importing
            # numpy (np.int64 is not an int subclass)
            out[key] = int(value)
        elif isinstance(value, numbers.Real):
            out[key] = float(value)
        else:
            out[key] = str(value)
    return out


class RecordingTracer(_RecordingBase):
    """Keeps finished span dicts in memory -- tests and summaries."""

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()
        self.spans: list[dict] = []

    def _emit(self, record: dict) -> None:
        with self._lock:
            self.spans.append(record)


class JsonlTracer(_RecordingBase):
    """Appends one JSON object per finished span to ``path``.

    The first line is a ``{"kind": "meta", ...}`` header recording the
    clock convention (all ``start`` values are seconds since the tracer
    was created, monotonic) and a wall-clock anchor for humans.
    """

    def __init__(self, path: str | Path):
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps({
            "kind": "meta", "version": 1, "clock": "perf_counter",
            "unix_time": time.time(), "pid": os.getpid(),
            **build_info(),
        }) + "\n")
        # short-lived workers can die between flushes; an interpreter
        # that *does* exit cleanly should not drop the buffered tail
        atexit.register(self.close)

    def _emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if not self._fh.closed:
                self._fh.write(line)

    def close(self) -> None:
        """Flush and close; idempotent (atexit may race an explicit
        close, and ``use_tracer`` closes on every exit)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass


_NULL = NullTracer()
_current: NullTracer | _RecordingBase = _NULL
_current_lock = threading.Lock()


def get_tracer():
    """The process's current tracer (the shared no-op by default)."""
    return _current


def current_span_id():
    """Id of the innermost open span on this thread, or ``None``.

    Trace-context propagation (``repro.obs.context``) records this as
    the remote child's parent hint; the null tracer has no spans.
    """
    tracer = _current
    if not getattr(tracer, "enabled", False):
        return None
    stack = tracer._stack()
    return stack[-1].span_id if stack else None


def set_tracer(tracer) -> "NullTracer | _RecordingBase":
    """Install ``tracer`` (or None for the no-op); returns the previous."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer if tracer is not None else _NULL
    return previous


@contextlib.contextmanager
def use_tracer(tracer):
    """Scoped ``set_tracer`` -- restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if tracer is not None:
            tracer.close()
