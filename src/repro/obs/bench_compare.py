"""Perf-regression gate: diff a BENCH JSON run against a baseline.

The benchmarks emit flat-or-nested JSON (``CLAPTON_BENCH_JSON`` /
``BENCH {...}`` lines) and commit reference numbers under
``benchmarks/bench_results/``.  ``repro bench compare run.json
--baseline baseline.json --tolerance 15%`` flattens both payloads to
dotted numeric paths, classifies each metric's *direction* by name
(seconds regress up, speedups regress down, unknown keys are
informational), and exits nonzero when any metric moved past the
tolerance in its bad direction -- the empty bench trajectory becomes a
guarded time series in CI.

Direction heuristics (by the last path segment, substring match):

- lower is better: ``seconds``, ``_ns``, ``overhead``, ``error``,
  ``evaluations``, ``misses``, ``failed``
- higher is better: ``speedup``, ``per_second``, ``throughput``,
  ``hits``, ``ops``, ``coverage``
- anything else: ``info`` -- reported, never failing

Keys present on only one side are ``added``/``removed`` rows: visible
in the table, not failures (benchmarks legitimately grow new metrics).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

_LOWER_IS_BETTER = ("seconds", "_ns", "overhead", "error", "evaluations",
                    "misses", "failed", "latency")
_HIGHER_IS_BETTER = ("speedup", "per_second", "throughput", "hits",
                     "ops", "coverage")


def direction_of(path: str) -> str:
    """``lower`` / ``higher`` / ``info`` for a flattened metric path."""
    leaf = path.rsplit(".", 1)[-1].lower()
    for marker in _LOWER_IS_BETTER:
        if marker in leaf:
            return "lower"
    for marker in _HIGHER_IS_BETTER:
        if marker in leaf:
            return "higher"
    return "info"


def flatten_numeric(payload, prefix: str = "") -> dict[str, float]:
    """``{"a": {"b": 1, "c": [2]}}`` -> ``{"a.b": 1.0, "a.c[0]": 2.0}``.

    Non-numeric leaves (strings, nulls, bools) are skipped -- they are
    provenance, not metrics.
    """
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, sub))
    elif isinstance(payload, (list, tuple)):
        for i, value in enumerate(payload):
            out.update(flatten_numeric(value, f"{prefix}[{i}]"))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        out[prefix] = float(payload)
    return out


def parse_tolerance(text: str) -> float:
    """``"15%"`` -> 0.15; ``"0.15"`` -> 0.15.  Raises ValueError."""
    text = str(text).strip()
    try:
        if text.endswith("%"):
            fraction = float(text[:-1]) / 100.0
        else:
            fraction = float(text)
    except ValueError:
        raise ValueError(f"bad tolerance {text!r}; expected e.g. "
                         f"'15%' or '0.15'") from None
    if fraction < 0:
        raise ValueError(f"tolerance must be >= 0, got {text!r}")
    return fraction


@dataclass
class MetricDelta:
    """One compared metric path."""

    path: str
    baseline: float | None
    current: float | None
    direction: str
    #: ok / regression / improved / info / added / removed
    status: str
    #: (current - baseline) / |baseline|; None when not computable
    change: float | None = None


@dataclass
class CompareResult:
    rows: list[MetricDelta] = field(default_factory=list)
    tolerance: float = 0.15

    @property
    def regressions(self) -> list[MetricDelta]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {"tolerance": self.tolerance, "ok": self.ok,
                "regressions": len(self.regressions),
                "rows": [{"path": r.path, "baseline": r.baseline,
                          "current": r.current, "direction": r.direction,
                          "status": r.status, "change": r.change}
                         for r in self.rows]}


def compare(current: dict, baseline: dict,
            tolerance: float = 0.15) -> CompareResult:
    """Diff two BENCH JSON payloads (already parsed)."""
    cur = flatten_numeric(current)
    base = flatten_numeric(baseline)
    result = CompareResult(tolerance=tolerance)
    for path in sorted(set(cur) | set(base)):
        direction = direction_of(path)
        if path not in base:
            result.rows.append(MetricDelta(path, None, cur[path],
                                           direction, "added"))
            continue
        if path not in cur:
            result.rows.append(MetricDelta(path, base[path], None,
                                           direction, "removed"))
            continue
        b, c = base[path], cur[path]
        change = None if b == 0 else (c - b) / abs(b)
        status = "info"
        if direction != "info" and change is not None:
            bad = change > tolerance if direction == "lower" \
                else change < -tolerance
            good = change < -tolerance if direction == "lower" \
                else change > tolerance
            status = ("regression" if bad
                      else "improved" if good else "ok")
        elif direction != "info":
            # baseline 0: regression only if current strictly worsened
            worsened = c > 0 if direction == "lower" else c < 0
            status = "regression" if worsened else "ok"
        result.rows.append(MetricDelta(path, b, c, direction, status,
                                       change))
    return result


def _fmt(value: float | None) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_change(row: MetricDelta) -> str:
    if row.change is None:
        return "—"
    return f"{row.change * 100.0:+.1f}%"


_STATUS_MARK = {"regression": "❌ regression", "improved": "✅ improved",
                "ok": "ok", "info": "info", "added": "added",
                "removed": "removed"}


def render_markdown(result: CompareResult,
                    show_ok: bool = True) -> str:
    """Markdown delta table (regressions first)."""
    order = {"regression": 0, "improved": 1, "added": 2, "removed": 3,
             "ok": 4, "info": 5}
    rows = sorted(result.rows, key=lambda r: (order[r.status], r.path))
    if not show_ok:
        rows = [r for r in rows if r.status not in ("ok", "info")]
    lines = [
        f"### Bench compare (tolerance ±{result.tolerance * 100:.0f}%)",
        "",
        "| metric | baseline | current | Δ | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        lines.append(f"| `{row.path}` | {_fmt(row.baseline)} | "
                     f"{_fmt(row.current)} | {_fmt_change(row)} | "
                     f"{_STATUS_MARK[row.status]} |")
    n = len(result.regressions)
    lines.append("")
    lines.append(f"**{n} regression(s)**" if n else
                 "**No regressions.**")
    return "\n".join(lines)


def compare_files(run_path: str | Path, baseline_path: str | Path,
                  tolerance: float = 0.15) -> CompareResult:
    """Load both JSON files and :func:`compare` them."""
    current = json.loads(Path(run_path).read_text(encoding="utf-8"))
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    return compare(current, baseline, tolerance)
