"""``repro.obs`` -- dependency-free tracing + metrics for every layer.

Architecture
============

Two independent, always-importable substrates:

**Spans** (:mod:`repro.obs.tracer`).  One *current tracer* per process,
``NullTracer`` by default, so instrumentation is a no-op until a sink
is installed (``repro ... --trace PATH`` installs a
:class:`JsonlTracer` writing ``trace.jsonl`` beside the campaign's
``ResultStore``).  Spans are context managers on the monotonic clock,
nested through per-thread stacks, tagged with batch sizes / qubit
counts / strategy names; ``tracer.event(name, seconds)`` adopts
externally-timed work (process-pool shards, heartbeat round trips,
idle sleeps) into the current span.  The span vocabulary, bottom up::

    loss.evaluate_many      one batched loss call       (loss_eval)
    loss.shard              one executor shard, in-worker timed
    executor.map_shards     the parent's scatter/gather wait
    engine.round            one engine round (tags: evaluations, best)
    search.round            one strategy round loop iteration
    search.minimize         a whole SearchStrategy.minimize call
    task.execute            one campaign task (tags: task_id, method)
    campaign.wave           one runner wave over the executor
    worker.task             one leased task on a service worker
    worker.heartbeat        one heartbeat round trip
    worker.idle             an idle poll sleep             (idle)
    cli.run / cli.sweep...  the root span for a CLI verb

``repro trace summary`` (:mod:`repro.obs.summary`) rebuilds the tree
and buckets per-span *self time* into loss-eval vs orchestration vs
idle -- for a serial sweep the buckets partition wall-clock exactly.

**Metrics** (:mod:`repro.obs.metrics`).  A process-wide
:data:`REGISTRY` of ``Counter`` / ``Gauge`` / ``Histogram`` families,
registered idempotently at import time by the modules that increment
them (cache hits, lease lifecycle, task outcomes, heartbeat latency).
Metrics are cheap and always on; the service renders the registry as
Prometheus text exposition at ``GET /metrics``.

Invariants
==========

- Observability **never** touches RNG streams or record contents:
  traced runs are bit-identical to untraced runs (tier-1 goldens run
  with tracing enabled).
- No third-party dependencies; stdlib only.
- Process-pool children fall back to the null tracer; their timings
  are returned to the parent and re-emitted as events, and their cache
  counters are aggregated explicitly (``EngineResult.cache_stats``).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    REGISTRY,
    render_prometheus,
)
from .summary import (
    TraceSummary,
    bucket_of,
    load_trace,
    render_summary,
    summarize,
    summarize_spans,
)
from .tracer import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Span,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "REGISTRY",
    "render_prometheus",
    "TraceSummary",
    "bucket_of",
    "load_trace",
    "render_summary",
    "summarize",
    "summarize_spans",
    "JsonlTracer",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
