"""``repro.obs`` -- dependency-free tracing + metrics for every layer.

Architecture
============

Two independent, always-importable substrates:

**Spans** (:mod:`repro.obs.tracer`).  One *current tracer* per process,
``NullTracer`` by default, so instrumentation is a no-op until a sink
is installed (``repro ... --trace PATH`` installs a
:class:`JsonlTracer` writing ``trace.jsonl`` beside the campaign's
``ResultStore``).  Spans are context managers on the monotonic clock,
nested through per-thread stacks, tagged with batch sizes / qubit
counts / strategy names; ``tracer.event(name, seconds)`` adopts
externally-timed work (process-pool shards, heartbeat round trips,
idle sleeps) into the current span.  The span vocabulary, bottom up::

    kernel.conjugate_table  one packed conjugation walk  (kernel)
    kernel.fused_levels     one fused leveled-LUT pass
    loss.evaluate_many      one batched loss call       (loss_eval)
    loss.shard              one executor shard, in-worker timed
    executor.map_shards     the parent's scatter/gather wait
    engine.round            one engine round (tags: evaluations, best)
    search.round            one strategy round loop iteration
    search.minimize         a whole SearchStrategy.minimize call
    task.execute            one campaign task (tags: task_id, method)
    campaign.wave           one runner wave over the executor
    worker.task             one leased task on a service worker
                            (tags: trace/campaign/task_id/worker)
    worker.heartbeat        one heartbeat round trip
    worker.idle             an idle poll sleep             (idle)
    cli.run / cli.sweep...  the root span for a CLI verb

``repro trace summary`` (:mod:`repro.obs.summary`) rebuilds the tree
and buckets per-span *self time* into loss-eval vs kernel vs
orchestration vs idle -- for a serial sweep the buckets partition
wall-clock exactly.

**Distributed tracing** (:mod:`repro.obs.context`).  The campaign
service correlates the whole fleet into one trace per campaign: the
scheduler mints a ``trace_id`` and ships a :class:`TraceContext` in
every lease grant; workers run a :class:`ShippingTracer` that
batch-POSTs finished spans to the server's ``/traces`` collector; the
server merges them (worker-namespaced span ids, unix-rebased starts)
into a single queryable ``trace.jsonl`` per campaign -- ``repro trace
summary --connect URL`` summarizes it, ``repro trace export
--perfetto`` (:mod:`repro.obs.export`) converts it to Chrome
trace-event JSON for flamegraph viewers.

**Kernel profiling** (:mod:`repro.obs.kernel`).  The packed uint64
conjugation hot path bumps always-on counters (:data:`KERNEL`: words,
rows, LUT hits/misses, fused passes) that surface as Prometheus
``repro_kernel_*`` series and as the summary's per-worker word-ops/s
table.  Process-pool children return snapshots over the cache-stats
path; the parent folds them in.

**Metrics** (:mod:`repro.obs.metrics`).  A process-wide
:data:`REGISTRY` of ``Counter`` / ``Gauge`` / ``Histogram`` families,
registered idempotently at import time by the modules that increment
them (cache hits, lease lifecycle, task outcomes, heartbeat latency).
Metrics are cheap and always on; the service renders the registry as
Prometheus text exposition at ``GET /metrics``.

**Perf-regression gate** (:mod:`repro.obs.bench_compare`).  ``repro
bench compare run.json --baseline ... --tolerance 15%`` diffs BENCH
JSON against the committed ``benchmarks/bench_results/`` baselines and
exits nonzero on regression; CI runs it so the baselines are a guarded
time series.

Invariants
==========

- Observability **never** touches RNG streams or record contents:
  traced runs are bit-identical to untraced runs (tier-1 goldens run
  with tracing enabled).
- No third-party dependencies; stdlib only.
- Process-pool children fall back to the null tracer; their timings
  are returned to the parent and re-emitted as events, and their cache
  and kernel counters are aggregated explicitly
  (``EngineResult.cache_stats``, ``KERNEL.add``).
"""

from .bench_compare import (
    CompareResult,
    compare,
    compare_files,
    flatten_numeric,
    parse_tolerance,
    render_markdown,
)
from .context import (
    ShippingTracer,
    TraceContext,
    new_trace_id,
)
from .export import (
    export_chrome_trace,
    to_chrome_trace,
)
from .kernel import (
    KERNEL,
    KernelCounters,
    publish_kernel_metrics,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    REGISTRY,
    render_prometheus,
)
from .summary import (
    TraceSummary,
    bucket_of,
    load_trace,
    parse_trace_lines,
    render_summary,
    summarize,
    summarize_spans,
)
from .tracer import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Span,
    build_info,
    current_span_id,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CompareResult",
    "compare",
    "compare_files",
    "flatten_numeric",
    "parse_tolerance",
    "render_markdown",
    "ShippingTracer",
    "TraceContext",
    "new_trace_id",
    "export_chrome_trace",
    "to_chrome_trace",
    "KERNEL",
    "KernelCounters",
    "publish_kernel_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "REGISTRY",
    "render_prometheus",
    "TraceSummary",
    "bucket_of",
    "load_trace",
    "parse_trace_lines",
    "render_summary",
    "summarize",
    "summarize_spans",
    "JsonlTracer",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "build_info",
    "current_span_id",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
