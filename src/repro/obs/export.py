"""Export a trace to Chrome trace-event JSON (Perfetto / chrome://tracing).

``repro trace export --perfetto`` turns a ``trace.jsonl`` -- single-run
or service-merged -- into the one interchange format every flamegraph
viewer reads: the Trace Event Format's ``"X"`` (complete) events with
microsecond timestamps, plus ``"M"`` metadata events naming the lanes.

Lane mapping: each distinct *worker* becomes a process row (merged
fleet traces stamp a top-level ``"worker"`` field per span; single-run
traces fall back to the meta header's pid), and each distinct thread
within a worker becomes a thread row.  Span tags ride along in
``args`` and the summary bucket (loss_eval / kernel / ...) becomes the
event category, so the viewer can color by bucket.
"""

from __future__ import annotations

import json
from pathlib import Path

from .summary import bucket_of, load_trace


def to_chrome_trace(meta: dict, spans: list[dict]) -> dict:
    """Build the ``{"traceEvents": [...]}`` payload from parsed spans."""
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    default_lane = f"pid {meta.get('pid')}" if meta.get("pid") else "run"

    def pid_of(worker: str) -> int:
        pid = pids.get(worker)
        if pid is None:
            pid = pids[worker] = len(pids) + 1
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": worker}})
        return pid

    def tid_of(worker: str, thread: str) -> int:
        key = (worker, thread)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M",
                           "pid": pid_of(worker), "tid": tid,
                           "args": {"name": thread}})
        return tid

    for span in spans:
        worker = span.get("worker") or default_lane
        thread = span.get("thread") or "main"
        event = {
            "name": span["name"],
            "cat": bucket_of(span["name"]),
            "ph": "X",
            "ts": round(span["start"] * 1e6, 3),
            "dur": round(span["dur"] * 1e6, 3),
            "pid": pid_of(worker),
            "tid": tid_of(worker, thread),
        }
        tags = span.get("tags")
        if tags:
            event["args"] = tags
        events.append(event)

    payload: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta:
        payload["otherData"] = {
            k: meta[k] for k in ("trace_id", "campaign", "git_sha",
                                 "version", "hostname", "clock")
            if k in meta}
    return payload


def export_chrome_trace(trace_path: str | Path,
                        output_path: str | Path) -> int:
    """Read ``trace.jsonl``, write Chrome trace JSON; returns #events."""
    meta, spans = load_trace(trace_path)
    payload = to_chrome_trace(meta, spans)
    out = Path(output_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, separators=(",", ":")) + "\n",
                   encoding="utf-8")
    return len(payload["traceEvents"])
