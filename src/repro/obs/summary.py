"""Trace-file analysis: hierarchical time breakdown + bucket accounting.

A ``trace.jsonl`` written by :class:`~repro.obs.tracer.JsonlTracer` is a
flat list of finished spans with parent links.  This module rebuilds
the tree and answers the question the ROADMAP keeps asking: *where did
the wall-clock go?*

Every span's **self time** is its duration minus its children's
durations (clamped at zero: children running concurrently on other
threads can sum past the parent).  Self times are then classified into
five buckets by span name:

- ``kernel``         -- names starting with ``kernel.`` (the packed
  word-conjugation hot path; these are children of ``loss.`` spans, so
  this is the physics *inside* the physics)
- ``loss_eval``      -- names starting with ``loss.`` (the physics)
- ``mitigation``     -- names starting with ``mitigation.`` (folding,
  extrapolation, readout inversion; the raw evaluations a wrapped
  estimator issues re-appear as ``loss.`` children, so this bucket is
  mitigation *overhead* only)
- ``idle``           -- names containing ``idle`` (polling, backoff)
- ``orchestration``  -- everything else (the tax this repo controls)

``kernel.*`` spans carry ``words``/``rows`` tags from
:mod:`repro.obs.kernel`; the summary aggregates them per worker (merged
fleet traces stamp a top-level ``"worker"`` on every span) into
word-ops/s throughput -- the paper's headline unit for the stabilizer
hot path.

For a serial run rooted in one CLI span the buckets partition the
wall-clock exactly; the acceptance bar is >=95% accounted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


def bucket_of(name: str) -> str:
    if name.startswith("kernel."):
        return "kernel"
    if name.startswith("loss."):
        return "loss_eval"
    if name.startswith("mitigation."):
        return "mitigation"
    if "idle" in name:
        return "idle"
    return "orchestration"


def parse_trace_lines(lines) -> tuple[dict, list[dict]]:
    """Parse trace JSONL lines -> (meta, spans); skips torn/blank lines.

    Shared by :func:`load_trace` and the ``--connect`` path (which gets
    the merged campaign trace as NDJSON text from ``GET /trace``).
    """
    meta: dict = {}
    spans: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a killed process
        if record.get("kind") == "meta":
            meta = record
        elif record.get("kind") == "span":
            spans.append(record)
    return meta, spans


def load_trace(path: str | Path) -> tuple[dict, list[dict]]:
    """Parse a trace file -> (meta, spans); tolerates a torn last line."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return parse_trace_lines(fh)


@dataclass
class SummaryRow:
    """One aggregated tree node (all spans sharing a name-path)."""

    path: tuple[str, ...]
    count: int = 0
    total: float = 0.0
    self_seconds: float = 0.0
    children: list["SummaryRow"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1


@dataclass
class TraceSummary:
    wall_seconds: float
    num_spans: int
    buckets: dict[str, float]
    roots: list[SummaryRow]
    meta: dict = field(default_factory=dict)
    #: per-worker packed-kernel totals: {worker: {"words", "rows",
    #: "seconds"}} aggregated from ``kernel.*`` span tags
    kernel: dict = field(default_factory=dict)

    @property
    def accounted(self) -> float:
        return sum(self.buckets.values())

    @property
    def coverage(self) -> float:
        """Fraction of wall-clock the buckets account for (may exceed
        1.0 when threads overlap)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.accounted / self.wall_seconds

    def to_dict(self) -> dict:
        def row(r: SummaryRow) -> dict:
            return {"path": "/".join(r.path), "count": r.count,
                    "total_seconds": round(r.total, 6),
                    "self_seconds": round(r.self_seconds, 6),
                    "children": [row(c) for c in r.children]}
        out = {
            "wall_seconds": round(self.wall_seconds, 6),
            "num_spans": self.num_spans,
            "buckets": {k: round(v, 6) for k, v in self.buckets.items()},
            "coverage": round(self.coverage, 4),
            "tree": [row(r) for r in self.roots],
        }
        if self.kernel:
            out["kernel"] = {
                worker: {"words": stats["words"], "rows": stats["rows"],
                         "seconds": round(stats["seconds"], 6),
                         "words_per_second": round(
                             stats["words"] / stats["seconds"], 1)
                         if stats["seconds"] > 0 else None}
                for worker, stats in self.kernel.items()}
        return out


def summarize_spans(spans: list[dict], meta: dict | None = None) -> TraceSummary:
    by_id = {s["id"]: s for s in spans}
    children_dur: dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent in by_id:
            children_dur[parent] = children_dur.get(parent, 0.0) + span["dur"]

    # name-path per span (parent chain), memoized
    paths: dict[int, tuple[str, ...]] = {}

    def path_of(span: dict) -> tuple[str, ...]:
        sid = span["id"]
        cached = paths.get(sid)
        if cached is not None:
            return cached
        parent = span.get("parent")
        if parent in by_id:
            result = path_of(by_id[parent]) + (span["name"],)
        else:
            result = (span["name"],)
        paths[sid] = result
        return result

    nodes: dict[tuple[str, ...], SummaryRow] = {}
    buckets = {"loss_eval": 0.0, "kernel": 0.0, "mitigation": 0.0,
               "orchestration": 0.0, "idle": 0.0}
    kernel: dict[str, dict] = {}
    starts, ends = [], []
    for span in spans:
        starts.append(span["start"])
        ends.append(span["start"] + span["dur"])
        self_seconds = max(0.0, span["dur"] - children_dur.get(span["id"], 0.0))
        bucket = bucket_of(span["name"])
        buckets[bucket] += self_seconds
        if bucket == "kernel":
            tags = span.get("tags") or {}
            worker = span.get("worker") or "local"
            stats = kernel.setdefault(
                worker, {"words": 0, "rows": 0, "seconds": 0.0})
            stats["words"] += int(tags.get("words") or 0)
            stats["rows"] += int(tags.get("rows") or 0)
            stats["seconds"] += span["dur"]
        path = path_of(span)
        node = nodes.get(path)
        if node is None:
            node = nodes[path] = SummaryRow(path)
        node.count += 1
        node.total += span["dur"]
        node.self_seconds += self_seconds

    roots: list[SummaryRow] = []
    for path in sorted(nodes, key=len):
        node = nodes[path]
        if len(path) > 1 and path[:-1] in nodes:
            nodes[path[:-1]].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: -c.total)
    roots.sort(key=lambda r: -r.total)

    wall = (max(ends) - min(starts)) if spans else 0.0
    return TraceSummary(wall_seconds=wall, num_spans=len(spans),
                        buckets=buckets, roots=roots, meta=meta or {},
                        kernel=kernel)


def summarize(path: str | Path) -> TraceSummary:
    meta, spans = load_trace(path)
    return summarize_spans(spans, meta)


def _fmt_count(value: float) -> str:
    """Humanized counts for the kernel table (1.3M, 42.0k, 917)."""
    for divisor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= divisor:
            return f"{value / divisor:.1f}{suffix}"
    return f"{value:.0f}"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def render_summary(summary: TraceSummary, max_depth: int = 6) -> str:
    """Human-readable breakdown table for ``repro trace summary``."""
    wall = summary.wall_seconds
    lines = []
    lines.append(f"wall clock : {_fmt_seconds(wall)}  "
                 f"({summary.num_spans} spans)")
    lines.append("")
    lines.append("bucket           seconds      share")
    order = [("loss evaluation", "loss_eval"),
             ("kernel", "kernel"),
             ("mitigation", "mitigation"),
             ("orchestration", "orchestration"),
             ("idle", "idle")]
    for label, key in order:
        seconds = summary.buckets.get(key, 0.0)
        share = (seconds / wall * 100.0) if wall > 0 else 0.0
        lines.append(f"{label:<16} {_fmt_seconds(seconds):>8}    {share:6.1f}%")
    lines.append(f"{'accounted':<16} {_fmt_seconds(summary.accounted):>8}"
                 f"    {summary.coverage * 100.0:6.1f}%")
    if summary.kernel:
        lines.append("")
        lines.append("kernel (packed conjugation)")
        lines.append(f"{'worker':<28} {'words':>12} {'rows':>12} "
                     f"{'words/s':>12}")
        for worker in sorted(summary.kernel):
            stats = summary.kernel[worker]
            rate = (_fmt_count(stats["words"] / stats["seconds"])
                    if stats["seconds"] > 0 else "--")
            lines.append(f"{worker:<28} {_fmt_count(stats['words']):>12} "
                         f"{_fmt_count(stats['rows']):>12} {rate:>12}")
    lines.append("")
    lines.append(f"{'span':<46} {'count':>6} {'total':>9} {'self':>9} "
                 f"{'%wall':>6}")

    def emit(row: SummaryRow) -> None:
        if row.depth >= max_depth:
            return
        label = "  " * row.depth + row.name
        share = (row.total / wall * 100.0) if wall > 0 else 0.0
        lines.append(f"{label:<46} {row.count:>6} "
                     f"{_fmt_seconds(row.total):>9} "
                     f"{_fmt_seconds(row.self_seconds):>9} {share:6.1f}%")
        for child in row.children:
            emit(child)

    for root in summary.roots:
        emit(root)
    return "\n".join(lines)
