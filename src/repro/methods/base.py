"""The pluggable initialization-method protocol.

An :class:`InitializationMethod` describes one point on the paper's method
axis -- Clapton, CAFQA, nCAFQA, or anything a user registers -- through a
small, stable surface:

* ``name`` / ``description``: registry identity and one-line docs;
* ``num_parameters(problem)`` and ``num_values``: the genome space the
  search explores;
* ``make_loss(problem)``: the cost function the Figure-4 engine minimizes;
* ``decode(problem, genome)``: how a genome becomes a VQE starting point
  -- the Hamiltonian the online phase optimizes, the initial parameters,
  and (optionally) an explicit initial-state circuit.

The default :meth:`InitializationMethod.run` wires those pieces through
the :mod:`repro.search` strategy registry -- ``multi_ga`` (the Figure-4
engine, bit-identical to the historical drivers) unless ``strategy=``
names another registered :class:`~repro.search.SearchStrategy` -- so a
method defined purely by its loss and decode rules is automatically
runnable through :class:`~repro.experiments.Experiment`, campaigns, and
the CLI, under any search strategy.  Methods with a different search
shape (e.g. best-of-K random sampling) override :meth:`search` instead.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..circuits.circuit import Circuit
from ..core.clapton import InitializationResult
from ..core.problem import VQEProblem
from ..optim.engine import EngineConfig
from ..paulis.pauli_sum import PauliSum
from ..search.base import SearchResult
from ..search.registry import resolve_strategy


@dataclass(frozen=True)
class DecodedPoint:
    """What a genome means as a VQE starting point.

    Attributes:
        vqe_hamiltonian: The *logical* Hamiltonian the post-method VQE
            optimizes (transformed for Clapton-style methods, the original
            problem Hamiltonian otherwise).
        initial_theta: VQE starting parameters on the evaluation ansatz.
        init_circuit: Optional explicit initial-state circuit on the
            evaluation register; when ``None`` the bound ansatz
            ``A'(initial_theta)`` is used (the right choice for every
            ansatz-parameterized method).
    """

    vqe_hamiltonian: PauliSum
    initial_theta: np.ndarray
    init_circuit: Circuit | None = None


class InitializationMethod(abc.ABC):
    """One initialization strategy, runnable end to end.

    Subclasses define the class attributes ``name`` (registry key),
    ``description`` (one line, shown by ``repro methods``), and optionally
    ``num_values`` (genome alphabet size, default 4), plus the three
    abstract hooks.  Register an implementation with
    :func:`~repro.methods.register_method` to make it addressable by name
    everywhere a built-in method is.
    """

    name: str = ""
    description: str = ""
    #: Genes take values ``0..num_values-1``.
    num_values: int = 4

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def num_parameters(self, problem: VQEProblem) -> int:
        """Genome length on this problem."""

    @abc.abstractmethod
    def make_loss(self, problem: VQEProblem
                  ) -> Callable[[np.ndarray], float]:
        """The cost function the search minimizes (picklable for process
        executors)."""

    @abc.abstractmethod
    def decode(self, problem: VQEProblem, genome: np.ndarray) -> DecodedPoint:
        """Map a genome to its VQE starting point."""

    # ------------------------------------------------------------------
    # Default search + assembly (override `search` for non-GA methods)
    # ------------------------------------------------------------------
    def search(self, problem: VQEProblem,
               config: EngineConfig | None = None,
               executor=None, strategy=None, budget=None) -> SearchResult:
        """Minimize :meth:`make_loss` over the genome space.

        The default resolves ``strategy`` through the
        :mod:`repro.search` registry and falls back to ``multi_ga`` --
        the paper builds every method on "an optimization engine similar
        to the one shown in Figure 4", so the default comparisons isolate
        the cost function, while ``strategy=`` turns the optimizer itself
        into an experimental axis.  Methods with their own search shape
        (e.g. best-of-K random sampling) override this method and ignore
        the strategy axis.
        """
        resolved = resolve_strategy(strategy)
        return resolved.minimize(self.make_loss(problem),
                                 self.num_parameters(problem),
                                 num_values=self.num_values,
                                 budget=budget, config=config,
                                 executor=executor)

    def run(self, problem: VQEProblem, config: EngineConfig | None = None,
            executor=None, strategy=None, budget=None,
            mitigation=None) -> InitializationResult:
        """Search, decode the best genome, and bundle the result.

        ``strategy`` names any registered :class:`~repro.search.
        SearchStrategy` (default ``multi_ga``); ``budget`` optionally
        caps the search (see :class:`~repro.search.SearchBudget`).
        ``mitigation`` names a registered mitigation strategy or a
        ``"zne:folds=3|readout"`` spec (default ``none``): the discrete
        search itself is never mitigated -- mitigation acts on measured
        energies -- but the resolved name is validated here and recorded
        on the result so every downstream evaluation applies it.
        """
        from ..mitigation import resolve_mitigation as _resolve_mitigation

        mitigation_name = _resolve_mitigation(mitigation).name
        params = inspect.signature(self.search).parameters
        takes_axis = ("strategy" in params
                      or any(p.kind is inspect.Parameter.VAR_KEYWORD
                             for p in params.values()))
        if takes_axis:
            outcome = self.search(problem, config=config,
                                  executor=executor, strategy=strategy,
                                  budget=budget)
        elif ((strategy is None
               or resolve_strategy(strategy).name == "multi_ga")
              and budget is None):
            # pre-strategy-axis override (old three-argument signature):
            # the default multi_ga request is "no strategy asked for" --
            # the CLI and campaign tasks always pass it explicitly
            outcome = self.search(problem, config=config,
                                  executor=executor)
        else:
            raise TypeError(
                f"{type(self).__name__}.search does not accept the "
                f"strategy/budget axis; add `strategy=None, budget=None` "
                f"to its signature (or **kwargs) to opt in")
        if isinstance(outcome, SearchResult):
            search, engine = outcome, outcome.as_engine_result()
        else:  # legacy override returning a bare EngineResult
            search, engine = None, outcome
        decoded = self.decode(problem, engine.best_genome)
        return InitializationResult(
            method=self.name,
            problem=problem,
            genome=engine.best_genome,
            loss=engine.best_loss,
            engine=engine,
            vqe_hamiltonian=decoded.vqe_hamiltonian,
            initial_theta=decoded.initial_theta,
            init_circuit=decoded.init_circuit,
            search=search,
            mitigation=mitigation_name,
        )

    def __repr__(self) -> str:  # registry listings, error messages
        return f"<{type(self).__name__} name={self.name!r}>"
