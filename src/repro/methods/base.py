"""The pluggable initialization-method protocol.

An :class:`InitializationMethod` describes one point on the paper's method
axis -- Clapton, CAFQA, nCAFQA, or anything a user registers -- through a
small, stable surface:

* ``name`` / ``description``: registry identity and one-line docs;
* ``num_parameters(problem)`` and ``num_values``: the genome space the
  search explores;
* ``make_loss(problem)``: the cost function the Figure-4 engine minimizes;
* ``decode(problem, genome)``: how a genome becomes a VQE starting point
  -- the Hamiltonian the online phase optimizes, the initial parameters,
  and (optionally) an explicit initial-state circuit.

The default :meth:`InitializationMethod.run` wires those pieces through
:func:`~repro.optim.engine.multi_ga_minimize` exactly like the historical
drivers did, so a method defined purely by its loss and decode rules is
automatically runnable through :class:`~repro.experiments.Experiment`,
campaigns, and the CLI.  Methods with a different search shape (e.g.
best-of-K random sampling) override :meth:`search` instead.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..circuits.circuit import Circuit
from ..core.clapton import InitializationResult
from ..core.problem import VQEProblem
from ..optim.engine import EngineConfig, EngineResult, multi_ga_minimize
from ..paulis.pauli_sum import PauliSum


@dataclass(frozen=True)
class DecodedPoint:
    """What a genome means as a VQE starting point.

    Attributes:
        vqe_hamiltonian: The *logical* Hamiltonian the post-method VQE
            optimizes (transformed for Clapton-style methods, the original
            problem Hamiltonian otherwise).
        initial_theta: VQE starting parameters on the evaluation ansatz.
        init_circuit: Optional explicit initial-state circuit on the
            evaluation register; when ``None`` the bound ansatz
            ``A'(initial_theta)`` is used (the right choice for every
            ansatz-parameterized method).
    """

    vqe_hamiltonian: PauliSum
    initial_theta: np.ndarray
    init_circuit: Circuit | None = None


class InitializationMethod(abc.ABC):
    """One initialization strategy, runnable end to end.

    Subclasses define the class attributes ``name`` (registry key),
    ``description`` (one line, shown by ``repro methods``), and optionally
    ``num_values`` (genome alphabet size, default 4), plus the three
    abstract hooks.  Register an implementation with
    :func:`~repro.methods.register_method` to make it addressable by name
    everywhere a built-in method is.
    """

    name: str = ""
    description: str = ""
    #: Genes take values ``0..num_values-1``.
    num_values: int = 4

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def num_parameters(self, problem: VQEProblem) -> int:
        """Genome length on this problem."""

    @abc.abstractmethod
    def make_loss(self, problem: VQEProblem
                  ) -> Callable[[np.ndarray], float]:
        """The cost function the search minimizes (picklable for process
        executors)."""

    @abc.abstractmethod
    def decode(self, problem: VQEProblem, genome: np.ndarray) -> DecodedPoint:
        """Map a genome to its VQE starting point."""

    # ------------------------------------------------------------------
    # Default search + assembly (override `search` for non-GA methods)
    # ------------------------------------------------------------------
    def search(self, problem: VQEProblem,
               config: EngineConfig | None = None,
               executor=None) -> EngineResult:
        """Minimize :meth:`make_loss` over the genome space.

        The default runs the Figure-4 multi-GA engine -- the paper builds
        every method on "an optimization engine similar to the one shown
        in Figure 4" so comparisons isolate the cost function.
        """
        return multi_ga_minimize(self.make_loss(problem),
                                 self.num_parameters(problem),
                                 num_values=self.num_values,
                                 config=config, executor=executor)

    def run(self, problem: VQEProblem, config: EngineConfig | None = None,
            executor=None) -> InitializationResult:
        """Search, decode the best genome, and bundle the result."""
        engine = self.search(problem, config=config, executor=executor)
        decoded = self.decode(problem, engine.best_genome)
        return InitializationResult(
            method=self.name,
            problem=problem,
            genome=engine.best_genome,
            loss=engine.best_loss,
            engine=engine,
            vqe_hamiltonian=decoded.vqe_hamiltonian,
            initial_theta=decoded.initial_theta,
            init_circuit=decoded.init_circuit,
        )

    def __repr__(self) -> str:  # registry listings, error messages
        return f"<{type(self).__name__} name={self.name!r}>"
