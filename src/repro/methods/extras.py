"""Extra in-tree methods proving the registry is open.

* ``vanilla`` -- theta = 0 on the untransformed problem: the paper's
  implicit control (every VQE without an initialization stage starts
  here).  No search at all; one loss evaluation for bookkeeping.
* ``random_clifford`` -- best of K uniformly random stabilizer initial
  points, screened by the noiseless stabilizer energy: the natural lower
  baseline separating "any Clifford search" from "no search".

Both decode exactly like CAFQA (ansatz angles ``genome * pi/2`` on the
original Hamiltonian), so they flow through the three-tier evaluation,
the VQE phase, campaigns, and reports with no special cases.
"""

from __future__ import annotations

import time

import numpy as np

from ..circuits.ansatz import cafqa_angles
from ..core.loss import CafqaLoss
from ..core.problem import VQEProblem
from ..optim.engine import EngineConfig
from ..search.base import SearchResult, SearchTrace
from .base import DecodedPoint, InitializationMethod
from .registry import register_method


def _evaluate_losses(job) -> np.ndarray:
    """Worker: evaluate one genome chunk (top-level for pickling)."""
    loss, genomes = job
    return np.array([float(loss(g)) for g in genomes])


class _AnsatzAngleMethod(InitializationMethod):
    """Shared decode/loss shape: Clifford angles on the original problem."""

    def num_parameters(self, problem: VQEProblem) -> int:
        return problem.num_vqe_parameters

    def make_loss(self, problem: VQEProblem):
        return CafqaLoss(problem, noise_aware=False)

    def decode(self, problem: VQEProblem, genome) -> DecodedPoint:
        return DecodedPoint(vqe_hamiltonian=problem.hamiltonian,
                            initial_theta=cafqa_angles(genome))


@register_method
class VanillaMethod(_AnsatzAngleMethod):
    """No initialization: start VQE from theta = 0."""

    name = "vanilla"
    description = ("no initialization: theta = 0 on the original problem "
                   "(the implicit control)")

    def search(self, problem: VQEProblem,
               config: EngineConfig | None = None,
               executor=None, strategy=None, budget=None) -> SearchResult:
        # no search at all: the strategy/budget axes do not apply
        start = time.perf_counter()
        genome = np.zeros(self.num_parameters(problem), dtype=np.int64)
        loss = float(self.make_loss(problem)(genome))
        return SearchResult(strategy="none", best_genome=genome,
                            best_loss=loss, trace=[], num_evaluations=1,
                            total_seconds=time.perf_counter() - start)


@register_method
class RandomCliffordMethod(_AnsatzAngleMethod):
    """Best of K random stabilizer initial points.

    Args:
        num_samples: Sample budget K; defaults to the engine config's
            ``num_instances * population_size`` so presets scale it the
            same way they scale the GA methods' round size.
    """

    name = "random_clifford"
    description = ("best-of-K random stabilizer initial points, screened "
                   "by noiseless energy (lower baseline)")

    def __init__(self, num_samples: int | None = None):
        self.num_samples = num_samples

    def search(self, problem: VQEProblem,
               config: EngineConfig | None = None,
               executor=None, strategy=None, budget=None) -> SearchResult:
        # own search shape (best-of-K sampling); the strategy axis does
        # not apply -- `restart_climb` is this search generalized to
        # climb from each sample
        cfg = config or EngineConfig()
        k = self.num_samples or max(1, cfg.num_instances
                                    * cfg.population_size)
        start = time.perf_counter()
        rng = np.random.default_rng(cfg.seed)
        loss = self.make_loss(problem)
        genomes = rng.integers(0, self.num_values,
                               size=(k, self.num_parameters(problem)))
        if executor is None or executor.in_process_sequential:
            losses = np.array([float(loss(g)) for g in genomes])
        else:
            # contiguous per-worker chunks; concatenation preserves the
            # serial ordering so the argmin (and ties) are identical
            workers = max(1, getattr(executor, "max_workers", 1))
            chunks = np.array_split(genomes, min(k, workers))
            jobs = [(loss, chunk) for chunk in chunks if len(chunk)]
            losses = np.concatenate(
                executor.map(_evaluate_losses, jobs))
        best = int(np.argmin(losses))
        elapsed = time.perf_counter() - start
        trace = [SearchTrace(round_index=0, best_loss=float(losses[best]),
                             num_evaluations=k, duration_seconds=elapsed)]
        return SearchResult(strategy="best_of_k",
                            best_genome=genomes[best].copy(),
                            best_loss=float(losses[best]), trace=trace,
                            num_evaluations=k, total_seconds=elapsed)
