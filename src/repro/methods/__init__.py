"""Pluggable initialization methods: protocol, registry, built-ins.

The method axis of the paper's evaluation is open: implement
:class:`InitializationMethod`, decorate it with :func:`register_method`,
and the method runs through ``Experiment.run``, campaign sweeps, figure
reports, and the CLI by name -- no core edits.  ``repro methods`` lists
what is registered.
"""

from .base import DecodedPoint, InitializationMethod
from .registry import (
    DEFAULT_METHODS,
    available_methods,
    get_method,
    method_names,
    register_method,
    resolve_methods,
    unregister_method,
)
from .builtin import CafqaMethod, ClaptonMethod, NcafqaMethod
from .extras import RandomCliffordMethod, VanillaMethod

__all__ = [
    "CafqaMethod", "ClaptonMethod", "DEFAULT_METHODS", "DecodedPoint",
    "InitializationMethod", "NcafqaMethod", "RandomCliffordMethod",
    "VanillaMethod", "available_methods", "get_method", "method_names",
    "register_method", "resolve_methods", "unregister_method",
]
