"""The open method registry: ``@register_method`` + name lookup.

Every consumer of the method axis -- ``Experiment.run``, campaign specs,
reports, the CLI -- resolves method names through this module, so a method
registered from user code (no core edits) runs everywhere a built-in does::

    from repro.methods import InitializationMethod, register_method

    @register_method
    class MyMethod(InitializationMethod):
        name = "my_method"
        description = "one line for `repro methods`"
        ...

Lookups of unknown names fail with a did-you-mean suggestion naming the
registered methods.
"""

from __future__ import annotations

from ..naming import did_you_mean
from .base import InitializationMethod

#: The built-in trio, in the paper's presentation order.  This is the
#: default method set of :meth:`Experiment.run` and campaign specs (the
#: extra in-tree methods -- ``random_clifford``, ``vanilla`` -- are opt-in).
DEFAULT_METHODS: tuple[str, ...] = ("cafqa", "ncafqa", "clapton")

_REGISTRY: dict[str, InitializationMethod] = {}


def register_method(method=None, *, replace: bool = False):
    """Register an :class:`InitializationMethod` class or instance.

    Usable as a bare decorator (``@register_method``), a parameterized one
    (``@register_method(replace=True)``), or a plain call
    (``register_method(instance)``).  Classes are instantiated with no
    arguments; pre-built instances register as-is (use this for
    parameterized variants).  Returns the decorated object unchanged.
    """
    def _register(obj):
        instance = obj() if isinstance(obj, type) else obj
        if not isinstance(instance, InitializationMethod):
            raise TypeError(
                f"register_method needs an InitializationMethod subclass "
                f"or instance, got {obj!r}")
        name = instance.name
        if not name:
            raise ValueError(
                f"{type(instance).__name__} has no `name`; set the class "
                f"attribute before registering")
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"method {name!r} is already registered "
                f"({_REGISTRY[name]!r}); pass replace=True to override")
        _REGISTRY[name] = instance
        return obj

    if method is None:
        return _register
    return _register(method)


def unregister_method(name: str) -> None:
    """Remove a registered method (primarily for test cleanup)."""
    _REGISTRY.pop(name, None)


def method_names() -> tuple[str, ...]:
    """Registered names, in registration order (built-ins first)."""
    return tuple(_REGISTRY)


def available_methods() -> dict[str, InitializationMethod]:
    """Name -> instance snapshot of the registry."""
    return dict(_REGISTRY)


def get_method(name: str) -> InitializationMethod:
    """Look up a registered method; ``KeyError`` with a did-you-mean hint."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}{did_you_mean(name, _REGISTRY)}; "
            f"registered "
            f"methods: {list(_REGISTRY)}") from None


def resolve_methods(methods=None) -> list[InitializationMethod]:
    """Normalize a method selection into registry instances.

    Accepts ``None`` (the built-in trio), a single name or instance, or an
    iterable mixing names and :class:`InitializationMethod` instances.
    Unknown names raise ``ValueError`` listing every registered method.
    """
    if methods is None:
        methods = DEFAULT_METHODS
    if isinstance(methods, (str, InitializationMethod)):
        methods = (methods,)
    resolved: list[InitializationMethod] = []
    unknown: list[str] = []
    for method in methods:
        if isinstance(method, InitializationMethod):
            resolved.append(method)
        elif isinstance(method, str):
            if method in _REGISTRY:
                resolved.append(_REGISTRY[method])
            else:
                unknown.append(method)
        else:
            raise TypeError(
                f"methods must be registered names or "
                f"InitializationMethod instances, got {method!r}")
    if unknown:
        raise ValueError(
            f"unknown methods {unknown}{did_you_mean(unknown[0], _REGISTRY)}; "
            f"registered methods: {list(_REGISTRY)}")
    return resolved
