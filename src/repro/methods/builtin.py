"""The paper's three methods as registered :class:`InitializationMethod` s.

These are the canonical implementations; the legacy driver functions
(:func:`repro.core.clapton.clapton` and friends) are thin wrappers over
parameterized instances of these classes.  Numbers are bit-identical to
the historical drivers for identical seeds: the losses, genome spaces,
engine wiring, and decode rules are unchanged.
"""

from __future__ import annotations

import numpy as np

from ..circuits.ansatz import cafqa_angles
from ..core.loss import CafqaLoss, ClaptonLoss, NcafqaLoss
from ..core.problem import VQEProblem
from ..core.transformation import transform_hamiltonian
from ..noise.clifford_model import CliffordNoiseModel
from .base import DecodedPoint, InitializationMethod
from .registry import register_method


@register_method
class CafqaMethod(InitializationMethod):
    """The CAFQA baseline: noiseless Clifford search over ansatz angles."""

    name = "cafqa"
    description = ("CAFQA baseline: noiseless Clifford search over ansatz "
                   "angles (L_0 only)")
    noise_aware = False

    def __init__(self, clifford_model: CliffordNoiseModel | None = None,
                 packed: bool = True):
        self.clifford_model = clifford_model
        self.packed = packed

    def num_parameters(self, problem: VQEProblem) -> int:
        return problem.num_vqe_parameters

    def make_loss(self, problem: VQEProblem):
        if self.noise_aware:
            return NcafqaLoss(problem, clifford_model=self.clifford_model,
                              packed=self.packed)
        return CafqaLoss(problem, clifford_model=self.clifford_model,
                         packed=self.packed)

    def decode(self, problem: VQEProblem, genome) -> DecodedPoint:
        return DecodedPoint(vqe_hamiltonian=problem.hamiltonian,
                            initial_theta=cafqa_angles(genome))


@register_method
class NcafqaMethod(CafqaMethod):
    """Noise-aware CAFQA: the paper's strengthened baseline (Sec. 5.2)."""

    name = "ncafqa"
    description = ("noise-aware CAFQA: Clifford angle search under "
                   "L_N + L_0 (Sec. 5.2)")
    noise_aware = True


@register_method
class ClaptonMethod(InitializationMethod):
    """The Clapton transformation search (Sec. 4.1).

    Args:
        clifford_model: Override the L_N noise projection (ablations).
        noisy_weight / noiseless_weight: Cost-term weights (ablations);
            the paper uses 1 + 1.
    """

    name = "clapton"
    description = ("Clapton: Clifford problem-transformation search under "
                   "L_N + L_0 (Sec. 4.1)")

    def __init__(self, clifford_model: CliffordNoiseModel | None = None,
                 noisy_weight: float = 1.0, noiseless_weight: float = 1.0,
                 packed: bool = True):
        self.clifford_model = clifford_model
        self.noisy_weight = noisy_weight
        self.noiseless_weight = noiseless_weight
        self.packed = packed

    def num_parameters(self, problem: VQEProblem) -> int:
        return problem.num_transformation_parameters

    def make_loss(self, problem: VQEProblem):
        return ClaptonLoss(problem, clifford_model=self.clifford_model,
                           noisy_weight=self.noisy_weight,
                           noiseless_weight=self.noiseless_weight,
                           packed=self.packed)

    def decode(self, problem: VQEProblem, genome) -> DecodedPoint:
        return DecodedPoint(
            vqe_hamiltonian=transform_hamiltonian(problem.hamiltonian,
                                                  genome,
                                                  problem.entanglement),
            initial_theta=np.zeros(problem.num_vqe_parameters),
        )
