"""Shared did-you-mean suggestion for unknown-name errors.

Every registry (methods, benchmarks, strategies, mitigations) and every
CLI/aggregate filter rejects unknown names with the same shape of error:
the bad name, a close-match suggestion, and the list of valid values.
This module is the single implementation behind that suffix so the four
registries stop carrying private copies.
"""

from __future__ import annotations

import difflib
from typing import Iterable


def did_you_mean(name: str, known: Iterable[str]) -> str:
    """A ``" (did you mean 'x'?)"`` suffix for ``name``, or ``""``.

    Args:
        name: The unknown name the caller is about to reject.
        known: The valid names to suggest from (any iterable of strings;
            a dict contributes its keys).
    """
    close = difflib.get_close_matches(str(name), [str(k) for k in known], n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def unknown_name_message(kind: str, name: str, known: Iterable[str]) -> str:
    """Full error text for an unknown ``kind`` value: suggestion + list."""
    known = [str(k) for k in known]
    return (f"unknown {kind} {name!r}{did_you_mean(name, known)}; "
            f"available {kind}s: {known}")
