"""Campaign service: long-lived, fault-tolerant distributed sweeps.

Architecture -- four layers, strictly separated so each is testable
without the ones above it::

    repro serve / repro worker / repro submit        (CLI, http.py)
        |            JSON over HTTP (stdlib http.server; no new deps)
    ServiceState                                     (state.py)
        |  campaign registry: idempotent content-addressed submission,
        |  cross-campaign lease dispatch, cached /report rendering
    CampaignScheduler                                (scheduler.py)
        |  one campaign's state machine: grid expansion minus
        |  completed_ids(), lease handout with backpressure, retry with
        |  exponential backoff (RetryPolicy), expired-lease stealing
    LeaseTable + ResultStore                         (leases.py, store.py)
           append-only JSONL twins beside each other in the store
           directory: results.jsonl is *what finished*, leases.jsonl is
           *who owns what until when* -- both fsync per event, both
           replayable after a crash of the scheduler itself

Execution stays where it always was: workers (in-process threads or
``repro worker`` processes on other machines) run
:func:`~repro.campaigns.runner.execute_task` with per-process caches of
the heavy objects, and ship small JSON records back.

Failure modes and what absorbs them:

==========================  =========================================
failure                     recovery
==========================  =========================================
worker SIGKILL'd mid-task   lease expires after ``lease_ttl``; task
                            returns to pending; any worker steals it
worker wedged (no beat)     same -- heartbeats at ttl/3 keep only
                            *live* workers owning leases
task raises                 failed record appended; retried with
                            exponential backoff up to ``max_attempts``,
                            then parked as permanently failed
scheduler crash             reopen the store: results.jsonl restores
                            completed work, leases.jsonl restores
                            in-flight grants (already expired, hence
                            instantly stealable)
duplicate/zombie report     completed tasks ignore late records; both
                            copies were identical anyway (task seeds
                            are baked into payloads)
second writer on a store    advisory store lock -> StoreLockedError,
                            fail fast instead of interleaving
==========================  =========================================

Determinism: a campaign completed by any fleet -- serial runner, thread
pool, or a flaky 4-worker service losing workers mid-run -- produces
record-for-record identical deterministic payloads (task, result, error,
attempt, backoff_seconds); only wall-clock ``seconds`` and worker
provenance differ.
"""

from ..retry import NO_RETRY, RetryPolicy
from .http import CampaignServer, start_server
from .leases import Lease, LeaseTable
from .scheduler import DEFAULT_LEASE_TTL, CampaignScheduler
from .state import Campaign, ServiceState, campaign_id
from .worker import (
    HttpSchedulerClient,
    LocalSchedulerClient,
    SchedulerClient,
    default_worker_id,
    run_worker,
)

__all__ = [
    "Campaign", "CampaignScheduler", "CampaignServer",
    "DEFAULT_LEASE_TTL", "HttpSchedulerClient", "Lease", "LeaseTable",
    "LocalSchedulerClient", "NO_RETRY", "RetryPolicy", "SchedulerClient",
    "ServiceState", "campaign_id", "default_worker_id", "run_worker",
    "start_server",
]
