"""Lease table: crash-tolerant task ownership beside the result store.

A lease says "worker W owns task T until deadline D".  The table is an
in-memory map persisted as an append-only event log (``leases.jsonl`` in
the store directory, same discipline as ``results.jsonl``): ``lease``,
``renew``, ``release`` and ``expire`` events replay on open, so a
restarted scheduler recovers exactly which tasks were in flight -- and
their already-past deadlines make them immediately stealable.

The table is a passive data structure: it never sleeps, spawns threads,
or reads a wall clock behind the caller's back (``clock`` is injectable
for tests).  The scheduler decides *when* to call :meth:`expired` /
:meth:`expire`; workers drive :meth:`renew` through heartbeats.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

LEASES_FILE = "leases.jsonl"


@dataclass(frozen=True)
class Lease:
    """One grant: ``worker_id`` owns ``task_id`` until ``deadline``.

    ``attempt`` counts grants of this task over the table's lifetime
    (scheduling attempts, which include crash re-grants -- distinct from
    the *record* attempt a store stamps, which only counts executions
    that produced a record).
    """

    task_id: str
    worker_id: str
    deadline: float
    attempt: int = 1

    def expired(self, now: float) -> bool:
        return now >= self.deadline


class LeaseTable:
    """Active leases with append-only persistence.

    Args:
        path: Event-log file (``None`` keeps the table memory-only).
        clock: Wall-clock source (epoch seconds).  Deadlines persist
            across processes, so this must be a wall clock in production;
            tests inject a fake.
    """

    def __init__(self, path: str | Path | None = None,
                 clock: Callable[[], float] = time.time):
        self.path = Path(path) if path is not None else None
        self.clock = clock
        self._leases: dict[str, Lease] = {}
        self._grants: dict[str, int] = {}
        self._fh = None

    @classmethod
    def open(cls, path: str | Path,
             clock: Callable[[], float] = time.time) -> "LeaseTable":
        """Load (or start) a table at ``path``, replaying its event log."""
        table = cls(path, clock=clock)
        if table.path.exists():
            lines = table.path.read_text().splitlines()
            for lineno, line in enumerate(lines, start=1):
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    if lineno == len(lines):
                        continue  # torn tail from a crash mid-append
                    raise ValueError(
                        f"corrupt lease event at {table.path}:{lineno}")
                table._replay(event)
        return table

    def _replay(self, event: dict) -> None:
        kind = event["event"]
        tid = event["task_id"]
        if kind == "lease":
            self._leases[tid] = Lease(tid, event["worker_id"],
                                      event["deadline"], event["attempt"])
            self._grants[tid] = event["attempt"]
        elif kind == "renew":
            lease = self._leases.get(tid)
            if lease is not None and lease.worker_id == event["worker_id"]:
                self._leases[tid] = Lease(tid, lease.worker_id,
                                          event["deadline"], lease.attempt)
        elif kind in ("release", "expire"):
            self._leases.pop(tid, None)
        else:
            raise ValueError(f"unknown lease event {kind!r}")

    def _log(self, event: dict) -> None:
        if self.path is None:
            return
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    # Grants
    # ------------------------------------------------------------------
    def lease(self, task_id: str, worker_id: str,
              ttl: float) -> Lease | None:
        """Grant ``task_id`` to ``worker_id`` for ``ttl`` seconds.

        Returns ``None`` while another worker holds an unexpired lease
        on the task (an expired one is silently expired and re-granted).
        """
        now = self.clock()
        current = self._leases.get(task_id)
        if current is not None:
            if not current.expired(now):
                return None
            self.expire(task_id)
        attempt = self._grants.get(task_id, 0) + 1
        lease = Lease(task_id, worker_id, now + ttl, attempt)
        self._log({"event": "lease", "task_id": task_id,
                   "worker_id": worker_id, "deadline": lease.deadline,
                   "attempt": attempt})
        self._leases[task_id] = lease
        self._grants[task_id] = attempt
        return lease

    def renew(self, task_id: str, worker_id: str,
              ttl: float) -> Lease | None:
        """Heartbeat: push the deadline out.  ``None`` when the worker no
        longer holds the lease (it expired and may have been stolen)."""
        lease = self._leases.get(task_id)
        if lease is None or lease.worker_id != worker_id:
            return None
        renewed = Lease(task_id, worker_id, self.clock() + ttl,
                        lease.attempt)
        self._log({"event": "renew", "task_id": task_id,
                   "worker_id": worker_id, "deadline": renewed.deadline})
        self._leases[task_id] = renewed
        return renewed

    def release(self, task_id: str, worker_id: str | None = None) -> bool:
        """Drop a lease (task finished).  When ``worker_id`` is given the
        release only applies if that worker still holds it."""
        lease = self._leases.get(task_id)
        if lease is None:
            return False
        if worker_id is not None and lease.worker_id != worker_id:
            return False
        self._log({"event": "release", "task_id": task_id,
                   "worker_id": lease.worker_id})
        del self._leases[task_id]
        return True

    def expire(self, task_id: str) -> bool:
        """Forcibly return a task to pending (dead-worker recovery)."""
        lease = self._leases.pop(task_id, None)
        if lease is None:
            return False
        self._log({"event": "expire", "task_id": task_id,
                   "worker_id": lease.worker_id})
        return True

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def get(self, task_id: str) -> Lease | None:
        return self._leases.get(task_id)

    def active(self) -> list[Lease]:
        """All current leases (including ones past deadline but not yet
        expired by the scheduler), in grant order."""
        return list(self._leases.values())

    def held_by(self, worker_id: str) -> list[Lease]:
        return [l for l in self._leases.values()
                if l.worker_id == worker_id]

    def expired(self, now: float | None = None) -> list[Lease]:
        """Leases whose deadline has passed (not yet removed)."""
        now = self.clock() if now is None else now
        return [l for l in self._leases.values() if l.expired(now)]

    def grants(self, task_id: str) -> int:
        """Total scheduling attempts granted for a task so far."""
        return self._grants.get(task_id, 0)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self._leases)

    def __repr__(self) -> str:
        where = "memory" if self.path is None else str(self.path)
        return f"LeaseTable({where!r}, active={len(self._leases)})"
