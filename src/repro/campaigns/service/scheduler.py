"""Lease-based campaign scheduler: the service's task state machine.

:class:`CampaignScheduler` owns one campaign's progress: it expands the
spec once, subtracts what the store already completed, and thereafter
answers three events -- *a worker wants work* (:meth:`next_task`), *a
worker is still alive* (:meth:`heartbeat`), *a worker finished something*
(:meth:`report`) -- plus a periodic :meth:`tick` that steals expired
leases back from dead workers.  It never executes tasks and never blocks
on them: all methods return immediately, so one scheduler can feed any
number of workers through any front end (in-process threads, the HTTP
server, or both at once).

Fault model: a worker that vanishes (``kill -9``, network partition)
simply stops heartbeating; its lease expires after ``lease_ttl`` and the
task returns to pending for another worker to steal.  A task that *fails*
(records an error) is retried with the campaign's
:class:`~repro.campaigns.retry.RetryPolicy` -- exponential backoff gates
re-issue, and once attempts are exhausted the task is parked as
permanently failed.  Because each task's seed is baked into its payload,
any interleaving of workers, crashes and retries converges to the same
store records as a serial run.

Determinism of stamped metadata: ``attempt`` counts *records* (so a task
whose first worker died before reporting is still attempt 1) and
``backoff_seconds`` is the policy's deterministic delay for that attempt,
not measured wall time -- both identical to what a serial
:class:`~repro.campaigns.runner.CampaignRunner` stamps.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..retry import NO_RETRY, RetryPolicy
from ..spec import CampaignSpec, TaskSpec
from ..store import STATUS_DONE, ResultStore
from .leases import Lease, LeaseTable

#: Default lease lifetime.  Workers heartbeat at ttl / 3, so a healthy
#: worker never comes within two missed beats of losing its lease.
DEFAULT_LEASE_TTL = 30.0


class CampaignScheduler:
    """Thread-safe lease-issuing scheduler for one campaign.

    Args:
        spec: The campaign grid.
        store: Result store (the scheduler is its only writer).
        leases: Lease table; defaults to one persisted beside the store
            (``leases.jsonl``), or memory-only for ephemeral stores.
        retry: Failed-task retry policy.
        lease_ttl: Seconds a lease lives between heartbeats.
        max_outstanding: Backpressure bound on simultaneously leased
            tasks (``None`` = one per asking worker, unbounded).
        clock: Injectable wall clock (tests).
    """

    def __init__(self, spec: CampaignSpec, store: ResultStore,
                 leases: LeaseTable | None = None,
                 retry: RetryPolicy = NO_RETRY,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_outstanding: int | None = None,
                 clock: Callable[[], float] = time.time):
        if max_outstanding is not None and max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.spec = spec
        self.store = store
        if leases is None:
            leases = (LeaseTable(clock=clock) if store.path is None else
                      LeaseTable.open(store.path / "leases.jsonl",
                                      clock=clock))
        self.leases = leases
        self.retry = retry
        self.lease_ttl = float(lease_ttl)
        self.max_outstanding = max_outstanding
        self.clock = clock
        self._lock = threading.RLock()
        grid = spec.tasks()
        self._order = [t.task_id for t in grid]
        self._tasks = {t.task_id: t for t in grid}
        self._completed = set(store.completed_ids())
        self._failed_final = {
            tid for tid in store.failed_ids()
            if retry.exhausted(store.attempts(tid))}
        #: Backoff gates: task_id -> earliest re-issue time.
        self._not_before: dict[str, float] = {}
        self._stolen = 0

    # ------------------------------------------------------------------
    # Worker-facing events
    # ------------------------------------------------------------------
    def next_task(self, worker_id: str) -> tuple[TaskSpec, Lease] | None:
        """Lease the first available task to ``worker_id``.

        ``None`` means *no work right now*: everything is done, leased
        out, backing off, or the outstanding-lease bound is hit.  Callers
        should poll again (or stop, if :attr:`done`).
        """
        with self._lock:
            self.tick()
            if (self.max_outstanding is not None
                    and len(self.leases) >= self.max_outstanding):
                return None
            now = self.clock()
            for tid in self._order:
                if tid in self._completed or tid in self._failed_final:
                    continue
                if self.leases.get(tid) is not None:
                    continue
                if now < self._not_before.get(tid, 0.0):
                    continue
                lease = self.leases.lease(tid, worker_id, self.lease_ttl)
                if lease is not None:
                    return self._tasks[tid], lease
            return None

    def heartbeat(self, worker_id: str,
                  task_ids: list[str] | None = None) -> list[str]:
        """Renew ``worker_id``'s leases (all of them when ``task_ids`` is
        omitted); returns the ids actually renewed.  An id missing from
        the return value means the lease was lost (expired + stolen) and
        the worker should abandon that task."""
        with self._lock:
            if task_ids is None:
                task_ids = [l.task_id
                            for l in self.leases.held_by(worker_id)]
            renewed = []
            for tid in task_ids:
                if self.leases.renew(tid, worker_id,
                                     self.lease_ttl) is not None:
                    renewed.append(tid)
            return renewed

    def report(self, worker_id: str, record: dict) -> bool:
        """Accept one finished-task record from a worker.

        Returns False (record dropped) for unknown tasks and for tasks
        already completed -- the latter happens when a presumed-dead
        worker finishes after its lease was stolen and the thief also
        finished; both produced the same deterministic payload, so the
        duplicate is simply ignored.  The record is stamped with its
        ``attempt``/``backoff_seconds`` before the append, mirroring the
        serial runner.
        """
        tid = record.get("task_id")
        with self._lock:
            if tid not in self._tasks or tid in self._completed:
                if tid is not None:  # zombie still held a stale lease
                    self.leases.release(tid, worker_id)
                return False
            attempt = self.store.attempts(tid) + 1
            record = dict(record)
            record["attempt"] = attempt
            record["backoff_seconds"] = self.retry.delay(attempt)
            record["worker_id"] = worker_id
            self.store.append(record)
            self.leases.release(tid)
            if record["status"] == STATUS_DONE:
                self._completed.add(tid)
                self._not_before.pop(tid, None)
            elif self.retry.exhausted(attempt):
                self._failed_final.add(tid)
            else:
                self._not_before[tid] = (self.clock()
                                         + self.retry.delay(attempt + 1))
            return True

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def tick(self, now: float | None = None) -> list[str]:
        """Expire overdue leases, returning their task ids to pending."""
        with self._lock:
            stolen = []
            for lease in self.leases.expired(now):
                self.leases.expire(lease.task_id)
                stolen.append(lease.task_id)
            self._stolen += len(stolen)
            return stolen

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Every task completed or permanently failed."""
        with self._lock:
            return len(self._completed) + len(self._failed_final) \
                == len(self._order)

    def counts(self) -> dict:
        """Progress snapshot: totals plus per-strategy breakdown."""
        with self._lock:
            done = len(self._completed)
            failed = len(self._failed_final)
            total = len(self._order)
            per_strategy: dict[str, dict[str, int]] = {}
            for tid in self._order:
                row = per_strategy.setdefault(
                    self._tasks[tid].strategy,
                    {"total": 0, "done": 0, "failed": 0, "pending": 0})
                row["total"] += 1
                if tid in self._completed:
                    row["done"] += 1
                elif tid in self._failed_final:
                    row["failed"] += 1
                else:
                    row["pending"] += 1
            return {
                "total": total, "done": done, "failed": failed,
                "pending": total - done - failed,
                "leased": len(self.leases),
                "backing_off": sum(
                    1 for tid, t in self._not_before.items()
                    if t > self.clock()
                    and tid not in self._completed
                    and tid not in self._failed_final),
                "leases_stolen": self._stolen,
                "strategies": per_strategy,
            }

    def close(self) -> None:
        self.leases.close()
        self.store.close()

    def __repr__(self) -> str:
        return (f"CampaignScheduler({self.spec.name!r}, "
                f"tasks={len(self._order)}, "
                f"done={len(self._completed)}, leased={len(self.leases)})")
