"""Lease-based campaign scheduler: the service's task state machine.

:class:`CampaignScheduler` owns one campaign's progress: it expands the
spec once, subtracts what the store already completed, and thereafter
answers three events -- *a worker wants work* (:meth:`next_task`), *a
worker is still alive* (:meth:`heartbeat`), *a worker finished something*
(:meth:`report`) -- plus a periodic :meth:`tick` that steals expired
leases back from dead workers.  It never executes tasks and never blocks
on them: all methods return immediately, so one scheduler can feed any
number of workers through any front end (in-process threads, the HTTP
server, or both at once).

Fault model: a worker that vanishes (``kill -9``, network partition)
simply stops heartbeating; its lease expires after ``lease_ttl`` and the
task returns to pending for another worker to steal.  A task that *fails*
(records an error) is retried with the campaign's
:class:`~repro.campaigns.retry.RetryPolicy` -- exponential backoff gates
re-issue, and once attempts are exhausted the task is parked as
permanently failed.  Because each task's seed is baked into its payload,
any interleaving of workers, crashes and retries converges to the same
store records as a serial run.

Determinism of stamped metadata: ``attempt`` counts *records* (so a task
whose first worker died before reporting is still attempt 1) and
``backoff_seconds`` is the policy's deterministic delay for that attempt,
not measured wall time -- both identical to what a serial
:class:`~repro.campaigns.runner.CampaignRunner` stamps.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Callable

from ...obs import REGISTRY
from ..retry import NO_RETRY, RetryPolicy
from ..spec import CampaignSpec, TaskSpec
from ..store import STATUS_DONE, ResultStore
from .leases import Lease, LeaseTable

logger = logging.getLogger("repro.service.scheduler")

_LEASE_GRANTS = REGISTRY.counter(
    "repro_lease_grants_total", "Task leases granted to workers")
_LEASE_RENEWALS = REGISTRY.counter(
    "repro_lease_renewals_total", "Lease renewals via heartbeat")
_LEASE_EXPIRIES = REGISTRY.counter(
    "repro_lease_expiries_total",
    "Leases expired (stolen back from presumed-dead workers)")
_ZOMBIE_REPORTS = REGISTRY.counter(
    "repro_lease_zombie_reports_total",
    "Duplicate reports dropped after a lease was stolen and refilled")
_TASK_RETRIES = REGISTRY.counter(
    "repro_task_retries_total", "Failed tasks scheduled for another attempt")
_TASKS_COMPLETED = REGISTRY.counter(
    "repro_tasks_completed_total", "Tasks completed successfully")
_TASKS_FAILED = REGISTRY.counter(
    "repro_tasks_failed_total", "Tasks parked as permanently failed")

#: Completion timestamps kept for the throughput window (tasks/s, ETA).
_RATE_WINDOW = 64

#: Default lease lifetime.  Workers heartbeat at ttl / 3, so a healthy
#: worker never comes within two missed beats of losing its lease.
DEFAULT_LEASE_TTL = 30.0


class CampaignScheduler:
    """Thread-safe lease-issuing scheduler for one campaign.

    Args:
        spec: The campaign grid.
        store: Result store (the scheduler is its only writer).
        leases: Lease table; defaults to one persisted beside the store
            (``leases.jsonl``), or memory-only for ephemeral stores.
        retry: Failed-task retry policy.
        lease_ttl: Seconds a lease lives between heartbeats.
        max_outstanding: Backpressure bound on simultaneously leased
            tasks (``None`` = one per asking worker, unbounded).
        clock: Injectable wall clock (tests).
    """

    def __init__(self, spec: CampaignSpec, store: ResultStore,
                 leases: LeaseTable | None = None,
                 retry: RetryPolicy = NO_RETRY,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_outstanding: int | None = None,
                 clock: Callable[[], float] = time.time):
        if max_outstanding is not None and max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.spec = spec
        self.store = store
        if leases is None:
            leases = (LeaseTable(clock=clock) if store.path is None else
                      LeaseTable.open(store.path / "leases.jsonl",
                                      clock=clock))
        self.leases = leases
        self.retry = retry
        self.lease_ttl = float(lease_ttl)
        self.max_outstanding = max_outstanding
        self.clock = clock
        self._lock = threading.RLock()
        grid = spec.tasks()
        self._order = [t.task_id for t in grid]
        self._tasks = {t.task_id: t for t in grid}
        self._completed = set(store.completed_ids())
        self._failed_final = {
            tid for tid in store.failed_ids()
            if retry.exhausted(store.attempts(tid))}
        #: Backoff gates: task_id -> earliest re-issue time.
        self._not_before: dict[str, float] = {}
        self._stolen = 0
        #: Throughput bookkeeping: when this scheduler started, how many
        #: tasks the store already held, and a sliding window of
        #: completion times (clock units) for the tasks/s estimate.
        self._started = self.clock()
        self._initial_done = len(self._completed)
        self._completion_times: deque[float] = deque(maxlen=_RATE_WINDOW)

    # ------------------------------------------------------------------
    # Worker-facing events
    # ------------------------------------------------------------------
    def next_task(self, worker_id: str) -> tuple[TaskSpec, Lease] | None:
        """Lease the first available task to ``worker_id``.

        ``None`` means *no work right now*: everything is done, leased
        out, backing off, or the outstanding-lease bound is hit.  Callers
        should poll again (or stop, if :attr:`done`).
        """
        with self._lock:
            self.tick()
            if (self.max_outstanding is not None
                    and len(self.leases) >= self.max_outstanding):
                return None
            now = self.clock()
            for tid in self._order:
                if tid in self._completed or tid in self._failed_final:
                    continue
                if self.leases.get(tid) is not None:
                    continue
                if now < self._not_before.get(tid, 0.0):
                    continue
                lease = self.leases.lease(tid, worker_id, self.lease_ttl)
                if lease is not None:
                    _LEASE_GRANTS.inc()
                    logger.debug("leased task %s to worker %s", tid,
                                 worker_id)
                    return self._tasks[tid], lease
            return None

    def heartbeat(self, worker_id: str,
                  task_ids: list[str] | None = None) -> list[str]:
        """Renew ``worker_id``'s leases (all of them when ``task_ids`` is
        omitted); returns the ids actually renewed.  An id missing from
        the return value means the lease was lost (expired + stolen) and
        the worker should abandon that task."""
        with self._lock:
            if task_ids is None:
                task_ids = [l.task_id
                            for l in self.leases.held_by(worker_id)]
            renewed = []
            for tid in task_ids:
                if self.leases.renew(tid, worker_id,
                                     self.lease_ttl) is not None:
                    renewed.append(tid)
            if renewed:
                _LEASE_RENEWALS.inc(len(renewed))
            lost = set(task_ids) - set(renewed)
            if lost:
                logger.info("worker %s heartbeat: %d lease(s) already "
                            "lost (%s)", worker_id, len(lost),
                            ", ".join(sorted(lost)))
            return renewed

    def report(self, worker_id: str, record: dict) -> bool:
        """Accept one finished-task record from a worker.

        Returns False (record dropped) for unknown tasks and for tasks
        already completed -- the latter happens when a presumed-dead
        worker finishes after its lease was stolen and the thief also
        finished; both produced the same deterministic payload, so the
        duplicate is simply ignored.  The record is stamped with its
        ``attempt``/``backoff_seconds`` before the append, mirroring the
        serial runner.
        """
        tid = record.get("task_id")
        with self._lock:
            if tid not in self._tasks or tid in self._completed:
                if tid is not None:  # zombie still held a stale lease
                    self.leases.release(tid, worker_id)
                    _ZOMBIE_REPORTS.inc()
                    logger.info("dropped duplicate report for task %s "
                                "from worker %s (lease was stolen)", tid,
                                worker_id)
                return False
            attempt = self.store.attempts(tid) + 1
            record = dict(record)
            record["attempt"] = attempt
            record["backoff_seconds"] = self.retry.delay(attempt)
            record["worker_id"] = worker_id
            self.store.append(record)
            self.leases.release(tid)
            if record["status"] == STATUS_DONE:
                self._completed.add(tid)
                self._not_before.pop(tid, None)
                self._completion_times.append(self.clock())
                _TASKS_COMPLETED.inc()
                logger.debug("task %s done by worker %s (attempt %d)",
                             tid, worker_id, attempt)
            elif self.retry.exhausted(attempt):
                self._failed_final.add(tid)
                _TASKS_FAILED.inc()
                logger.warning("task %s permanently failed after %d "
                               "attempt(s) (worker %s)", tid, attempt,
                               worker_id)
            else:
                backoff = self.retry.delay(attempt + 1)
                self._not_before[tid] = self.clock() + backoff
                _TASK_RETRIES.inc()
                logger.warning("task %s failed (attempt %d, worker %s); "
                               "retrying after %.1fs", tid, attempt,
                               worker_id, backoff)
            return True

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def tick(self, now: float | None = None) -> list[str]:
        """Expire overdue leases, returning their task ids to pending."""
        with self._lock:
            stolen = []
            for lease in self.leases.expired(now):
                self.leases.expire(lease.task_id)
                stolen.append(lease.task_id)
                _LEASE_EXPIRIES.inc()
                logger.warning("lease on task %s expired (worker %s "
                               "presumed dead); task back to pending",
                               lease.task_id, lease.worker_id)
            self._stolen += len(stolen)
            return stolen

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Every task completed or permanently failed."""
        with self._lock:
            return len(self._completed) + len(self._failed_final) \
                == len(self._order)

    def counts(self) -> dict:
        """Progress snapshot: totals plus per-strategy breakdown."""
        with self._lock:
            done = len(self._completed)
            failed = len(self._failed_final)
            total = len(self._order)
            per_strategy: dict[str, dict[str, int]] = {}
            for tid in self._order:
                row = per_strategy.setdefault(
                    self._tasks[tid].strategy,
                    {"total": 0, "done": 0, "failed": 0, "pending": 0})
                row["total"] += 1
                if tid in self._completed:
                    row["done"] += 1
                elif tid in self._failed_final:
                    row["failed"] += 1
                else:
                    row["pending"] += 1
            # Throughput over the recent-completions window, falling back
            # to the whole-run average; both guard against a frozen or
            # injected clock (tests), where rate stays unknown (None).
            now = self.clock()
            window = self._completion_times
            rate = None
            if len(window) >= 2 and window[-1] > window[0]:
                rate = (len(window) - 1) / (window[-1] - window[0])
            elif done > self._initial_done and now > self._started:
                rate = (done - self._initial_done) / (now - self._started)
            pending = total - done - failed
            if pending == 0:
                eta = 0.0
            elif rate:
                eta = pending / rate
            else:
                eta = None
            return {
                "total": total, "done": done, "failed": failed,
                "pending": pending,
                "leased": len(self.leases),
                "backing_off": sum(
                    1 for tid, t in self._not_before.items()
                    if t > self.clock()
                    and tid not in self._completed
                    and tid not in self._failed_final),
                "leases_stolen": self._stolen,
                "tasks_per_second": (None if rate is None
                                     else round(rate, 4)),
                "eta_seconds": None if eta is None else round(eta, 1),
                "strategies": per_strategy,
            }

    def close(self) -> None:
        self.leases.close()
        self.store.close()

    def __repr__(self) -> str:
        return (f"CampaignScheduler({self.spec.name!r}, "
                f"tasks={len(self._order)}, "
                f"done={len(self._completed)}, leased={len(self.leases)})")
