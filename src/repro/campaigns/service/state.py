"""Service state: the campaign registry behind every front end.

:class:`ServiceState` is what ``repro serve`` actually serves: a registry
of live campaigns (each a :class:`~repro.campaigns.service.scheduler.
CampaignScheduler` over its own store under one root directory), plus the
operations the HTTP handlers and in-process workers share -- idempotent
spec submission, cross-campaign lease handout, status snapshots, and a
cached report layer so ``GET /report`` does not re-aggregate an unchanged
store on every request.

Submission is content-addressed: a spec's campaign id is
``<name>-<hash8>`` of its canonical JSON, so re-submitting the same spec
(a retrying client, a restarted driver) attaches to the existing store
and resumes instead of duplicating work.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Callable

from ...obs import REGISTRY, render_prometheus
from ..report import render_report
from ..retry import NO_RETRY, RetryPolicy
from ..spec import CampaignSpec
from ..store import ResultStore
from .scheduler import DEFAULT_LEASE_TTL, CampaignScheduler

#: Registry counters surfaced in ``/healthz`` (short key -> metric name).
_HEALTH_COUNTERS = {
    "lease_grants": "repro_lease_grants_total",
    "lease_renewals": "repro_lease_renewals_total",
    "lease_expiries": "repro_lease_expiries_total",
    "tasks_completed": "repro_tasks_completed_total",
    "tasks_failed": "repro_tasks_failed_total",
    "task_retries": "repro_task_retries_total",
}


def campaign_id(spec: CampaignSpec) -> str:
    """Stable content-addressed id: same spec, same campaign."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:8]
    return f"{spec.name}-{digest}"


class Campaign:
    """One registered campaign: scheduler + store + cached reports."""

    def __init__(self, cid: str, scheduler: CampaignScheduler):
        self.id = cid
        self.scheduler = scheduler
        self._report_cache: dict[tuple, tuple[int, str]] = {}
        self._lock = threading.Lock()

    @property
    def store(self) -> ResultStore:
        return self.scheduler.store

    def status(self) -> dict:
        counts = self.scheduler.counts()
        return {"campaign": self.id,
                "name": self.scheduler.spec.name,
                "store": (None if self.store.path is None
                          else str(self.store.path)),
                "complete": self.scheduler.done,
                **counts}

    def report(self, fmt: str = "markdown", tier: str = "device_model",
               improver: str = "clapton") -> str:
        """Rendered report, cached until the store gains records."""
        from ..aggregate import CampaignAggregate

        key = (fmt, tier, improver)
        with self._lock:
            generation = len(self.store)
            cached = self._report_cache.get(key)
            if cached is not None and cached[0] == generation:
                return cached[1]
            aggregate = CampaignAggregate.from_store(self.store)
            if fmt == "csv":
                text = aggregate.to_csv()
            elif fmt == "markdown":
                text = render_report(self.store, tier=tier,
                                     aggregate=aggregate,
                                     improver=improver)
            else:
                raise ValueError(f"unknown report format {fmt!r}; "
                                 f"expected 'markdown' or 'csv'")
            self._report_cache[key] = (generation, text)
            return text


class ServiceState:
    """Registry of live campaigns plus the worker-facing dispatch seam.

    Args:
        root: Directory submitted campaigns' stores are created under.
        retry: Retry policy applied to every campaign's failed tasks.
        lease_ttl: Lease lifetime handed to every scheduler.
        max_outstanding: Per-campaign backpressure bound.
        clock: Injectable wall clock (tests).
    """

    def __init__(self, root: str | Path, retry: RetryPolicy = NO_RETRY,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_outstanding: int | None = None,
                 clock: Callable[[], float] = time.time):
        self.root = Path(root)
        self.retry = retry
        self.lease_ttl = lease_ttl
        self.max_outstanding = max_outstanding
        self.clock = clock
        self.started = clock()
        self._campaigns: dict[str, Campaign] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def submit(self, spec_payload: dict) -> tuple[Campaign, bool]:
        """Register a campaign from a spec payload.

        Returns ``(campaign, resumed)``: idempotent on the spec's
        content-addressed id -- an already-registered or on-disk campaign
        is attached and resumed, never restarted.
        """
        spec = CampaignSpec.from_dict(spec_payload)
        cid = campaign_id(spec)
        with self._lock:
            existing = self._campaigns.get(cid)
            if existing is not None:
                return existing, True
            store_path = self.root / f"{cid}.campaign"
            resumed = (store_path / "results.jsonl").exists()
            if resumed:
                store = ResultStore.open(store_path)
            else:
                self.root.mkdir(parents=True, exist_ok=True)
                store = ResultStore.create(store_path, spec)
            return self._register(cid, spec, store), resumed

    def attach(self, store_path: str | Path) -> Campaign:
        """Register an existing store directory (``repro serve --store``);
        its recorded spec defines the grid."""
        store = ResultStore.open(store_path)
        cid = campaign_id(store.spec)
        with self._lock:
            if cid in self._campaigns:
                return self._campaigns[cid]
            return self._register(cid, store.spec, store)

    def _register(self, cid: str, spec: CampaignSpec,
                  store: ResultStore) -> Campaign:
        scheduler = CampaignScheduler(
            spec, store, retry=self.retry, lease_ttl=self.lease_ttl,
            max_outstanding=self.max_outstanding, clock=self.clock)
        campaign = Campaign(cid, scheduler)
        self._campaigns[cid] = campaign
        return campaign

    # ------------------------------------------------------------------
    # Lookup / status
    # ------------------------------------------------------------------
    def get(self, cid: str | None = None) -> Campaign:
        """Campaign by id; with ``None``, the sole registered campaign.

        Raises KeyError with the known ids when the lookup is ambiguous
        or misses.
        """
        with self._lock:
            if cid is None:
                if len(self._campaigns) == 1:
                    return next(iter(self._campaigns.values()))
                raise KeyError(
                    f"campaign id required ({len(self._campaigns)} "
                    f"registered: {sorted(self._campaigns)})")
            if cid not in self._campaigns:
                raise KeyError(f"unknown campaign {cid!r}; "
                               f"registered: {sorted(self._campaigns)}")
            return self._campaigns[cid]

    def campaigns(self) -> list[Campaign]:
        with self._lock:
            return list(self._campaigns.values())

    def status(self) -> dict:
        return {"uptime_seconds": self.clock() - self.started,
                "campaigns": [c.status() for c in self.campaigns()]}

    def health(self) -> dict:
        """``/healthz`` payload: liveness plus lease/task counter totals.

        Counter totals come from the process-wide metric registry, so
        they cover every campaign this process has served (including
        closed ones) -- a cheap aggregate view for load balancers and
        smoke tests; ``/metrics`` has the full labelled breakdown.
        """
        counters = {}
        for key, name in _HEALTH_COUNTERS.items():
            metric = REGISTRY.get(name)
            counters[key] = 0 if metric is None else int(metric.total())
        return {"status": "ok",
                "campaigns": len(self.campaigns()),
                "all_done": self.all_done,
                "uptime_seconds": round(self.clock() - self.started, 3),
                "counters": counters}

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``.

        Renders the process-wide registry, refreshing the service-level
        gauges first: uptime and one ``repro_campaign_tasks`` series per
        (campaign, state) so dashboards can plot per-campaign progress
        without parsing ``/status`` JSON.
        """
        uptime = REGISTRY.gauge(
            "repro_uptime_seconds", "Seconds since this service started")
        uptime.set(self.clock() - self.started)
        tasks = REGISTRY.gauge(
            "repro_campaign_tasks",
            "Campaign task counts by state (done/failed/pending/leased)")
        for campaign in self.campaigns():
            counts = campaign.scheduler.counts()
            for state in ("done", "failed", "pending", "leased"):
                tasks.set(counts[state], campaign=campaign.id,
                          state=state)
        return render_prometheus(REGISTRY)

    @property
    def all_done(self) -> bool:
        """True when at least one campaign is registered and all are
        complete (``repro serve --until-done``)."""
        campaigns = self.campaigns()
        return bool(campaigns) and all(c.scheduler.done for c in campaigns)

    # ------------------------------------------------------------------
    # Worker-facing dispatch (shared by HTTP handlers and local workers)
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> dict:
        """One unit of work for ``worker_id``, as a wire-ready payload.

        ``{"task": null, "done": bool}`` when nothing is available;
        otherwise the task payload plus its lease metadata.  Campaigns
        are drained in registration order.
        """
        for campaign in self.campaigns():
            grant = campaign.scheduler.next_task(worker_id)
            if grant is not None:
                task, lease = grant
                return {"task": task.to_dict(),
                        "campaign": campaign.id,
                        "task_id": lease.task_id,
                        "deadline": lease.deadline,
                        "ttl": campaign.scheduler.lease_ttl,
                        "scheduling_attempt": lease.attempt}
        return {"task": None, "done": self.all_done}

    def heartbeat(self, worker_id: str,
                  leases: list[dict] | None = None) -> dict:
        """Renew a worker's leases; ``leases`` is ``[{"campaign",
        "task_id"}, ...]`` (``None`` renews everything it holds)."""
        renewed = []
        if leases is None:
            for campaign in self.campaigns():
                renewed.extend(
                    {"campaign": campaign.id, "task_id": tid}
                    for tid in campaign.scheduler.heartbeat(worker_id))
        else:
            for entry in leases:
                try:
                    campaign = self.get(entry.get("campaign"))
                except KeyError:
                    continue
                for tid in campaign.scheduler.heartbeat(
                        worker_id, [entry["task_id"]]):
                    renewed.append({"campaign": campaign.id,
                                    "task_id": tid})
        return {"renewed": renewed}

    def complete(self, worker_id: str, cid: str | None,
                 record: dict) -> dict:
        """Accept a finished-task record from a worker."""
        campaign = self.get(cid)
        accepted = campaign.scheduler.report(worker_id, record)
        return {"accepted": accepted, "done": campaign.scheduler.done}

    def tick(self) -> int:
        """Expire overdue leases across all campaigns (ticker thread)."""
        return sum(len(c.scheduler.tick()) for c in self.campaigns())

    def close(self) -> None:
        for campaign in self.campaigns():
            campaign.scheduler.close()
