"""Service state: the campaign registry behind every front end.

:class:`ServiceState` is what ``repro serve`` actually serves: a registry
of live campaigns (each a :class:`~repro.campaigns.service.scheduler.
CampaignScheduler` over its own store under one root directory), plus the
operations the HTTP handlers and in-process workers share -- idempotent
spec submission, cross-campaign lease handout, status snapshots, and a
cached report layer so ``GET /report`` does not re-aggregate an unchanged
store on every request.

Submission is content-addressed: a spec's campaign id is
``<name>-<hash8>`` of its canonical JSON, so re-submitting the same spec
(a retrying client, a restarted driver) attaches to the existing store
and resumes instead of duplicating work.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Callable

from ...obs import (REGISTRY, TraceContext, build_info, current_span_id,
                    new_trace_id, publish_kernel_metrics,
                    render_prometheus)
from ..report import render_report
from ..retry import NO_RETRY, RetryPolicy
from ..spec import CampaignSpec
from ..store import ResultStore
from .scheduler import DEFAULT_LEASE_TTL, CampaignScheduler

#: Registry counters surfaced in ``/healthz`` (short key -> metric name).
_HEALTH_COUNTERS = {
    "lease_grants": "repro_lease_grants_total",
    "lease_renewals": "repro_lease_renewals_total",
    "lease_expiries": "repro_lease_expiries_total",
    "tasks_completed": "repro_tasks_completed_total",
    "tasks_failed": "repro_tasks_failed_total",
    "task_retries": "repro_task_retries_total",
}


def campaign_id(spec: CampaignSpec) -> str:
    """Stable content-addressed id: same spec, same campaign."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:8]
    return f"{spec.name}-{digest}"


class Campaign:
    """One registered campaign: scheduler + store + cached reports +
    the merged fleet trace collector."""

    def __init__(self, cid: str, scheduler: CampaignScheduler):
        self.id = cid
        self.scheduler = scheduler
        self._report_cache: dict[tuple, tuple[int, str]] = {}
        self._lock = threading.Lock()
        #: one trace per campaign; every lease grant carries this id
        self.trace_id = new_trace_id()
        self._trace_lock = threading.Lock()
        self._trace_ready = False
        self._trace_fh = None
        self._trace_t0: float | None = None
        self._trace_mem: list[str] = []

    @property
    def store(self) -> ResultStore:
        return self.scheduler.store

    def status(self) -> dict:
        counts = self.scheduler.counts()
        return {"campaign": self.id,
                "name": self.scheduler.spec.name,
                "store": (None if self.store.path is None
                          else str(self.store.path)),
                "complete": self.scheduler.done,
                **counts}

    def report(self, fmt: str = "markdown", tier: str = "device_model",
               improver: str = "clapton") -> str:
        """Rendered report, cached until the store gains records."""
        from ..aggregate import CampaignAggregate

        key = (fmt, tier, improver)
        with self._lock:
            generation = len(self.store)
            cached = self._report_cache.get(key)
            if cached is not None and cached[0] == generation:
                return cached[1]
            aggregate = CampaignAggregate.from_store(self.store)
            if fmt == "csv":
                text = aggregate.to_csv()
            elif fmt == "markdown":
                text = render_report(self.store, tier=tier,
                                     aggregate=aggregate,
                                     improver=improver)
            else:
                raise ValueError(f"unknown report format {fmt!r}; "
                                 f"expected 'markdown' or 'csv'")
            self._report_cache[key] = (generation, text)
            return text

    # ------------------------------------------------------------------
    # Merged fleet trace (POST /traces collector)
    # ------------------------------------------------------------------
    @property
    def trace_path(self) -> Path | None:
        if self.store.path is None:
            return None
        return Path(self.store.path) / "trace.jsonl"

    def _ensure_trace(self, unix_t0: float) -> None:
        """Open (or recover) this campaign's merged trace sink.

        A restarted server appending to an existing ``trace.jsonl``
        adopts its recorded ``trace_id`` and ``unix_t0`` anchor, so
        spans shipped before and after the restart stay on one
        coherent timebase under one trace id.
        """
        if self._trace_ready:
            return
        path = self.trace_path
        if path is not None and path.exists():
            try:
                with path.open("r", encoding="utf-8") as fh:
                    first = json.loads(fh.readline())
                if first.get("kind") == "meta":
                    self.trace_id = first.get("trace_id", self.trace_id)
                    self._trace_t0 = first.get("unix_t0")
            except (OSError, json.JSONDecodeError):
                pass  # torn header; rebase on this batch
            if self._trace_t0 is None:
                self._trace_t0 = unix_t0
            self._trace_fh = path.open("a", encoding="utf-8")
            self._trace_ready = True
            return
        self._trace_t0 = unix_t0
        meta = {"kind": "meta", "version": 1, "clock": "unix_relative",
                "merged": True, "trace_id": self.trace_id,
                "campaign": self.id, "unix_t0": unix_t0, **build_info()}
        line = json.dumps(meta) + "\n"
        if path is None:
            self._trace_mem.append(line)
        else:
            self._trace_fh = path.open("w", encoding="utf-8")
            self._trace_fh.write(line)
            self._trace_fh.flush()
        self._trace_ready = True

    def ingest_spans(self, worker_id: str, unix_t0: float,
                     spans: list[dict]) -> int:
        """Merge one worker's span batch into the campaign trace.

        Normalization makes batches from independent processes cohere:
        span/parent ids are namespaced ``"<worker>:<id>"`` (the summary
        treats ids as opaque keys), ``start`` offsets are rebased from
        the worker's monotonic clock onto the campaign's unix anchor
        via the batch's ``unix_t0``, and every span is stamped with a
        top-level ``"worker"`` for per-worker breakdowns.
        """
        accepted = 0
        with self._trace_lock:
            self._ensure_trace(unix_t0)
            shift = unix_t0 - self._trace_t0
            lines = []
            for span in spans:
                if not isinstance(span, dict) or "id" not in span:
                    continue
                record = dict(span)
                record["id"] = f"{worker_id}:{span['id']}"
                if span.get("parent") is not None:
                    record["parent"] = f"{worker_id}:{span['parent']}"
                record["start"] = round(float(span.get("start", 0.0))
                                        + shift, 9)
                record["worker"] = worker_id
                lines.append(json.dumps(record, separators=(",", ":"))
                             + "\n")
                accepted += 1
            if self._trace_fh is not None:
                self._trace_fh.writelines(lines)
                self._trace_fh.flush()
            else:
                self._trace_mem.extend(lines)
        return accepted

    def trace_text(self) -> str | None:
        """The merged trace as NDJSON text (``GET /trace``); ``None``
        until the first batch arrives."""
        with self._trace_lock:
            if not self._trace_ready:
                return None
            path = self.trace_path
            if path is None:
                return "".join(self._trace_mem)
            if self._trace_fh is not None:
                self._trace_fh.flush()
            return path.read_text(encoding="utf-8")

    def close_trace(self) -> None:
        with self._trace_lock:
            if self._trace_fh is not None and not self._trace_fh.closed:
                self._trace_fh.flush()
                self._trace_fh.close()


class ServiceState:
    """Registry of live campaigns plus the worker-facing dispatch seam.

    Args:
        root: Directory submitted campaigns' stores are created under.
        retry: Retry policy applied to every campaign's failed tasks.
        lease_ttl: Lease lifetime handed to every scheduler.
        max_outstanding: Per-campaign backpressure bound.
        clock: Injectable wall clock (tests).
    """

    def __init__(self, root: str | Path, retry: RetryPolicy = NO_RETRY,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_outstanding: int | None = None,
                 clock: Callable[[], float] = time.time):
        self.root = Path(root)
        self.retry = retry
        self.lease_ttl = lease_ttl
        self.max_outstanding = max_outstanding
        self.clock = clock
        self.started = clock()
        self._campaigns: dict[str, Campaign] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def submit(self, spec_payload: dict) -> tuple[Campaign, bool]:
        """Register a campaign from a spec payload.

        Returns ``(campaign, resumed)``: idempotent on the spec's
        content-addressed id -- an already-registered or on-disk campaign
        is attached and resumed, never restarted.
        """
        spec = CampaignSpec.from_dict(spec_payload)
        cid = campaign_id(spec)
        with self._lock:
            existing = self._campaigns.get(cid)
            if existing is not None:
                return existing, True
            store_path = self.root / f"{cid}.campaign"
            resumed = (store_path / "results.jsonl").exists()
            if resumed:
                store = ResultStore.open(store_path)
            else:
                self.root.mkdir(parents=True, exist_ok=True)
                store = ResultStore.create(store_path, spec)
            return self._register(cid, spec, store), resumed

    def attach(self, store_path: str | Path) -> Campaign:
        """Register an existing store directory (``repro serve --store``);
        its recorded spec defines the grid."""
        store = ResultStore.open(store_path)
        cid = campaign_id(store.spec)
        with self._lock:
            if cid in self._campaigns:
                return self._campaigns[cid]
            return self._register(cid, store.spec, store)

    def _register(self, cid: str, spec: CampaignSpec,
                  store: ResultStore) -> Campaign:
        scheduler = CampaignScheduler(
            spec, store, retry=self.retry, lease_ttl=self.lease_ttl,
            max_outstanding=self.max_outstanding, clock=self.clock)
        campaign = Campaign(cid, scheduler)
        self._campaigns[cid] = campaign
        return campaign

    # ------------------------------------------------------------------
    # Lookup / status
    # ------------------------------------------------------------------
    def get(self, cid: str | None = None) -> Campaign:
        """Campaign by id; with ``None``, the sole registered campaign.

        Raises KeyError with the known ids when the lookup is ambiguous
        or misses.
        """
        with self._lock:
            if cid is None:
                if len(self._campaigns) == 1:
                    return next(iter(self._campaigns.values()))
                raise KeyError(
                    f"campaign id required ({len(self._campaigns)} "
                    f"registered: {sorted(self._campaigns)})")
            if cid not in self._campaigns:
                raise KeyError(f"unknown campaign {cid!r}; "
                               f"registered: {sorted(self._campaigns)}")
            return self._campaigns[cid]

    def campaigns(self) -> list[Campaign]:
        with self._lock:
            return list(self._campaigns.values())

    def status(self) -> dict:
        return {"uptime_seconds": self.clock() - self.started,
                "campaigns": [c.status() for c in self.campaigns()]}

    def health(self) -> dict:
        """``/healthz`` payload: liveness plus lease/task counter totals.

        Counter totals come from the process-wide metric registry, so
        they cover every campaign this process has served (including
        closed ones) -- a cheap aggregate view for load balancers and
        smoke tests; ``/metrics`` has the full labelled breakdown.
        """
        counters = {}
        for key, name in _HEALTH_COUNTERS.items():
            metric = REGISTRY.get(name)
            counters[key] = 0 if metric is None else int(metric.total())
        return {"status": "ok",
                "campaigns": len(self.campaigns()),
                "all_done": self.all_done,
                "uptime_seconds": round(self.clock() - self.started, 3),
                "counters": counters}

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``.

        Renders the process-wide registry, refreshing the service-level
        gauges first: uptime and one ``repro_campaign_tasks`` series per
        (campaign, state) so dashboards can plot per-campaign progress
        without parsing ``/status`` JSON.
        """
        publish_kernel_metrics()
        uptime = REGISTRY.gauge(
            "repro_uptime_seconds", "Seconds since this service started")
        uptime.set(self.clock() - self.started)
        tasks = REGISTRY.gauge(
            "repro_campaign_tasks",
            "Campaign task counts by state (done/failed/pending/leased)")
        for campaign in self.campaigns():
            counts = campaign.scheduler.counts()
            for state in ("done", "failed", "pending", "leased"):
                tasks.set(counts[state], campaign=campaign.id,
                          state=state)
        return render_prometheus(REGISTRY)

    @property
    def all_done(self) -> bool:
        """True when at least one campaign is registered and all are
        complete (``repro serve --until-done``)."""
        campaigns = self.campaigns()
        return bool(campaigns) and all(c.scheduler.done for c in campaigns)

    # ------------------------------------------------------------------
    # Worker-facing dispatch (shared by HTTP handlers and local workers)
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> dict:
        """One unit of work for ``worker_id``, as a wire-ready payload.

        ``{"task": null, "done": bool}`` when nothing is available;
        otherwise the task payload plus its lease metadata.  Campaigns
        are drained in registration order.
        """
        for campaign in self.campaigns():
            grant = campaign.scheduler.next_task(worker_id)
            if grant is not None:
                task, lease = grant
                context = TraceContext(trace_id=campaign.trace_id,
                                       parent_span=current_span_id(),
                                       campaign=campaign.id,
                                       task_id=lease.task_id,
                                       worker=worker_id)
                return {"task": task.to_dict(),
                        "campaign": campaign.id,
                        "task_id": lease.task_id,
                        "deadline": lease.deadline,
                        "ttl": campaign.scheduler.lease_ttl,
                        "scheduling_attempt": lease.attempt,
                        "trace": context.to_dict()}
        return {"task": None, "done": self.all_done}

    def heartbeat(self, worker_id: str,
                  leases: list[dict] | None = None) -> dict:
        """Renew a worker's leases; ``leases`` is ``[{"campaign",
        "task_id"}, ...]`` (``None`` renews everything it holds)."""
        renewed = []
        if leases is None:
            for campaign in self.campaigns():
                renewed.extend(
                    {"campaign": campaign.id, "task_id": tid}
                    for tid in campaign.scheduler.heartbeat(worker_id))
        else:
            for entry in leases:
                try:
                    campaign = self.get(entry.get("campaign"))
                except KeyError:
                    continue
                for tid in campaign.scheduler.heartbeat(
                        worker_id, [entry["task_id"]]):
                    renewed.append({"campaign": campaign.id,
                                    "task_id": tid})
        return {"renewed": renewed}

    def complete(self, worker_id: str, cid: str | None,
                 record: dict) -> dict:
        """Accept a finished-task record from a worker."""
        campaign = self.get(cid)
        accepted = campaign.scheduler.report(worker_id, record)
        return {"accepted": accepted, "done": campaign.scheduler.done}

    def ingest_traces(self, payload: dict) -> dict:
        """Accept a worker's span batch (``POST /traces``).

        Spans route to campaigns by their ``tags.campaign`` (stamped on
        ``worker.task`` spans and inherited by the batch-level hint for
        everything else); spans for unknown campaigns are dropped, not
        fatal -- a worker must never crash because the server forgot a
        campaign.
        """
        worker_id = str(payload.get("worker_id") or "unknown")
        unix_t0 = float(payload.get("unix_t0") or 0.0)
        hint = payload.get("campaign")
        groups: dict[str | None, list[dict]] = {}
        for span in payload.get("spans") or []:
            if not isinstance(span, dict):
                continue
            cid = (span.get("tags") or {}).get("campaign") or hint
            groups.setdefault(cid, []).append(span)
        accepted = 0
        dropped = 0
        for cid, group in groups.items():
            try:
                campaign = self.get(cid)
            except KeyError:
                dropped += len(group)
                continue
            accepted += campaign.ingest_spans(worker_id, unix_t0, group)
        return {"accepted": accepted, "dropped": dropped}

    def tick(self) -> int:
        """Expire overdue leases across all campaigns (ticker thread)."""
        return sum(len(c.scheduler.tick()) for c in self.campaigns())

    def close(self) -> None:
        for campaign in self.campaigns():
            campaign.close_trace()
            campaign.scheduler.close()
