"""Fault-tolerant worker loop: lease, execute, heartbeat, report.

A worker is a dumb loop over one seam -- :class:`SchedulerClient` --
with two implementations: :class:`LocalSchedulerClient` calls a
:class:`~repro.campaigns.service.state.ServiceState` in the same process
(``repro serve --local-workers N``), and :class:`HttpSchedulerClient`
speaks the JSON wire protocol to a remote ``repro serve`` (``repro
worker --connect URL``).  The loop itself is identical either way:

    lease -> execute_task -> report, heartbeating while the task runs

Heavy per-process state stays worker-local by construction: tasks run
through :func:`~repro.campaigns.runner.execute_task`, whose module-level
``_E0_CACHE`` memoizes the dense eigensolve across every task the worker
process ever runs -- the scheduler ships only small JSON payloads, never
the heavy objects (the qibo ``parallel.py`` idiom).

Crash safety is the *scheduler's* job: a worker that dies mid-task simply
stops heartbeating and its lease expires.  The loop's own duties are to
heartbeat at ``ttl / 3`` while executing (so slow tasks are not stolen
from a live worker) and to tolerate a briefly unreachable server with
bounded retries instead of dying on the first connection error.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
import uuid
from typing import Callable, Protocol
from urllib import error as urlerror
from urllib import request as urlrequest

from ...obs import (REGISTRY, ShippingTracer, TraceContext, get_tracer,
                    set_tracer)
from ..runner import execute_task

logger = logging.getLogger("repro.service.worker")

_WORKER_TASKS = REGISTRY.counter(
    "repro_worker_tasks_total", "Tasks executed by this worker process")
_HEARTBEAT_SECONDS = REGISTRY.histogram(
    "repro_heartbeat_seconds", "Heartbeat round-trip latency")


def default_worker_id() -> str:
    """Cluster-unique worker identity: host, pid, and a random tail."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:6]}")


class SchedulerClient(Protocol):
    """What a worker needs from a scheduler, local or remote.

    ``post_traces`` is optional: when a client exposes it, the worker
    loop installs a :class:`~repro.obs.ShippingTracer` and batch-ships
    finished spans to the scheduler's trace collector.
    """

    def lease(self, worker_id: str) -> dict:
        """One work grant (see ``ServiceState.lease`` for the shape)."""
        ...

    def heartbeat(self, worker_id: str, leases: list[dict]) -> dict:
        ...

    def complete(self, worker_id: str, campaign: str | None,
                 record: dict) -> dict:
        ...


class LocalSchedulerClient:
    """In-process client: the serve loop's own worker threads."""

    def __init__(self, state):
        self.state = state

    def lease(self, worker_id: str) -> dict:
        return self.state.lease(worker_id)

    def heartbeat(self, worker_id: str, leases: list[dict]) -> dict:
        return self.state.heartbeat(worker_id, leases)

    def complete(self, worker_id: str, campaign: str | None,
                 record: dict) -> dict:
        return self.state.complete(worker_id, campaign, record)

    def post_traces(self, payload: dict) -> dict:
        return self.state.ingest_traces(payload)


class HttpSchedulerClient:
    """JSON-over-HTTP client for a remote ``repro serve``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _post(self, path: str, payload: dict) -> dict:
        body = json.dumps(payload).encode()
        req = urlrequest.Request(
            self.base_url + path, data=body,
            headers={"Content-Type": "application/json"})
        with urlrequest.urlopen(req, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode())

    def lease(self, worker_id: str) -> dict:
        return self._post("/lease", {"worker_id": worker_id})

    def heartbeat(self, worker_id: str, leases: list[dict]) -> dict:
        return self._post("/heartbeat", {"worker_id": worker_id,
                                         "leases": leases})

    def complete(self, worker_id: str, campaign: str | None,
                 record: dict) -> dict:
        return self._post("/complete", {"worker_id": worker_id,
                                        "campaign": campaign,
                                        "record": record})

    def post_traces(self, payload: dict) -> dict:
        return self._post("/traces", payload)


class _Heartbeat:
    """Background renewal of one lease while its task executes."""

    def __init__(self, client: SchedulerClient, worker_id: str,
                 campaign: str | None, task_id: str, interval: float):
        self._stop = threading.Event()

        def beat():
            while not self._stop.wait(interval):
                try:
                    self._client_beat()
                except Exception:
                    # a missed beat is survivable (the lease outlives
                    # several); a dead server will surface in the loop
                    pass

        self._client = client
        self._worker_id = worker_id
        self._leases = [{"campaign": campaign, "task_id": task_id}]
        self._thread = threading.Thread(target=beat, daemon=True,
                                        name=f"heartbeat-{task_id[:8]}")
        self._thread.start()

    def _client_beat(self):
        start = time.perf_counter()
        self._client.heartbeat(self._worker_id, self._leases)
        dt = time.perf_counter() - start
        _HEARTBEAT_SECONDS.observe(dt)
        get_tracer().event("worker.heartbeat", dt,
                           task_id=self._leases[0]["task_id"])

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=1.0)


def run_worker(client: SchedulerClient,
               worker_id: str | None = None, *,
               poll_interval: float = 0.5,
               exit_on_idle: bool = False,
               max_tasks: int | None = None,
               max_connect_failures: int = 20,
               on_event: Callable[[str, dict], None] | None = None,
               sleep: Callable[[float], None] = time.sleep) -> int:
    """Drain tasks from a scheduler until told (or allowed) to stop.

    Args:
        client: Local or HTTP scheduler client.
        worker_id: Stable identity for leases (generated when omitted).
        poll_interval: Idle sleep between lease polls.
        exit_on_idle: Return once the scheduler reports every campaign
            done (otherwise keep polling for new submissions forever).
        max_tasks: Stop after this many executions (tests, canaries).
        max_connect_failures: Consecutive unreachable-server polls
            tolerated before giving up (raises the last error).
        on_event: Observer hook ``(kind, payload)`` for CLI logging;
            kinds: ``lease``, ``record``, ``idle``, ``lost``.

    When the client exposes ``post_traces`` (both bundled clients do),
    the loop installs a :class:`~repro.obs.ShippingTracer` for its
    lifetime and batch-ships finished spans to the scheduler's trace
    collector after every completed task and on idle polls -- wrapping
    any already-installed recording tracer as a pass-through sink, or
    sharing a ShippingTracer another local worker thread installed.
    Shipping failures requeue the batch and never crash the worker.

    Returns the number of tasks executed.
    """
    worker_id = worker_id or default_worker_id()
    executed = 0
    connect_failures = 0
    notify = on_event or (lambda kind, payload: None)

    post_traces = getattr(client, "post_traces", None)
    shipper: ShippingTracer | None = None
    owned_tracer = False
    if post_traces is not None:
        current = get_tracer()
        if isinstance(current, ShippingTracer):
            shipper = current  # another local worker thread's shipper
        else:
            shipper = ShippingTracer(current if current.enabled else None)
            set_tracer(shipper)
            owned_tracer = True
    tracer = shipper if shipper is not None else get_tracer()
    last_campaign: str | None = None

    def ship(campaign: str | None) -> None:
        """Best-effort batch shipment; failures requeue, never raise."""
        if shipper is None or shipper.pending() == 0:
            return
        batch = shipper.batch(worker_id, campaign)
        if not batch["spans"]:
            return
        try:
            start = time.perf_counter()
            post_traces(batch)
            # lands in the *next* batch: the buffer was just drained
            tracer.event("worker.ship", time.perf_counter() - start,
                         spans=len(batch["spans"]))
        except Exception as exc:
            shipper.requeue(batch["spans"])
            logger.debug("worker %s could not ship %d span(s) (%s); "
                         "requeued", worker_id, len(batch["spans"]), exc)

    # one span over the whole loop: its *self time* is exactly the
    # otherwise-unattributed glue between tasks (notify hooks, record
    # serialization, heartbeat teardown), so a cleanly-exiting worker's
    # trace accounts for ~100% of its wall clock.  A killed worker never
    # emits it -- the chaos bar (>=95%) tolerates that lost tail.
    try:
        with tracer.span("worker.run", worker=worker_id):
            while True:
                try:
                    lease_start = time.perf_counter()
                    grant = client.lease(worker_id)
                    tracer.event("worker.lease",
                                 time.perf_counter() - lease_start)
                    connect_failures = 0
                except (urlerror.URLError, ConnectionError, TimeoutError) as exc:
                    connect_failures += 1
                    if connect_failures >= max_connect_failures:
                        logger.error("worker %s giving up after %d consecutive "
                                     "connect failures: %s", worker_id,
                                     connect_failures, exc)
                        raise
                    logger.warning("worker %s cannot reach scheduler (%s); "
                                   "retry %d/%d", worker_id, exc,
                                   connect_failures, max_connect_failures)
                    notify("lost", {"error": str(exc),
                                    "failures": connect_failures})
                    sleep(poll_interval)
                    tracer.event("worker.idle", poll_interval, reason="lost")
                    continue
                if grant.get("task") is None:
                    if exit_on_idle and grant.get("done"):
                        logger.info("worker %s: all campaigns done after %d "
                                    "task(s); exiting", worker_id, executed)
                        return executed
                    notify("idle", grant)
                    sleep(poll_interval)
                    tracer.event("worker.idle", poll_interval, reason="no_task")
                    ship(last_campaign)
                    continue
                campaign = grant.get("campaign")
                task_id = grant.get("task_id")
                last_campaign = campaign or last_campaign
                context = TraceContext.from_dict(grant.get("trace"))
                logger.info("worker %s leased task %s (campaign %s)", worker_id,
                            task_id, campaign)
                notify("lease", grant)
                # heartbeat at a third of the ttl: two missed beats of slack
                interval = max(0.05, float(grant.get("ttl") or 30.0) / 3.0)
                heart = _Heartbeat(client, worker_id, campaign, task_id,
                                   interval)
                try:
                    span_tags = {"task_id": task_id, "campaign": campaign,
                                 "worker": worker_id}
                    if context is not None:
                        span_tags["trace"] = context.trace_id
                        if context.parent_span is not None:
                            span_tags["remote_parent"] = context.parent_span
                    with tracer.span("worker.task", **span_tags):
                        record = execute_task(grant["task"])
                finally:
                    heart.stop()
                try:
                    complete_start = time.perf_counter()
                    ack = client.complete(worker_id, campaign, record)
                    tracer.event("worker.complete",
                                 time.perf_counter() - complete_start,
                                 task_id=task_id)
                except (urlerror.URLError, ConnectionError, TimeoutError) as exc:
                    # the record is lost but the work is not: the lease
                    # expires and another worker recomputes the identical
                    # record
                    logger.warning("worker %s could not report task %s (%s); "
                                   "lease will expire and the task will be "
                                   "recomputed", worker_id, task_id, exc)
                    notify("lost", {"error": str(exc), "task_id": task_id})
                    sleep(poll_interval)
                    continue
                ship(campaign)
                executed += 1
                _WORKER_TASKS.inc()
                logger.info("worker %s finished task %s (status %s)", worker_id,
                            task_id, record.get("status"))
                notify("record", {"record": record, "ack": ack})
                if max_tasks is not None and executed >= max_tasks:
                    logger.info("worker %s reached max_tasks=%d; exiting",
                                worker_id, max_tasks)
                    return executed
    finally:
        ship(last_campaign)
        if owned_tracer:
            set_tracer(shipper._underlying)
