"""Thin HTTP front end over :class:`ServiceState` (stdlib only).

``repro serve`` binds a :class:`~http.server.ThreadingHTTPServer` whose
handlers translate JSON requests into :class:`~repro.campaigns.service.
state.ServiceState` calls -- every endpoint is a few lines, and all
campaign logic stays in the scheduler where it is unit-testable without
sockets.  One request, one thread; the shared state is lock-protected.

Endpoints::

    GET  /healthz             liveness + uptime + lease/task counters
    GET  /metrics             Prometheus text exposition (version 0.0.4)
    GET  /campaigns           registered campaigns and their counts
    POST /campaigns           submit a CampaignSpec JSON (idempotent)
    GET  /status?campaign=ID  progress snapshot (per-strategy counts);
                              &stream=1 streams NDJSON snapshots until
                              the campaign completes
    GET  /report?campaign=ID  cached markdown report (&fmt=csv for rows,
                              &tier=..., &improver=...)
    GET  /trace?campaign=ID   merged fleet trace as NDJSON (404 until a
                              worker ships its first span batch)
    POST /lease               {"worker_id"} -> task grant or idle
    POST /heartbeat           {"worker_id", "leases": [...]}
    POST /complete            {"worker_id", "campaign", "record"}
    POST /traces              {"worker_id", "campaign", "unix_t0",
                              "spans": [...]} span batch -> merged
                              per-campaign trace.jsonl

Worker endpoints are POST because they mutate lease state; read-side
endpoints are plain GETs so ``curl`` is a usable debugging client.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .state import ServiceState

logger = logging.getLogger("repro.service.http")

#: Interval of the background lease-expiry ticker and of /status streams.
TICK_INTERVAL = 0.25

#: Content type of ``GET /metrics`` (Prometheus text exposition).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4"


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to a :class:`ServiceState` via the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # routed through logging, debug-level by default: heartbeats every
    # ttl/3 from every worker would swamp stderr; ``repro serve -v``
    # raises the level so access lines show
    def log_message(self, fmt, *args):
        level = (logging.INFO if getattr(self.server, "verbose", False)
                 else logging.DEBUG)
        logger.log(level, "%s %s", self.address_string(), fmt % args)

    @property
    def state(self) -> ServiceState:
        return self.server.state

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type",
                         f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length).decode())

    def _campaign(self, query: dict):
        cid = (query.get("campaign") or [None])[0]
        return self.state.get(cid)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._send_json(self.state.health())
            elif url.path == "/metrics":
                self._send_text(self.state.metrics_text(),
                                METRICS_CONTENT_TYPE)
            elif url.path == "/campaigns":
                self._send_json(self.state.status())
            elif url.path == "/status":
                if query.get("stream", ["0"])[0] in ("1", "true"):
                    self._stream_status(query)
                else:
                    self._send_json(self._campaign(query).status())
            elif url.path == "/report":
                campaign = self._campaign(query)
                fmt = (query.get("fmt") or ["markdown"])[0]
                text = campaign.report(
                    fmt=fmt,
                    tier=(query.get("tier") or ["device_model"])[0],
                    improver=(query.get("improver") or ["clapton"])[0])
                self._send_text(text, "text/csv" if fmt == "csv"
                                else "text/markdown")
            elif url.path == "/trace":
                text = self._campaign(query).trace_text()
                if text is None:
                    self._send_json({"error": "no trace ingested yet"},
                                    status=404)
                else:
                    self._send_text(text, "application/x-ndjson")
            else:
                self._send_json({"error": f"unknown path {url.path}"},
                                status=404)
        except KeyError as exc:
            self._send_json({"error": str(exc.args[0])}, status=404)
        except ValueError as exc:
            self._send_json({"error": str(exc)}, status=400)

    def _stream_status(self, query: dict) -> None:
        """NDJSON snapshots every tick until the campaign completes.

        Chunked so clients see progress live; the final line has
        ``"done": true``.
        """
        campaign = self._campaign(query)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(payload: dict) -> None:
            data = (json.dumps(payload) + "\n").encode()
            self.wfile.write(f"{len(data):x}\r\n".encode())
            self.wfile.write(data + b"\r\n")
            self.wfile.flush()

        while True:
            snapshot = campaign.status()
            chunk(snapshot)
            if snapshot["complete"]:
                break
            time.sleep(TICK_INTERVAL)
        self.wfile.write(b"0\r\n\r\n")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        url = urlparse(self.path)
        try:
            payload = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json({"error": f"bad JSON body: {exc}"},
                            status=400)
            return
        try:
            if url.path == "/campaigns":
                campaign, resumed = self.state.submit(payload)
                self._send_json({"campaign": campaign.id,
                                 "resumed": resumed,
                                 **campaign.status()},
                                status=200 if resumed else 201)
            elif url.path == "/lease":
                self._send_json(
                    self.state.lease(payload["worker_id"]))
            elif url.path == "/heartbeat":
                self._send_json(self.state.heartbeat(
                    payload["worker_id"], payload.get("leases")))
            elif url.path == "/complete":
                self._send_json(self.state.complete(
                    payload["worker_id"], payload.get("campaign"),
                    payload["record"]))
            elif url.path == "/traces":
                self._send_json(self.state.ingest_traces(payload))
            else:
                self._send_json({"error": f"unknown path {url.path}"},
                                status=404)
        except KeyError as exc:
            self._send_json({"error": f"missing/unknown key: "
                                      f"{exc.args[0]}"}, status=400)
        except (ValueError, TypeError) as exc:
            self._send_json({"error": str(exc)}, status=400)


class CampaignServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service state."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], state: ServiceState,
                 verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.state = state
        self.verbose = verbose
        self._ticker: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_ticker(self) -> None:
        """Expire overdue leases even when no requests arrive."""
        if self._ticker is not None:
            return

        def tick():
            while not self._stop.wait(TICK_INTERVAL):
                self.state.tick()

        self._ticker = threading.Thread(target=tick, daemon=True,
                                        name="lease-ticker")
        self._ticker.start()

    def stop(self) -> None:
        self._stop.set()
        self.shutdown()
        self.server_close()
        self.state.close()


def start_server(state: ServiceState, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> CampaignServer:
    """Bind, start the ticker, and serve in a daemon thread.

    ``port=0`` picks a free port (tests); read the bound one off
    ``server.url``.  The caller owns shutdown via ``server.stop()``.
    """
    server = CampaignServer((host, port), state, verbose=verbose)
    server.start_ticker()
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-serve")
    thread.start()
    return server
