"""Declarative campaign specs: a sweep grid and its expansion into tasks.

A :class:`CampaignSpec` describes one of the paper's figure grids --
benchmarks x qubit sizes x evaluation settings (device backends and/or
uniform-noise scale factors) x initialization methods x seeds -- plus the
engine/VQE configuration every cell shares.  ``CampaignSpec.tasks()``
expands the grid *deterministically* (nested loops in declared order) into
:class:`TaskSpec` work units, one method per unit, each carrying a stable
content-hash ``task_id``: the same spec always expands to the same ids, so
a restarted campaign can skip exactly the cells a previous run completed.

Both classes are plain-JSON round-trippable (``to_dict``/``from_dict``,
``save``/``load``), which is what lets a :class:`~repro.campaigns.runner.
CampaignRunner` ship tasks to process-pool workers and a
:class:`~repro.campaigns.store.ResultStore` persist them next to results.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from functools import cached_property
from pathlib import Path

from ..hamiltonians.registry import expand_benchmarks
from ..methods import DEFAULT_METHODS, resolve_methods
from ..mitigation import DEFAULT_MITIGATION, resolve_mitigation
from ..optim.engine import EngineConfig
from ..optim.genetic import GAConfig
from ..search import DEFAULT_STRATEGY, get_strategy

#: When True (see :func:`lenient_methods`), specs naming unregistered
#: methods or strategies construct instead of raising -- required so
#: ``repro status`` / ``repro report`` can open a store whose campaign
#: used a method/strategy that was registered in the producing process
#: but not in this one.
_LENIENT_METHODS = False


@contextlib.contextmanager
def lenient_methods():
    """Temporarily allow specs to name unregistered methods (store
    reads; never used on the declaration/run path)."""
    global _LENIENT_METHODS
    previous = _LENIENT_METHODS
    _LENIENT_METHODS = True
    try:
        yield
    finally:
        _LENIENT_METHODS = previous

#: Uniform-noise parameters at scale 1.0 (the Fig. 7/8 working point).
DEFAULT_BASE_NOISE = {
    "depol_1q": 1e-3,
    "depol_2q": 1e-2,
    "readout": 2e-2,
    "t1": 100e-6,
}

#: Engine presets addressable from a spec file.
ENGINE_PRESETS = ("paper", "fast", "smoke")


# ----------------------------------------------------------------------
# EngineConfig <-> dict
# ----------------------------------------------------------------------
def engine_to_dict(config: EngineConfig) -> dict:
    """JSON form of an :class:`EngineConfig` (nested ``ga`` included).

    The deprecated ``num_processes`` knob is not shipped: campaigns
    parallelize by sharding *tasks* (each engine stays serial inside its
    worker so sharded runs reproduce serial numbers).
    """
    out = asdict(config)
    if out.pop("num_processes", 1) > 1:
        import warnings

        warnings.warn(
            "EngineConfig.num_processes is ignored by campaigns; shard "
            "tasks instead (CampaignRunner(executor=...) / `repro sweep "
            "--jobs N`)", DeprecationWarning, stacklevel=2)
    return out


def engine_from_dict(data: dict) -> EngineConfig:
    ga = GAConfig(**data.get("ga", {}))
    fields = {k: v for k, v in data.items() if k != "ga"}
    return EngineConfig(ga=ga, **fields)


def _preset_engine(name: str) -> EngineConfig:
    from ..experiments.config import FAST_ENGINE, PAPER_ENGINE, SMOKE_ENGINE

    presets = {"paper": PAPER_ENGINE, "fast": FAST_ENGINE,
               "smoke": SMOKE_ENGINE}
    if name not in presets:
        raise ValueError(f"unknown engine preset {name!r}; "
                         f"expected one of {ENGINE_PRESETS}")
    return presets[name]


# ----------------------------------------------------------------------
# Settings: one evaluation environment of the grid
# ----------------------------------------------------------------------
def setting_label(setting: dict) -> str:
    """Short human label for one setting (report axes, CSV columns)."""
    kind = setting["kind"]
    if kind == "backend":
        return setting["backend"]
    if kind == "noise":
        return f"noise_x{setting['scale']:g}"
    if kind == "noise_model":
        digest = hashlib.sha256(
            _canonical(setting["model"]).encode()).hexdigest()[:8]
        return f"noise_model_{digest}"
    if kind == "noiseless":
        return "noiseless"
    raise ValueError(f"unknown setting kind {kind!r}")


def _scaled_noise(setting: dict, num_qubits: int):
    """Uniform noise model at a scale factor: error rates scale up,
    coherence times scale down."""
    from ..noise.model import NoiseModel

    base = dict(DEFAULT_BASE_NOISE, **setting.get("base", {}))
    scale = float(setting["scale"])
    t1 = base.get("t1")
    return NoiseModel.uniform(
        num_qubits,
        depol_1q=min(1.0, base["depol_1q"] * scale),
        depol_2q=min(1.0, base["depol_2q"] * scale),
        readout=min(0.5, base["readout"] * scale),
        t1=(None if t1 is None or scale == 0 else t1 / scale),
    )


# ----------------------------------------------------------------------
# TaskSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskSpec:
    """One campaign work unit: one method on one problem cell.

    Attributes:
        benchmark: Registry name or parameterized spec
            (``repro.hamiltonians.get_benchmark``), or a free label when
            ``hamiltonian`` is given explicitly.
        num_qubits: Physics-model width (chemistry and parameterized
            benchmarks ignore it).
        method: Any registered method name (``repro methods``).
        strategy: Any registered search-strategy name
            (``repro strategies``); the default is the Figure-4 engine.
        mitigation: Mitigation name or composed ``"zne:folds=3|readout"``
            spec (``repro mitigations``) applied to the task's noisy
            evaluation tiers; the default ``"none"`` leaves estimates
            raw (and the payload shape unchanged).
        seed: Cell seed; folded into the engine seed and the VQE seed by
            :meth:`CampaignSpec.tasks` (explicitly constructed tasks may
            decouple them via ``engine["seed"]``).
        setting: Evaluation environment, one of
            ``{"kind": "backend", "backend": name}``,
            ``{"kind": "noise", "scale": s, "base": {...}}``,
            ``{"kind": "noise_model", "model": NoiseModel.to_dict()}``,
            ``{"kind": "noiseless"}``.
        engine: ``EngineConfig`` payload (:func:`engine_to_dict`).
        vqe_iterations / vqe_shots: Online-phase budget (0 skips VQE).
        entanglement: Ansatz entanglement pattern.
        hamiltonian: Optional explicit PauliSum payload
            (:func:`~repro.paulis.serialization.pauli_sum_to_dict`);
            overrides the registry lookup.
        e0: Optional precomputed exact ground energy (skips the per-task
            eigensolve when many settings share one Hamiltonian).
    """

    benchmark: str
    num_qubits: int
    method: str
    seed: int
    setting: dict
    engine: dict
    strategy: str = DEFAULT_STRATEGY
    mitigation: str = DEFAULT_MITIGATION
    vqe_iterations: int = 0
    vqe_shots: int | None = None
    entanglement: str = "circular"
    hamiltonian: dict | None = None
    e0: float | None = None

    # -- identity ------------------------------------------------------
    @cached_property
    def task_id(self) -> str:
        """Stable content hash: identical payloads -> identical ids.

        Cached (the hash covers an immutable payload that may embed a
        full Hamiltonian); ``cached_property`` writes through
        ``__dict__``, which frozen dataclasses permit.
        """
        digest = hashlib.sha256(_canonical(self.to_dict()).encode())
        return f"t{digest.hexdigest()[:16]}"

    @property
    def label(self) -> str:
        # the strategy/mitigation segments appear only off the default,
        # so labels (and everything keyed on them) are unchanged for
        # plain GA campaigns
        strategy = ("" if self.strategy == DEFAULT_STRATEGY
                    else f"/{self.strategy}")
        mitigation = ("" if self.mitigation == DEFAULT_MITIGATION
                      else f"/{self.mitigation}")
        return (f"{self.benchmark}/{self.num_qubits}q/"
                f"{setting_label(self.setting)}/{self.method}"
                f"{strategy}{mitigation}/s{self.seed}")

    # -- JSON ----------------------------------------------------------
    def to_dict(self) -> dict:
        out = asdict(self)
        if out["strategy"] == DEFAULT_STRATEGY:
            # default-strategy payloads keep the pre-axis shape, so
            # their content-hash task ids (and hence resume/status
            # against stores recorded before the axis existed) are
            # byte-identical; from_dict restores the default
            del out["strategy"]
        if out["mitigation"] == DEFAULT_MITIGATION:
            # same contract for the mitigation axis
            del out["mitigation"]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TaskSpec":
        return cls(**data)

    # -- execution -----------------------------------------------------
    def build_experiment(self):
        """Materialize the :class:`~repro.experiments.Experiment`."""
        from ..backends.fake import ALL_BACKENDS
        from ..experiments.experiment import Experiment
        from ..hamiltonians.registry import get_benchmark
        from ..noise.model import NoiseModel
        from ..paulis.serialization import pauli_sum_from_dict

        if self.hamiltonian is not None:
            h = pauli_sum_from_dict(self.hamiltonian)
        else:
            h = get_benchmark(self.benchmark, self.num_qubits).hamiltonian()
        kind = self.setting["kind"]
        if kind == "backend":
            name = self.setting["backend"]
            if name not in ALL_BACKENDS:
                raise ValueError(f"unknown backend {name!r}; "
                                 f"known: {sorted(ALL_BACKENDS)}")
            return Experiment(h, backend=ALL_BACKENDS[name](),
                              entanglement=self.entanglement,
                              name=self.benchmark, e0=self.e0)
        if kind == "noise":
            noise = _scaled_noise(self.setting, h.num_qubits)
        elif kind == "noise_model":
            noise = NoiseModel.from_dict(self.setting["model"])
        elif kind == "noiseless":
            noise = None
        else:
            raise ValueError(f"unknown setting kind {kind!r}")
        return Experiment(h, noise_model=noise,
                          entanglement=self.entanglement,
                          name=self.benchmark, e0=self.e0)

    def run(self) -> dict:
        """Execute this task and return the ExperimentResult payload.

        The engine runs *serially inside* the task -- campaign-level
        sharding is the parallel axis -- so a sharded campaign produces
        bit-identical numbers to a serial one.
        """
        experiment = self.build_experiment()
        result = experiment.run(
            methods=(self.method,),
            config=engine_from_dict(self.engine),
            vqe_iterations=self.vqe_iterations,
            vqe_shots=self.vqe_shots,
            seed=self.seed,
            strategy=self.strategy,
            mitigation=self.mitigation,
        )
        return result.to_dict()


# ----------------------------------------------------------------------
# CampaignSpec
# ----------------------------------------------------------------------
@dataclass
class CampaignSpec:
    """A declarative sweep grid plus shared run configuration.

    The grid axes expand in declared order (benchmarks, then qubit sizes,
    then settings -- backends before noise scales -- then methods, then
    search strategies, then mitigations, then seeds), so ``tasks()`` is a
    pure function of the spec.

    Attributes:
        name: Campaign label (store headers, reports).
        benchmarks: Registry names, parameterized ``family:key=value``
            specs, and/or ``suite:<name>`` entries (``repro benchmarks``);
            suites expand in place, in declared order.
        qubit_sizes: Physics-model widths (chemistry is always 10q).
        backends: Named device backends (``toronto``, ``nairobi``, ...).
        noise_scales: Uniform-noise scale factors applied to
            ``base_noise`` (errors multiplied, T1 divided).
        base_noise: Scale-1.0 uniform noise parameters; merged over
            :data:`DEFAULT_BASE_NOISE`.
        methods: Registered method names (``repro methods``); defaults to
            the built-in trio.
        strategies: Registered search-strategy names
            (``repro strategies``); defaults to the Figure-4
            ``multi_ga`` engine alone, so pre-axis specs expand to the
            same grid.
        mitigations: Mitigation names and/or composed
            ``"zne:folds=3|readout"`` specs (``repro mitigations``);
            defaults to ``["none"]`` alone, so pre-axis specs expand to
            the same grid with unchanged task ids.
        seeds: Cell seeds; each becomes the engine *and* VQE seed.
        engine_preset / engine_overrides: Base :class:`EngineConfig`
            preset name plus field overrides (e.g. ``{"num_instances":
            2}``).
        vqe_iterations / vqe_shots: Online-phase budget per task.
        entanglement: Ansatz entanglement pattern.
    """

    name: str
    benchmarks: list[str]
    qubit_sizes: list[int] = field(default_factory=lambda: [10])
    backends: list[str] = field(default_factory=list)
    noise_scales: list[float] = field(default_factory=list)
    base_noise: dict = field(default_factory=dict)
    methods: list[str] = field(default_factory=lambda: list(DEFAULT_METHODS))
    strategies: list[str] = field(
        default_factory=lambda: [DEFAULT_STRATEGY])
    mitigations: list[str] = field(
        default_factory=lambda: [DEFAULT_MITIGATION])
    seeds: list[int] = field(default_factory=lambda: [0])
    engine_preset: str = "fast"
    engine_overrides: dict = field(default_factory=dict)
    vqe_iterations: int = 0
    vqe_shots: int | None = None
    entanglement: str = "circular"

    def __post_init__(self):
        if not _LENIENT_METHODS:
            # same did-you-mean ValueError contract as Experiment.run
            resolve_methods(self.methods)
            if not self.strategies:
                raise ValueError("strategies must name at least one "
                                 "registered search strategy")
            for name in self.strategies:
                try:
                    get_strategy(name)
                except KeyError as exc:  # did-you-mean, at declaration
                    raise ValueError(str(exc.args[0])) from None
            if not self.mitigations:
                raise ValueError("mitigations must name at least one "
                                 "registered mitigation strategy")
            for name in self.mitigations:
                try:
                    resolve_mitigation(name)
                except KeyError as exc:  # did-you-mean, at declaration
                    raise ValueError(str(exc.args[0])) from None
            try:
                self.expanded_benchmarks()
            except KeyError as exc:  # unknown suite: fail at declaration
                raise ValueError(str(exc.args[0])) from None
        for axis, values in (
                ("benchmarks", self.expanded_benchmarks(lenient=True)),
                *((a, getattr(self, a)) for a in
                  ("qubit_sizes", "backends", "noise_scales", "methods",
                   "strategies", "mitigations", "seeds"))):
            if len(set(values)) != len(values):
                # duplicates would expand to colliding task ids, leaving
                # phantom forever-pending tasks in every status count
                raise ValueError(f"duplicate values in {axis}: {values}")
        if "num_processes" in self.engine_overrides:
            raise ValueError(
                "engine_overrides cannot set num_processes: campaigns "
                "parallelize by sharding tasks (`repro sweep --jobs N`)")
        bad_noise = set(self.base_noise) - set(DEFAULT_BASE_NOISE)
        if bad_noise:
            # a typo'd key would silently run the default noise point
            raise ValueError(
                f"unknown base_noise keys {sorted(bad_noise)}; "
                f"expected a subset of {sorted(DEFAULT_BASE_NOISE)}")
        if self.backends:
            from ..backends.fake import ALL_BACKENDS

            bad = [b for b in self.backends if b not in ALL_BACKENDS]
            if bad:
                raise ValueError(f"unknown backends {bad}; "
                                 f"known: {sorted(ALL_BACKENDS)}")
        try:
            self.engine_config()  # validate preset + overrides early
        except TypeError as exc:
            raise ValueError(
                f"bad engine_overrides {self.engine_overrides}: "
                f"{exc}") from None

    # -- grid ----------------------------------------------------------
    def expanded_benchmarks(self, lenient: bool = False) -> list[str]:
        """The benchmark axis with ``suite:*`` entries expanded in place.

        ``lenient=True`` (store-read paths) passes unknown suites through
        unexpanded instead of raising.
        """
        return expand_benchmarks(self.benchmarks, lenient=lenient)

    def unresolved_suites(self) -> list[str]:
        """``suite:*`` entries this process cannot expand (not registered
        here); non-empty means grid-derived counts are lower bounds."""
        return [b for b in self.expanded_benchmarks(lenient=True)
                if b.startswith("suite:")]

    def settings(self) -> list[dict]:
        """The evaluation-environment axis, in expansion order."""
        out: list[dict] = [{"kind": "backend", "backend": b}
                           for b in self.backends]
        for scale in self.noise_scales:
            setting = {"kind": "noise", "scale": float(scale)}
            if self.base_noise:
                setting["base"] = dict(self.base_noise)
            out.append(setting)
        if not out:
            out.append({"kind": "noiseless"})
        return out

    def engine_config(self, seed: int | None = None) -> EngineConfig:
        """Preset + overrides, optionally reseeded."""
        config = replace(_preset_engine(self.engine_preset),
                         **self.engine_overrides)
        if seed is not None:
            config = replace(config, seed=seed)
        return config

    def tasks(self) -> list[TaskSpec]:
        """Deterministic grid expansion into ordered work units."""
        out: list[TaskSpec] = []
        settings = self.settings()
        for benchmark in self.expanded_benchmarks():
            for num_qubits in self.qubit_sizes:
                for setting in settings:
                    for method in self.methods:
                        for strategy in self.strategies:
                            for mitigation in self.mitigations:
                                for seed in self.seeds:
                                    out.append(TaskSpec(
                                        benchmark=benchmark,
                                        num_qubits=num_qubits,
                                        method=method,
                                        strategy=strategy,
                                        mitigation=mitigation,
                                        seed=seed,
                                        setting=setting,
                                        engine=engine_to_dict(
                                            self.engine_config(seed)),
                                        vqe_iterations=self.vqe_iterations,
                                        vqe_shots=self.vqe_shots,
                                        entanglement=self.entanglement,
                                    ))
        return out

    @property
    def num_tasks(self) -> int:
        # lenient: store reads (counts/status) must survive suites this
        # process never registered; tasks() stays strict for the run path
        return (len(self.expanded_benchmarks(lenient=True))
                * len(self.qubit_sizes)
                * len(self.settings()) * len(self.methods)
                * len(self.strategies) * len(self.mitigations)
                * len(self.seeds))

    # -- JSON ----------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        return cls(**data)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _canonical(payload: dict) -> str:
    """Canonical JSON for hashing: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
