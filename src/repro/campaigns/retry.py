"""Retry policy shared by the in-process runner and the campaign service.

One small dataclass answers the two questions every retry path asks:
*may this task run again?* (:meth:`RetryPolicy.exhausted`) and *how long
must it wait first?* (:meth:`RetryPolicy.delay`, exponential backoff with
a cap).  The policy is pure arithmetic -- no clocks, no sleeping -- so the
:class:`~repro.campaigns.runner.CampaignRunner` and the service scheduler
apply identical schedules and the ``backoff_seconds`` they stamp into
store records is deterministic (a retried campaign replays to the same
records wherever it ran).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How failed tasks are re-attempted.

    Attributes:
        max_attempts: Total executions a task may get (1 = no retry,
            the historical behavior).
        backoff_base: Delay before the second attempt, in seconds.
        backoff_factor: Multiplier applied per further attempt.
        backoff_max: Ceiling on any single delay.
    """

    max_attempts: int = 1
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if min(self.backoff_base, self.backoff_max) < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before 1-based ``attempt`` (0 for the first)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 2))

    def exhausted(self, attempts: int) -> bool:
        """True once ``attempts`` executions have been used up."""
        return attempts >= self.max_attempts


#: The historical runner behavior: one execution, no backoff.
NO_RETRY = RetryPolicy()
