"""Persistent campaign result store: append-only JSONL + in-memory index.

Layout of a store directory::

    <store>/
      spec.json       # the CampaignSpec (written once, atomically)
      results.jsonl   # one record per completed/failed task, append-only

Records are flat JSON objects ``{"task_id", "status", "seconds", "task",
"result", "error"}``.  Appends flush + fsync before returning, so a crash
loses at most the record being written; :meth:`ResultStore.open` rebuilds
the index by scanning the log and silently drops a torn trailing line.
Re-recording a task id appends a new line and the *latest* record wins --
the log is an audit trail, the index is the truth.

``ResultStore.ephemeral`` keeps the same interface fully in memory for
one-off campaigns (the legacy ``sweep_relative_improvement`` wrapper).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .spec import CampaignSpec, lenient_methods

_SPEC_FILE = "spec.json"
_RESULTS_FILE = "results.jsonl"

#: Record statuses.  A task absent from the index is *pending*.
STATUS_DONE = "done"
STATUS_FAILED = "failed"


class ResultStore:
    """Index over a campaign's append-only result log.

    Use the constructors: :meth:`create` for a fresh directory,
    :meth:`open` to reopen an existing one (resume, status, reporting),
    and :meth:`ephemeral` for an in-memory store.
    """

    def __init__(self, path: Path | None, spec: CampaignSpec):
        self.path = Path(path) if path is not None else None
        self.spec = spec
        self._records: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, spec: CampaignSpec) -> "ResultStore":
        """Initialize a new store directory (must not already hold one)."""
        path = Path(path)
        if path.exists() and not path.is_dir():
            raise NotADirectoryError(f"store path {path} is not a directory")
        if (path / _RESULTS_FILE).exists():
            raise FileExistsError(
                f"{path} already holds a campaign store; "
                f"open() it to resume or pick a fresh directory")
        path.mkdir(parents=True, exist_ok=True)
        _atomic_write(path / _SPEC_FILE,
                      json.dumps(spec.to_dict(), indent=2) + "\n")
        (path / _RESULTS_FILE).touch()
        return cls(path, spec)

    @classmethod
    def open(cls, path: str | Path) -> "ResultStore":
        """Reopen an existing store, rebuilding the index from the log."""
        path = Path(path)
        spec_path = path / _SPEC_FILE
        if not spec_path.exists():
            raise FileNotFoundError(f"no campaign store at {path} "
                                    f"(missing {_SPEC_FILE})")
        # read path: the producing process may have registered methods
        # this one has not; status/report must still work
        with lenient_methods():
            store = cls(path, CampaignSpec.load(spec_path))
        results = path / _RESULTS_FILE
        if results.exists():
            with open(results) as fh:
                for line in fh:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn trailing line from a crash
                    store._records[record["task_id"]] = record
        return store

    @classmethod
    def ephemeral(cls, spec: CampaignSpec) -> "ResultStore":
        """In-memory store (no files) for one-off campaigns."""
        return cls(None, spec)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Checkpoint one task record (flush + fsync when file-backed)."""
        if "task_id" not in record or "status" not in record:
            raise ValueError("record needs task_id and status")
        if self.path is not None:
            line = json.dumps(record, sort_keys=True)
            with open(self.path / _RESULTS_FILE, "a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        self._records[record["task_id"]] = record

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def record(self, task_id: str) -> dict | None:
        return self._records.get(task_id)

    def records(self) -> list[dict]:
        """Latest record per task, in first-recorded order."""
        return list(self._records.values())

    def completed_ids(self) -> set[str]:
        return {tid for tid, r in self._records.items()
                if r["status"] == STATUS_DONE}

    def failed_ids(self) -> set[str]:
        return {tid for tid, r in self._records.items()
                if r["status"] == STATUS_FAILED}

    def counts(self) -> dict[str, int]:
        """``{"total", "done", "failed", "pending"}`` against the spec.

        Campaigns run with an explicit task-list override (see
        ``CampaignRunner(tasks=...)``) may record more tasks than the
        spec's grid expands to; the total grows to cover them so counts
        stay consistent.
        """
        total = max(self.spec.num_tasks, len(self._records))
        done = len(self.completed_ids())
        failed = len(self.failed_ids())
        return {"total": total, "done": done, "failed": failed,
                "pending": total - done - failed}

    def total_seconds(self) -> float:
        """Summed task wall time recorded so far."""
        return sum(r.get("seconds", 0.0) for r in self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        where = "memory" if self.path is None else str(self.path)
        return (f"ResultStore({where!r}, campaign={self.spec.name!r}, "
                f"records={len(self._records)})")


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never see a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
