"""Persistent campaign result store: append-only JSONL + in-memory index.

Layout of a store directory::

    <store>/
      spec.json       # the CampaignSpec (written once, atomically)
      results.jsonl   # one record per completed/failed task, append-only
      leases.jsonl    # present when a campaign service drives the store
                      # (see repro.campaigns.service)

Records are flat JSON objects ``{"task_id", "status", "seconds", "task",
"result", "error"}`` (runs routed through a retry policy also carry
``"attempt"`` and ``"backoff_seconds"``).  Appends go through one
persistent file handle guarded by an advisory ``fcntl`` lock -- the first
append locks the log for the life of the store object, so a second writer
(a stray ``repro sweep`` against a store a service owns, say) fails fast
with :class:`StoreLockedError` instead of interleaving records silently.
Every append flushes + fsyncs before returning, so a crash loses at most
the record being written; :meth:`ResultStore.open` rebuilds the index by
scanning the log, silently dropping a torn *trailing* line (the normal
crash artifact) but warning with a line number on any undecodable line
mid-log, since that indicates real damage.  Re-recording a task id appends
a new line and the *latest* record wins -- the log is an audit trail, the
index is the truth.

``ResultStore.ephemeral`` keeps the same interface fully in memory for
one-off campaigns (the legacy ``sweep_relative_improvement`` wrapper).
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from pathlib import Path

try:  # advisory locking is POSIX-only; Windows degrades to no locking
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .spec import CampaignSpec, lenient_methods

_SPEC_FILE = "spec.json"
_RESULTS_FILE = "results.jsonl"

#: Record statuses.  A task absent from the index is *pending*.
STATUS_DONE = "done"
STATUS_FAILED = "failed"


class StoreLockedError(RuntimeError):
    """Another process (or store object) holds this store's write lock."""


class ResultStore:
    """Index over a campaign's append-only result log.

    Use the constructors: :meth:`create` for a fresh directory,
    :meth:`open` to reopen an existing one (resume, status, reporting),
    and :meth:`ephemeral` for an in-memory store.  Read paths never
    lock; the first :meth:`append` acquires the store's exclusive
    advisory write lock and keeps it until :meth:`close`.
    """

    def __init__(self, path: Path | None, spec: CampaignSpec):
        self.path = Path(path) if path is not None else None
        self.spec = spec
        self._records: dict[str, dict] = {}
        self._attempts: dict[str, int] = {}
        self._fh = None
        self._append_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, spec: CampaignSpec) -> "ResultStore":
        """Initialize a new store directory (must not already hold one)."""
        path = Path(path)
        if path.exists() and not path.is_dir():
            raise NotADirectoryError(f"store path {path} is not a directory")
        if (path / _RESULTS_FILE).exists():
            raise FileExistsError(
                f"{path} already holds a campaign store; "
                f"open() it to resume or pick a fresh directory")
        path.mkdir(parents=True, exist_ok=True)
        _atomic_write(path / _SPEC_FILE,
                      json.dumps(spec.to_dict(), indent=2) + "\n")
        (path / _RESULTS_FILE).touch()
        return cls(path, spec)

    @classmethod
    def open(cls, path: str | Path) -> "ResultStore":
        """Reopen an existing store, rebuilding the index from the log."""
        path = Path(path)
        spec_path = path / _SPEC_FILE
        if not spec_path.exists():
            raise FileNotFoundError(f"no campaign store at {path} "
                                    f"(missing {_SPEC_FILE})")
        # read path: the producing process may have registered methods
        # this one has not; status/report must still work
        with lenient_methods():
            store = cls(path, CampaignSpec.load(spec_path))
        results = path / _RESULTS_FILE
        if results.exists():
            lines = results.read_text().splitlines()
            for lineno, line in enumerate(lines, start=1):
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if lineno == len(lines):
                        continue  # torn trailing line from a crash
                    # an undecodable line *followed by valid ones* is not
                    # a crash artifact -- surface it instead of silently
                    # shrinking the campaign
                    warnings.warn(
                        f"corrupt record at {results}:{lineno} "
                        f"(mid-log, not a torn tail) -- skipping it; "
                        f"the store may have been damaged or edited",
                        RuntimeWarning, stacklevel=2)
                    continue
                tid = record["task_id"]
                store._records[tid] = record
                store._attempts[tid] = store._attempts.get(tid, 0) + 1
        return store

    @classmethod
    def ephemeral(cls, spec: CampaignSpec) -> "ResultStore":
        """In-memory store (no files) for one-off campaigns."""
        return cls(None, spec)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _writer(self):
        """The persistent, advisory-locked append handle (lazy)."""
        if self._fh is None:
            fh = open(self.path / _RESULTS_FILE, "a")
            if fcntl is not None:
                try:
                    fcntl.flock(fh.fileno(),
                                fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    fh.close()
                    raise StoreLockedError(
                        f"{self.path} is already being written by another "
                        f"runner/service; two concurrent writers would "
                        f"interleave records") from None
            self._fh = fh
        return self._fh

    def append(self, record: dict) -> None:
        """Checkpoint one task record (flush + fsync when file-backed).

        The first file-backed append takes the store's exclusive write
        lock (:class:`StoreLockedError` if another writer holds it).
        """
        if "task_id" not in record or "status" not in record:
            raise ValueError("record needs task_id and status")
        with self._append_lock:
            if self.path is not None:
                fh = self._writer()
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            tid = record["task_id"]
            self._records[tid] = record
            self._attempts[tid] = self._attempts.get(tid, 0) + 1

    def close(self) -> None:
        """Release the write handle and its advisory lock (idempotent)."""
        with self._append_lock:
            if self._fh is not None:
                self._fh.close()  # closing drops the flock
                self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def record(self, task_id: str) -> dict | None:
        return self._records.get(task_id)

    def records(self) -> list[dict]:
        """Latest record per task, in first-recorded order."""
        return list(self._records.values())

    def attempts(self, task_id: str) -> int:
        """Executions recorded for a task so far (log lines, not index)."""
        return self._attempts.get(task_id, 0)

    def completed_ids(self) -> set[str]:
        return {tid for tid, r in self._records.items()
                if r["status"] == STATUS_DONE}

    def failed_ids(self) -> set[str]:
        return {tid for tid, r in self._records.items()
                if r["status"] == STATUS_FAILED}

    def counts(self) -> dict[str, int]:
        """``{"total", "done", "failed", "pending"}`` against the spec.

        Campaigns run with an explicit task-list override (see
        ``CampaignRunner(tasks=...)``) may record more tasks than the
        spec's grid expands to; the total grows to cover them so counts
        stay consistent.
        """
        total = max(self.spec.num_tasks, len(self._records))
        done = len(self.completed_ids())
        failed = len(self.failed_ids())
        return {"total": total, "done": done, "failed": failed,
                "pending": total - done - failed}

    def total_seconds(self) -> float:
        """Summed task wall time recorded so far."""
        return sum(r.get("seconds", 0.0) for r in self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        where = "memory" if self.path is None else str(self.path)
        return (f"ResultStore({where!r}, campaign={self.spec.name!r}, "
                f"records={len(self._records)})")


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never see a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
