"""Markdown campaign reports: the paper-figure tables from a store.

``render_report`` produces a self-contained markdown document with the
campaign header (task counts, wall time), per-benchmark three-tier energy
tables (Fig. 5 content), Eq. 14 relative-improvement tables per baseline
(Fig. 5's eta bars / the Fig. 7-8 sweep points, one row per setting), and
a failure appendix.  ``repro report <store>`` prints it.
"""

from __future__ import annotations

from ..methods import method_names
from ..mitigation import mitigation_names
from ..search import strategy_names
from .aggregate import TIERS, CampaignAggregate
from .store import ResultStore


def render_report(store: ResultStore,
                  baselines: tuple[str, ...] | None = None,
                  tier: str = "device_model",
                  aggregate: CampaignAggregate | None = None,
                  improver: str = "clapton",
                  strategy: str | None = None,
                  mitigation: str | None = None) -> str:
    """Render the whole campaign as a markdown document.

    ``baselines`` defaults to every campaign method except ``improver``
    (one Eq. 14 table per baseline).  Pass a prebuilt ``aggregate`` to
    reuse one aggregation across the report and other outputs (the CLI's
    ``--csv``).  ``strategy``/``mitigation`` restrict the tables to one
    value of that axis; an unknown value raises ``KeyError`` listing
    what the campaign has.
    """
    if aggregate is None:
        aggregate = CampaignAggregate.from_store(store)
    if strategy is not None or mitigation is not None:
        aggregate = aggregate.filtered(strategy=strategy,
                                       mitigation=mitigation)
    counts = store.counts()
    lines = [
        f"# Campaign report: {store.spec.name}",
        "",
        f"- tasks: {counts['done']}/{counts['total']} done, "
        f"{counts['failed']} failed, {counts['pending']} pending",
        f"- recorded task wall time: {store.total_seconds():.1f}s",
        f"- grid: {len(store.spec.expanded_benchmarks(lenient=True))} "
        f"benchmark(s) x "
        f"{len(store.spec.qubit_sizes)} size(s) x "
        f"{len(store.spec.settings())} setting(s) x "
        f"{len(store.spec.methods)} method(s) x "
        f"{len(store.spec.strategies)} strateg(y/ies) x "
        f"{len(store.spec.mitigations)} mitigation(s) x "
        f"{len(store.spec.seeds)} seed(s)",
    ]
    if not aggregate.rows:
        # still surface per-task errors: the all-failed campaign is
        # exactly when the report must explain what went wrong
        lines += ["", "No completed tasks yet."]
        lines += _failure_section(store)
        return "\n".join(lines) + "\n"

    lines += _energy_section(aggregate)
    if baselines is None:
        baselines = tuple(m for m in store.spec.methods if m != improver)
    for baseline in baselines:
        if (baseline != improver and baseline in store.spec.methods
                and improver in store.spec.methods):
            lines += _eta_section(aggregate, baseline, tier, improver)
    lines += _failure_section(store)
    return "\n".join(lines) + "\n"


def _markdown_table(header: list[str], rows: list[list[str]]) -> list[str]:
    def cell(value: str) -> str:
        # composed mitigation specs carry a literal '|' stage separator
        return str(value).replace("|", "\\|")

    out = ["| " + " | ".join(header) + " |",
           "| " + " | ".join("---" for _ in header) + " |"]
    out += ["| " + " | ".join(cell(c) for c in row) + " |" for row in rows]
    return out


def _fmt(value, precision: int = 4) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.{precision}f}"


def _energy_section(aggregate: CampaignAggregate) -> list[str]:
    """Three-tier energies per benchmark/setting/method (seed means)."""
    lines = ["", "## Three-tier energies (mean over seeds)", ""]
    summary = aggregate.method_summary()
    benchmarks: dict[tuple, list[dict]] = {}
    for entry in summary:
        benchmarks.setdefault(
            (entry["benchmark"], entry["num_qubits"]), []).append(entry)
    for (benchmark, num_qubits), entries in benchmarks.items():
        e0 = entries[0]["e0"]
        lines += [f"### {benchmark} ({num_qubits}q, E0 = {_fmt(e0)})", ""]
        rows = []
        # registry order: built-ins first, then registration order
        order = {m: i for i, m in enumerate(method_names())}
        s_order = {s: i for i, s in enumerate(strategy_names())}
        m_order = {m: i for i, m in enumerate(mitigation_names())}
        entries.sort(key=lambda e: (e["setting"],
                                    order.get(e["method"], len(order)),
                                    e["method"],
                                    s_order.get(e["strategy"],
                                                len(s_order)),
                                    e["strategy"],
                                    _mitigation_rank(e["mitigation"],
                                                     m_order),
                                    e["mitigation"]))
        for entry in entries:
            rows.append([entry["setting"], entry["method"],
                         entry["strategy"], entry["mitigation"],
                         str(entry["num_seeds"])]
                        + [_fmt(entry[t]) for t in TIERS])
        lines += _markdown_table(
            ["setting", "method", "strategy", "mitigation", "seeds",
             *TIERS], rows)
        lines.append("")
    return lines


def _mitigation_rank(spec: str, order: dict[str, int]) -> int:
    """Registry rank of a mitigation spec by its leading base name
    (``"zne:folds=5|readout"`` sorts with ``zne``)."""
    base = str(spec).split("|", 1)[0].split(":", 1)[0]
    return order.get(base, len(order))


def _eta_section(aggregate: CampaignAggregate, baseline: str,
                 tier: str, improver: str = "clapton") -> list[str]:
    """Eq. 14 relative improvement, geometric mean over seeds."""
    summary = aggregate.eta_summary(baseline, tier, improver)
    if not summary:
        return []
    lines = ["",
             f"## Relative improvement eta({improver} vs {baseline}), "
             f"{tier} tier",
             ""]
    rows = [[e["benchmark"], str(e["num_qubits"]), e["setting"],
             e["strategy"], e["mitigation"], str(e["num_seeds"]),
             _fmt(e["eta_geomean"], 2)]
            for e in summary]
    lines += _markdown_table(
        ["benchmark", "qubits", "setting", "strategy", "mitigation",
         "seeds", "eta (geomean)"], rows)
    lines.append("")
    return lines


def _failure_section(store: ResultStore) -> list[str]:
    failed = sorted(store.failed_ids())
    if not failed:
        return []
    lines = ["", "## Failed tasks", ""]
    for task_id in failed:
        record = store.record(task_id)
        error = (record.get("error") or "").strip().splitlines()
        last = error[-1] if error else "unknown error"
        label = record.get("task", {}).get("benchmark", "?")
        lines.append(f"- `{task_id}` ({label}): {last}")
    lines.append("")
    return lines
