"""Campaign execution: shard pending tasks over an Executor, checkpoint,
resume.

:class:`CampaignRunner` joins the three pieces: it expands the spec into
tasks, subtracts the ids the store has already completed, and fans the
remainder out over any :class:`~repro.execution.Executor` (serial, thread,
or process).  Every finished task is appended to the store before the next
wave starts, so a crash loses at most one in-flight wave and a rerun with
``resume=True`` (the default) picks up exactly where the log ends.

Determinism: each task's engine runs *serially inside* the worker (the
task seed is baked into its engine payload), so campaign-level sharding
never perturbs numbers -- a ``--jobs 4`` run is record-for-record
identical to a serial one, and a resumed run to an uninterrupted one.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable

from ..execution.executor import Executor, SerialExecutor
from ..obs import REGISTRY, get_tracer
from .retry import NO_RETRY, RetryPolicy
from .spec import CampaignSpec, TaskSpec
from .store import STATUS_DONE, STATUS_FAILED, ResultStore

_TASK_SECONDS = REGISTRY.histogram(
    "repro_task_seconds", "Wall time of one campaign task execution")

#: Per-worker memo of exact ground energies keyed by registry benchmark:
#: a grid sweeps many settings of one Hamiltonian, and the dense
#: eigensolve is identical for all of them.
_E0_CACHE: dict[tuple[str, int], float] = {}


def _with_shared_e0(task: TaskSpec) -> TaskSpec:
    """Stamp the cached exact ground energy into a registry-backed task.

    Only used for *execution* -- the original payload (and its task id)
    never changes.  ``ground_state_energy`` is exactly what
    ``Experiment.run`` would call, so numbers are unaffected.
    """
    if task.e0 is not None or task.hamiltonian is not None:
        return task
    key = (task.benchmark, task.num_qubits)
    if key not in _E0_CACHE:
        from ..hamiltonians.exact import ground_state_energy
        from ..hamiltonians.registry import get_benchmark

        hamiltonian = get_benchmark(*key).hamiltonian()
        _E0_CACHE[key] = ground_state_energy(hamiltonian)
    return replace(task, e0=_E0_CACHE[key])


def execute_task(task_payload: dict) -> dict:
    """Worker entry point: run one task dict into one store record.

    Top-level (picklable) so process pools can import it.  Failures are
    captured into a ``"failed"`` record instead of raised -- one bad cell
    must not sink a grid.
    """
    task = TaskSpec.from_dict(task_payload)
    start = time.perf_counter()
    with get_tracer().span("task.execute", task_id=task.task_id,
                           benchmark=task.benchmark, method=task.method,
                           strategy=task.strategy, seed=task.seed):
        try:
            result = _with_shared_e0(task).run()
        except Exception:
            _TASK_SECONDS.observe(time.perf_counter() - start)
            return {
                "task_id": task.task_id,
                "status": STATUS_FAILED,
                "seconds": time.perf_counter() - start,
                "task": task_payload,
                "result": None,
                "error": traceback.format_exc(limit=8),
            }
    _TASK_SECONDS.observe(time.perf_counter() - start)
    return {
        "task_id": task.task_id,
        "status": STATUS_DONE,
        "seconds": time.perf_counter() - start,
        "task": task_payload,
        "result": result,
        "error": None,
    }


@dataclass
class CampaignProgress:
    """Outcome of one :meth:`CampaignRunner.run` call.

    ``ran`` counts task *executions* (a cell retried under a
    :class:`~repro.campaigns.retry.RetryPolicy` counts once per attempt);
    ``failed``/``failed_ids`` reflect only cells whose *final* attempt
    failed, and ``retried`` counts the extra attempts.
    """

    total: int
    skipped: int
    ran: int = 0
    failed: int = 0
    retried: int = 0
    seconds: float = 0.0
    failed_ids: list[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.skipped + self.ran - self.failed - self.retried


class CampaignRunner:
    """Drive a campaign to completion over an execution backend.

    Args:
        spec: The campaign grid.
        store: Result store the run checkpoints into; its spec should be
            the same campaign (``create`` a fresh one or ``open`` an
            interrupted one to resume).
        executor: Any PR-1 execution backend; serial when omitted.
            Process pools require nothing beyond the spec being JSON --
            tasks ship as plain dicts.

    Example::

        spec = CampaignSpec(name="fig4", benchmarks=["ising_J1.00"],
                            qubit_sizes=[4], noise_scales=[1.0, 2.0],
                            methods=["cafqa", "clapton"], seeds=[0, 1])
        store = ResultStore.create("fig4.campaign", spec)
        CampaignRunner(spec, store, executor=ProcessExecutor(4)).run()
    """

    def __init__(self, spec: CampaignSpec, store: ResultStore,
                 executor: Executor | None = None,
                 tasks: list[TaskSpec] | None = None):
        self.spec = spec
        self.store = store
        self.executor = executor
        self._tasks = tasks

    def tasks(self) -> list[TaskSpec]:
        """The work list: the spec's grid, or the explicit override
        (one-off campaigns over hand-built tasks)."""
        return self._tasks if self._tasks is not None else self.spec.tasks()

    def pending_tasks(self, retry_failed: bool = True) -> list[TaskSpec]:
        """Tasks the store has not completed, in grid order."""
        skip = self.store.completed_ids()
        if not retry_failed:
            skip = skip | self.store.failed_ids()
        return [t for t in self.tasks() if t.task_id not in skip]

    def run(self, *, resume: bool = True, retry_failed: bool = True,
            max_tasks: int | None = None,
            on_record: Callable[[dict], None] | None = None,
            retry: RetryPolicy | None = None) -> CampaignProgress:
        """Execute (the rest of) the campaign.

        Args:
            resume: Skip task ids the store already completed.  With
                ``False`` every grid cell reruns (records are re-appended;
                latest wins).
            retry_failed: Also rerun cells whose last record failed.
            max_tasks: Stop after this many task executions (smoke tests,
                simulated interruptions).
            on_record: Callback fired after each record is checkpointed
                (CLI progress lines).
            retry: In-run retry policy for failed cells (CLI ``sweep
                --max-attempts``).  The default keeps the historical
                behavior: one execution per cell per invocation.  Every
                record is stamped with its 1-based ``attempt`` (counting
                the store's prior records for that id, so cross-invocation
                retries keep counting) and the deterministic
                ``backoff_seconds`` the policy imposed before it.
        """
        retry = retry or NO_RETRY
        tasks = self.tasks()
        if resume:
            skip = self.store.completed_ids()
            if not retry_failed:
                skip = skip | self.store.failed_ids()
            pending = [t for t in tasks if t.task_id not in skip]
        else:
            pending = tasks
        if max_tasks is not None:
            pending = pending[:max_tasks]
        progress = CampaignProgress(total=len(tasks),
                                    skipped=len(tasks) - len(pending))
        executor = self.executor or SerialExecutor()
        tracer = get_tracer()
        start = time.perf_counter()
        queue, round_number = pending, 1
        while queue:
            delay = retry.delay(round_number)
            if delay > 0:
                time.sleep(delay)
                tracer.event("campaign.backoff_idle", delay,
                             round=round_number)
            failures: list[TaskSpec] = []
            for wave_index, wave in enumerate(
                    _waves(queue, _wave_size(executor))):
                with tracer.span("campaign.wave", wave=wave_index,
                                 size=len(wave), round=round_number):
                    records = executor.map(execute_task,
                                           [t.to_dict() for t in wave])
                for task, record in zip(wave, records):
                    record["attempt"] = \
                        self.store.attempts(record["task_id"]) + 1
                    record["backoff_seconds"] = delay
                    self.store.append(record)
                    progress.ran += 1
                    if record["status"] == STATUS_FAILED:
                        failures.append(task)
                    if on_record is not None:
                        on_record(record)
            if not failures or retry.exhausted(round_number):
                progress.failed = len(failures)
                progress.failed_ids = [t.task_id for t in failures]
                break
            progress.retried += len(failures)
            queue, round_number = failures, round_number + 1
        progress.seconds = time.perf_counter() - start
        return progress


#: Checkpoint wave for parallel executors that do not expose a worker
#: count (the Executor protocol only requires map/close): big enough to
#: feed a typical pool, small enough that a crash loses little.
_DEFAULT_WAVE = 8


def _wave_size(executor: Executor) -> int:
    """Tasks dispatched per checkpoint wave.

    Serial backends checkpoint after every task; pools get one task per
    worker per wave (falling back to :data:`_DEFAULT_WAVE` for pool
    types without a ``max_workers`` attribute), so a crash loses at
    most one in-flight wave.
    """
    if executor.in_process_sequential:
        return 1
    return max(1, getattr(executor, "max_workers", None) or _DEFAULT_WAVE)


def _waves(items: list, size: int):
    for i in range(0, len(items), size):
        yield items[i:i + size]
