"""Turn a campaign store into the paper's figure data.

A completed (or partially completed) :class:`~repro.campaigns.store.
ResultStore` holds one ExperimentResult payload per task.  This module
flattens those into per-task *rows* (benchmark / setting / seed / method /
three-tier energies), joins methods within a grid cell to compute the
Eq. 14 relative improvement of Clapton over each baseline, and summarizes
over seeds -- the content of a Fig. 5 column or a Fig. 7 sweep point --
as plain dicts and CSV.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from ..metrics import geometric_mean, relative_improvement
from ..naming import unknown_name_message
from .spec import setting_label
from .store import STATUS_DONE, ResultStore

#: Flat row columns, also the CSV header.
ROW_FIELDS = (
    "benchmark", "num_qubits", "setting", "seed", "method", "strategy",
    "mitigation", "e0", "e_mixed", "loss", "noiseless", "clifford_model",
    "device_model", "device_model_raw", "hardware", "vqe_final",
    "engine_rounds", "engine_evaluations", "seconds", "task_id",
)

#: Energy tiers carried through aggregation.
TIERS = ("noiseless", "clifford_model", "device_model", "hardware")


@dataclass(frozen=True)
class CellKey:
    """One grid cell: everything but the method axis.

    The search strategy and mitigation are part of the cell, so Eq. 14
    joins always compare methods that searched the same way and were
    mitigated the same way.
    """

    benchmark: str
    num_qubits: int
    setting: str
    seed: int
    strategy: str = "multi_ga"
    mitigation: str = "none"


@dataclass
class CampaignAggregate:
    """Row-level and joined views over a store's completed tasks.

    ``rows`` is treated as fixed after construction: the cell join is
    computed once and cached across the per-baseline eta views.
    """

    rows: list[dict] = field(default_factory=list)
    _cells: dict | None = field(default=None, init=False, repr=False,
                                compare=False)

    @classmethod
    def from_store(cls, store: ResultStore) -> "CampaignAggregate":
        """Flatten completed records, in the spec's grid order (records
        outside the grid -- e.g. hand-built tasks -- follow, in log
        order)."""
        by_id = {r["task_id"]: r for r in store.records()
                 if r["status"] == STATUS_DONE and r.get("result")}
        ordered = []
        try:
            grid = store.spec.tasks()
        except KeyError:
            # spec references a suite this process never registered:
            # fall back to pure log order (read paths must still work)
            grid = []
        for task in grid:
            record = by_id.pop(task.task_id, None)
            if record is not None:
                ordered.append(record)
        ordered.extend(by_id.values())
        return cls(rows=[_record_row(r) for r in ordered])

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def filtered(self, **criteria) -> "CampaignAggregate":
        """Rows restricted to exact column values, e.g.
        ``filtered(strategy="multi_ga", mitigation="zne:folds=3")``.

        ``None`` values are ignored (so CLI flags pass straight
        through).  An unknown column, or a value no row carries, raises
        ``KeyError`` naming what this campaign actually has -- with a
        did-you-mean suggestion -- instead of silently returning an
        empty report.
        """
        rows = self.rows
        for column, wanted in criteria.items():
            if wanted is None:
                continue
            if column not in ROW_FIELDS:
                raise KeyError(unknown_name_message(
                    "filter column", column, list(ROW_FIELDS)))
            available = sorted({str(r.get(column)) for r in rows})
            if str(wanted) not in available:
                raise KeyError(unknown_name_message(
                    f"{column} value", wanted, available))
            rows = [r for r in rows if str(r.get(column)) == str(wanted)]
        return CampaignAggregate(rows=list(rows))

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def cells(self) -> dict[CellKey, dict[str, dict]]:
        """``cell -> method -> row`` join, in row order (cached)."""
        if self._cells is None:
            out: dict[CellKey, dict[str, dict]] = {}
            for row in self.rows:
                key = CellKey(row["benchmark"], row["num_qubits"],
                              row["setting"], row["seed"],
                              row.get("strategy", "multi_ga"),
                              row.get("mitigation", "none"))
                out.setdefault(key, {})[row["method"]] = row
            self._cells = out
        return self._cells

    def eta_rows(self, baseline: str = "ncafqa",
                 tier: str = "device_model",
                 improver: str = "clapton") -> list[dict]:
        """Per-cell Eq. 14 improvement of ``improver`` over ``baseline``.

        Cells missing either method (or the tier's energy) are skipped.
        """
        out = []
        for key, methods in self.cells().items():
            base = methods.get(baseline)
            imp = methods.get(improver)
            if base is None or imp is None:
                continue
            if base.get(tier) is None or imp.get(tier) is None:
                continue
            out.append({
                "benchmark": key.benchmark,
                "num_qubits": key.num_qubits,
                "setting": key.setting,
                "seed": key.seed,
                "strategy": key.strategy,
                "mitigation": key.mitigation,
                "baseline": baseline,
                "improver": improver,
                "tier": tier,
                "eta": relative_improvement(base["e0"], base[tier],
                                            imp[tier]),
            })
        return out

    # ------------------------------------------------------------------
    # Seed summaries
    # ------------------------------------------------------------------
    def method_summary(self) -> list[dict]:
        """Mean three-tier energies per (benchmark, qubits, setting,
        method, strategy, mitigation), aggregated over seeds."""
        groups: dict[tuple, list[dict]] = {}
        for row in self.rows:
            key = (row["benchmark"], row["num_qubits"], row["setting"],
                   row["method"], row.get("strategy", "multi_ga"),
                   row.get("mitigation", "none"))
            groups.setdefault(key, []).append(row)
        out = []
        for (benchmark, num_qubits, setting, method, strategy,
             mitigation), rows in groups.items():
            entry = {"benchmark": benchmark, "num_qubits": num_qubits,
                     "setting": setting, "method": method,
                     "strategy": strategy, "mitigation": mitigation,
                     "num_seeds": len(rows), "e0": rows[0]["e0"]}
            for tier in TIERS:
                values = [r[tier] for r in rows if r.get(tier) is not None]
                entry[tier] = (sum(values) / len(values) if values
                               else None)
            out.append(entry)
        return out

    def eta_summary(self, baseline: str = "ncafqa",
                    tier: str = "device_model",
                    improver: str = "clapton") -> list[dict]:
        """Geometric-mean eta over seeds per (benchmark, qubits,
        setting) -- the paper's suite aggregate."""
        groups: dict[tuple, list[float]] = {}
        for row in self.eta_rows(baseline, tier, improver):
            key = (row["benchmark"], row["num_qubits"], row["setting"],
                   row["strategy"], row["mitigation"])
            groups.setdefault(key, []).append(row["eta"])
        out = []
        for (benchmark, num_qubits, setting, strategy,
             mitigation), etas in groups.items():
            # a seed where Clapton reaches E0 exactly has eta = inf (and
            # eta = 0 when only the baseline does); either saturates the
            # cell's geometric mean -- never drop such seeds
            if any(e == float("inf") for e in etas):
                geomean = float("inf")
            elif any(e <= 0 for e in etas):
                geomean = 0.0
            else:
                geomean = geometric_mean(etas)
            out.append({
                "benchmark": benchmark, "num_qubits": num_qubits,
                "setting": setting, "strategy": strategy,
                "mitigation": mitigation,
                "baseline": baseline,
                "improver": improver, "tier": tier,
                "num_seeds": len(etas),
                "eta_geomean": geomean,
            })
        return out

    # ------------------------------------------------------------------
    # CSV
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Row-level CSV (one line per completed task)."""
        import csv

        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=ROW_FIELDS)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({k: row.get(k) for k in ROW_FIELDS})
        return buf.getvalue()

    def write_csv(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_csv())


def _record_row(record: dict) -> dict:
    """Flatten one store record into an aggregate row."""
    task = record["task"]
    result = record["result"]
    method = task["method"]
    run = result["runs"][method]
    evaluation = run.get("evaluation") or {}
    vqe = run.get("vqe") or {}
    return {
        "task_id": record["task_id"],
        "benchmark": task["benchmark"],
        "num_qubits": task["num_qubits"],
        "setting": setting_label(task["setting"]),
        "seed": task["seed"],
        "method": method,
        # the *grid-axis* strategy, so cells join methods that share a
        # cell even when a method's own search reports another label
        # ("none"/"best_of_k"); pre-axis records carry no strategy key
        "strategy": task.get("strategy", "multi_ga"),
        # the grid-axis mitigation spec as declared (e.g. "zne:folds=3"),
        # so rows group and join by what the campaign asked for
        "mitigation": task.get("mitigation", "none"),
        "e0": result["e0"],
        "e_mixed": result["e_mixed"],
        "loss": run["loss"],
        "noiseless": evaluation.get("noiseless"),
        "clifford_model": evaluation.get("clifford_model"),
        "device_model": evaluation.get("device_model"),
        "device_model_raw": evaluation.get("device_model_raw"),
        "hardware": evaluation.get("hardware"),
        "vqe_final": vqe.get("final_energy"),
        "engine_rounds": run["engine_rounds"],
        "engine_evaluations": run["engine_evaluations"],
        "seconds": run["seconds"],
    }
