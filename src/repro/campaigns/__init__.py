"""Sharded, resumable sweep campaigns over the Experiment façade.

The pipeline: declare a grid (:class:`CampaignSpec`), expand it into
content-addressed tasks, shard them over any execution backend
(:class:`CampaignRunner`), checkpoint every result into an append-only
:class:`ResultStore`, and aggregate the store into the paper's figure
tables (:class:`CampaignAggregate`, :func:`render_report`).

    spec = CampaignSpec(name="fig4-small", benchmarks=["ising_J1.00"],
                        qubit_sizes=[4], noise_scales=[0.5, 1.0, 2.0],
                        methods=["ncafqa", "clapton"], seeds=[0, 1],
                        engine_preset="smoke")
    store = ResultStore.create("fig4.campaign", spec)
    CampaignRunner(spec, store, executor=ProcessExecutor(4)).run()
    print(render_report(ResultStore.open("fig4.campaign")))

CLI: ``repro sweep spec.json --jobs 4 [--resume] [--max-attempts N]``,
``repro status``, ``repro report`` -- and, for long-lived multi-worker
campaigns, the service triplet ``repro serve`` / ``repro worker`` /
``repro submit`` (see :mod:`repro.campaigns.service`).
"""

from .aggregate import CampaignAggregate, CellKey
from .retry import NO_RETRY, RetryPolicy
from .runner import CampaignProgress, CampaignRunner, execute_task
from .report import render_report
from .spec import (
    DEFAULT_BASE_NOISE,
    CampaignSpec,
    TaskSpec,
    engine_from_dict,
    engine_to_dict,
    setting_label,
)
from .store import STATUS_DONE, STATUS_FAILED, ResultStore, StoreLockedError

__all__ = [
    "CampaignAggregate", "CampaignProgress", "CampaignRunner",
    "CampaignSpec", "CellKey", "DEFAULT_BASE_NOISE", "NO_RETRY",
    "ResultStore", "RetryPolicy", "STATUS_DONE", "STATUS_FAILED",
    "StoreLockedError", "TaskSpec", "engine_from_dict", "engine_to_dict",
    "execute_task", "render_report", "setting_label",
]
