"""Measurement-error mitigation by tensored confusion-matrix inversion.

The standard post-processing partner for Clapton (Sec. 7 cites
measurement-error mitigation among the orthogonal techniques): estimate the
per-qubit assignment matrices ``A_k``, then apply ``A_k^{-1}`` to measured
count distributions.  The tensored (per-qubit) variant inverts ``n`` 2x2
matrices instead of one 2^n x 2^n matrix, which is what scales.
"""

from __future__ import annotations

import numpy as np

from ..noise.model import NoiseModel


def confusion_matrices(noise_model: NoiseModel) -> list[np.ndarray]:
    """Per-qubit assignment matrices ``A[measured, true]``."""
    out = []
    for q in range(noise_model.num_qubits):
        p01 = float(noise_model.readout_p01[q])
        p10 = float(noise_model.readout_p10[q])
        out.append(np.array([[1 - p01, p10], [p01, 1 - p10]]))
    return out


def counts_to_probabilities(counts: dict[str, int], num_qubits: int
                            ) -> np.ndarray:
    """Dense outcome distribution from a counts dict (qubit 0 leftmost)."""
    probs = np.zeros(2 ** num_qubits)
    total = 0
    for bitstring, count in counts.items():
        if len(bitstring) != num_qubits:
            raise ValueError(f"bitstring {bitstring!r} has wrong width")
        probs[int(bitstring, 2)] += count
        total += count
    if total == 0:
        raise ValueError("empty counts")
    return probs / total


def mitigate_probabilities(probs: np.ndarray,
                           matrices: list[np.ndarray],
                           clip: bool = True) -> np.ndarray:
    """Apply per-qubit inverse confusion matrices to a distribution.

    Inversion can produce small negative quasi-probabilities from sampling
    noise; ``clip`` projects back onto the simplex (the common practice).
    """
    num_qubits = len(matrices)
    if probs.shape != (2 ** num_qubits,):
        raise ValueError("distribution width does not match matrices")
    tensor = probs.reshape((2,) * num_qubits)
    for q, matrix in enumerate(matrices):
        inverse = np.linalg.inv(matrix)
        tensor = np.moveaxis(
            np.tensordot(inverse, tensor, axes=([1], [q])), 0, q)
    flat = tensor.reshape(-1)
    if clip:
        flat = np.clip(flat, 0.0, None)
        flat = flat / flat.sum()
    return flat


def mitigate_counts(counts: dict[str, int], noise_model: NoiseModel,
                    clip: bool = True) -> np.ndarray:
    """Counts dict -> readout-mitigated outcome distribution."""
    probs = counts_to_probabilities(counts, noise_model.num_qubits)
    return mitigate_probabilities(probs, confusion_matrices(noise_model),
                                  clip=clip)


def z_expectation_from_probabilities(probs: np.ndarray,
                                     qubits: list[int]) -> float:
    """``<Z_{q1} Z_{q2} ...>`` from a Z-basis outcome distribution."""
    num_qubits = int(np.log2(len(probs)))
    indices = np.arange(len(probs), dtype=np.uint64)
    mask = np.uint64(0)
    for q in qubits:
        mask |= np.uint64(1 << (num_qubits - 1 - q))
    signs = (-1.0) ** np.bitwise_count(indices & mask)
    return float(probs @ signs)
