"""Mitigation strategies: wrap any estimator, stay on the batched hot path.

A :class:`MitigationStrategy` turns a raw :class:`~repro.execution.estimator.
Estimator` into a mitigated one via ``wrap(estimator)``; the wrapped object
implements the same ``estimate`` / ``estimate_many`` / ``energy`` protocol,
so every consumer (tier evaluation, VQE endpoints, user code) treats
mitigated and raw estimates uniformly.  Three rules keep wrapping cheap and
honest:

* **Batch-first.** ZNE evaluates each folded noise scale as exactly *one*
  ``estimate_many`` call on that scale's estimator -- the PR-1/PR-4 batched
  hot path -- never a per-point loop.  A ``k``-point batch at ``m`` scales
  costs ``m`` batched evaluations, not ``k*m`` serial ones.
* **Composable.** Wrappers expose ``with_problem`` just like the concrete
  estimators, so stacks re-fold correctly: ``"zne|readout"`` readout-corrects
  every folded scale, then extrapolates.
* **Observable.** Wrapping runs under a ``mitigation.wrap`` span, mitigated
  batches under ``mitigation.estimate_many`` with the raw per-scale circuit
  evaluations re-emitted as ``loss.*`` child events -- ``repro trace
  summary`` therefore buckets mitigation overhead (folding, extrapolation,
  inversion) separately from raw loss evaluation.

Built-ins (see ``registry.py`` for the ``"zne:folds=3|readout"`` grammar):
``none`` (the default; ``wrap`` is the identity, bit-for-bit), ``zne``
(zero-noise extrapolation, global or per-gate folding, linear / richardson /
exponential fits), and ``readout`` (tensored confusion-matrix inversion of
per-term expectations).
"""

from __future__ import annotations

import time
from dataclasses import replace as _dc_replace

import numpy as np

from ..execution.estimator import BatchResult, EstimateResult
from ..naming import did_you_mean
from ..obs import REGISTRY, get_tracer
from .folding import fold_gates, fold_template_global
from .zne import (
    exponential_extrapolation,
    linear_extrapolation,
    richardson_extrapolation,
)

_WRAPS = REGISTRY.counter(
    "repro_mitigation_wraps_total",
    "Estimators wrapped by a mitigation strategy")
_SCALE_EVALS = REGISTRY.counter(
    "repro_mitigation_scale_evaluations_total",
    "Parameter points evaluated per amplified noise scale")


class MitigationStrategy:
    """One error-mitigation technique, applied by wrapping an estimator.

    Subclasses set ``name`` / ``description`` and implement ``_wrap``;
    parameterized strategies (``zne``) also override ``parameterize`` so the
    registry grammar can configure registered prototypes.
    """

    name: str = ""
    description: str = ""

    def describe(self) -> str:
        """One line for ``repro mitigations`` (parameters included)."""
        return self.description

    def parameterize(self, **params) -> "MitigationStrategy":
        """A configured copy; the default strategy takes no parameters."""
        if params:
            raise ValueError(
                f"mitigation {self.name!r} takes no parameters "
                f"(got {sorted(params)})")
        return self

    def wrap(self, estimator):
        """Mitigated view of ``estimator`` (same Estimator protocol)."""
        with get_tracer().span("mitigation.wrap", mitigation=self.name):
            wrapped = self._wrap(estimator)
        _WRAPS.inc(mitigation=self.name)
        return wrapped

    def _wrap(self, estimator):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NoMitigation(MitigationStrategy):
    """The default: pass the estimator through untouched.

    ``wrap`` returns its argument, so a run with ``mitigation="none"`` is
    bit-identical to one that never mentions mitigation (golden-tested).
    """

    name = "none"
    description = "no mitigation: raw estimates, bit-identical passthrough"

    def _wrap(self, estimator):
        return estimator


class ZNEMitigation(MitigationStrategy):
    """Zero-noise extrapolation over digitally folded circuit variants."""

    name = "zne"
    description = ("zero-noise extrapolation over folded circuits "
                   "(folds=3, fit=linear, folding=gates)")

    _FITS = {"linear": "linear", "richardson": "richardson",
             "exp": "exponential", "exponential": "exponential"}
    _DEFAULTS = {"folds": 3, "fit": "linear", "folding": "gates"}

    def __init__(self, folds: int = 3, fit: str = "linear",
                 folding: str = "gates"):
        folds = int(folds)
        if folds < 2:
            raise ValueError(
                f"zne needs folds >= 2 (one amplified scale beyond the raw "
                f"circuit), got {folds}")
        if str(fit) not in self._FITS:
            raise ValueError(
                f"unknown zne fit {fit!r}{did_you_mean(fit, self._FITS)}; "
                f"choose from {sorted(set(self._FITS))}")
        if folding not in ("gates", "global"):
            raise ValueError(
                f"unknown zne folding {folding!r}; choose 'gates' or "
                f"'global'")
        self.folds = folds
        self.fit = self._FITS[str(fit)]
        self.folding = folding
        #: Odd noise scales 1, 3, ..., 2*folds - 1 (scale 1 = raw circuit).
        self.scales = tuple(range(1, 2 * folds, 2))
        self.name = self._canonical_name()

    def _canonical_name(self) -> str:
        parts = []
        if self.folds != self._DEFAULTS["folds"]:
            parts.append(f"folds={self.folds}")
        if self.fit != self._DEFAULTS["fit"]:
            parts.append(f"fit={self.fit}")
        if self.folding != self._DEFAULTS["folding"]:
            parts.append(f"folding={self.folding}")
        return "zne" + (":" + ",".join(parts) if parts else "")

    def describe(self) -> str:
        return (f"ZNE: scales {self.scales}, {self.fit} fit, "
                f"{self.folding} folding")

    def parameterize(self, **params) -> "ZNEMitigation":
        config = {"folds": self.folds, "fit": self.fit,
                  "folding": self.folding}
        unknown = [key for key in params if key not in config]
        if unknown:
            raise ValueError(
                f"zne does not take parameter(s) {unknown}"
                f"{did_you_mean(unknown[0], config)}; "
                f"known: {sorted(config)}")
        config.update(params)
        return type(self)(**config)

    def _wrap(self, estimator):
        return _ZNEEstimator(estimator, self)


class ReadoutMitigation(MitigationStrategy):
    """Tensored confusion-matrix inversion of per-term expectations."""

    name = "readout"
    description = ("readout mitigation: invert the tensored confusion "
                   "matrices on every term expectation")

    def _wrap(self, estimator):
        return _ReadoutEstimator(estimator)


class ComposedMitigation(MitigationStrategy):
    """A declarative stack, e.g. ``"zne:folds=3|readout"``.

    Stages wrap right-to-left, so the leftmost stage is outermost: ZNE's
    folded-scale evaluations each pass through readout correction before
    the extrapolation sees them.
    """

    def __init__(self, stages):
        stages = tuple(stages)
        if len(stages) < 2:
            raise ValueError("a composed mitigation needs at least two "
                             "stages; use the single strategy directly")
        for stage in stages:
            if not isinstance(stage, MitigationStrategy):
                raise TypeError(f"composed stages must be "
                                f"MitigationStrategy instances, got {stage!r}")
        self.stages = stages
        self.name = "|".join(stage.name for stage in stages)

    def describe(self) -> str:
        return " | ".join(stage.describe() for stage in self.stages)

    def _wrap(self, estimator):
        for stage in reversed(self.stages):
            estimator = stage.wrap(estimator)
        return estimator


# ----------------------------------------------------------------------
# Wrapped estimators
# ----------------------------------------------------------------------
class _WrappedEstimator:
    """Delegation shared by the mitigation wrappers (Estimator protocol)."""

    mode = "wrapped"

    def __init__(self, inner):
        self.inner = inner

    @property
    def problem(self):
        return self.inner.problem

    @property
    def observable(self):
        return self.inner.observable

    @property
    def noise_model(self):
        return self.inner.noise_model

    @property
    def num_evaluations(self) -> int:
        return self.inner.num_evaluations

    def estimate(self, theta: np.ndarray) -> EstimateResult:
        batch = self.estimate_many(np.atleast_2d(np.asarray(theta, float)))
        return batch.results[0]

    def estimate_many(self, thetas: np.ndarray) -> BatchResult:
        raise NotImplementedError

    def energy(self, theta: np.ndarray) -> float:
        return self.estimate(theta).value

    def __call__(self, theta: np.ndarray) -> float:
        return self.energy(theta)

    def with_problem(self, problem):
        raise NotImplementedError


def _clone_with_problem(estimator, problem):
    clone = getattr(estimator, "with_problem", None)
    if clone is None:
        raise TypeError(
            f"{type(estimator).__name__} has no with_problem(); zne needs "
            f"it to evaluate folded circuit variants")
    return clone(problem)


class _ZNEEstimator(_WrappedEstimator):
    """ZNE view of an estimator: fold once, batch per scale, extrapolate.

    Folded templates are built eagerly at wrap time (one clone of the inner
    estimator per scale > 1, each over a folded-ansatz problem).  Every
    ``estimate_many(thetas)`` issues exactly one batched call per scale --
    the whole point batch rides the inner estimator's amortized path -- and
    extrapolates each point's scale curve to zero noise.  Degenerate curves
    (sign changes, growth) fall back from the configured fit to the straight
    line, which is always defined.
    """

    def __init__(self, inner, strategy: ZNEMitigation):
        super().__init__(inner)
        self.strategy = strategy
        self.scales = strategy.scales
        self.mode = f"zne({inner.mode})"
        template = inner.problem.eval_ansatz
        self._num_parameters = template.num_parameters
        self._per_scale = []
        for scale in self.scales:
            if scale == 1:
                self._per_scale.append((1, inner))
                continue
            if strategy.folding == "global":
                folded = fold_template_global(template, scale)
            else:
                folded = fold_gates(template, scale)
            problem = _dc_replace(inner.problem, eval_ansatz=folded)
            self._per_scale.append(
                (scale, _clone_with_problem(inner, problem)))

    @property
    def num_evaluations(self) -> int:
        return sum(est.num_evaluations for _, est in self._per_scale)

    def _thetas_for(self, scale: int, thetas: np.ndarray) -> np.ndarray:
        if scale == 1 or self.strategy.folding != "global":
            return thetas
        # global fold blocks own disjoint parameter windows; odd (inverse)
        # blocks take -theta (see fold_template_global)
        blocks = [thetas if b % 2 == 0 else -thetas for b in range(scale)]
        return np.hstack(blocks)

    def estimate_many(self, thetas: np.ndarray) -> BatchResult:
        start = time.perf_counter()
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        num_points = len(thetas)
        tracer = get_tracer()
        with tracer.span("mitigation.estimate_many",
                         mitigation=self.strategy.name, points=num_points,
                         scales=len(self.scales)):
            batches = []
            for scale, est in self._per_scale:
                # ONE batched call per scale: the whole point set at once
                batch = est.estimate_many(self._thetas_for(scale, thetas))
                _SCALE_EVALS.inc(num_points, scale=str(scale))
                tracer.event("loss.scale_eval", batch.seconds,
                             scale=scale, points=num_points)
                batches.append(batch)
            results = [
                self._extrapolate([batch.results[b] for batch in batches])
                for b in range(num_points)]
        return BatchResult(
            values=np.array([r.value for r in results]),
            results=results,
            seconds=time.perf_counter() - start)

    def _fit(self, values: list[float]) -> float:
        try:
            if self.strategy.fit == "exponential":
                return exponential_extrapolation(
                    self.scales, values,
                    asymptote=self.observable.identity_constant())
            if self.strategy.fit == "richardson":
                return richardson_extrapolation(self.scales, values)
            return linear_extrapolation(self.scales, values)
        except ValueError:
            return linear_extrapolation(self.scales, values)

    def _extrapolate(self, curve: list[EstimateResult]) -> EstimateResult:
        mitigated = self._fit([r.value for r in curve])
        exact = None
        if all(r.exact_value is not None for r in curve):
            exact = self._fit([r.exact_value for r in curve])
        base = curve[0]
        return EstimateResult(
            value=mitigated, exact_value=exact,
            term_expectations=base.term_expectations,
            variance=None, shots=base.shots,
            seconds=sum(r.seconds for r in curve), mode=self.mode)

    def with_problem(self, problem):
        return _ZNEEstimator(
            _clone_with_problem(self.inner, problem), self.strategy)


class _ReadoutEstimator(_WrappedEstimator):
    """Readout-corrected view: divide out the readout attenuation per term.

    The evaluators attenuate each measured term by ``prod (1 - p01 - p10)``
    over its support (the shared convention of
    ``densesim.evaluator.measurement_attenuations``); this wrapper inverts
    exactly that factor -- the tensored confusion-matrix inversion in the
    symmetric-channel expectation picture -- and leaves the basis-prep depol
    factor alone, since it models gate noise, not assignment error.  The
    energy is adjusted in delta form ``value + sum_i c_i (t'_i - t_i)`` so
    identity handling and sampled noise stay consistent with the inner
    estimator.
    """

    def __init__(self, inner):
        super().__init__(inner)
        self.mode = f"readout({inner.mode})"
        observable = inner.observable
        support = observable.table.supports_mask()
        attenuation = np.asarray(
            inner.noise_model.readout_z_attenuation(), float)
        factors = np.prod(
            np.where(support, attenuation[None, :], 1.0), axis=1)
        if np.any(factors <= 0.0):
            raise ValueError(
                "readout mitigation cannot invert the confusion model: a "
                "term's readout attenuation is <= 0 (p01 + p10 >= 1 on its "
                "support)")
        self._factors = factors
        self._coefficients = observable.coefficients

    def estimate_many(self, thetas: np.ndarray) -> BatchResult:
        start = time.perf_counter()
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        tracer = get_tracer()
        with tracer.span("mitigation.estimate_many", mitigation="readout",
                         points=len(thetas)):
            batch = self.inner.estimate_many(thetas)
            tracer.event("loss.scale_eval", batch.seconds, scale=1,
                         points=len(thetas))
            _SCALE_EVALS.inc(len(thetas), scale="1")
            results = [self._correct(result) for result in batch.results]
        return BatchResult(
            values=np.array([r.value for r in results]),
            results=results,
            seconds=time.perf_counter() - start)

    def _correct(self, result: EstimateResult) -> EstimateResult:
        terms = np.asarray(result.term_expectations, float)
        corrected = terms / self._factors
        delta = float(self._coefficients @ (corrected - terms))
        exact = (None if result.exact_value is None
                 else result.exact_value + delta)
        return EstimateResult(
            value=result.value + delta, exact_value=exact,
            term_expectations=corrected, variance=None,
            shots=result.shots, seconds=result.seconds, mode=self.mode)

    def with_problem(self, problem):
        return _ReadoutEstimator(_clone_with_problem(self.inner, problem))
