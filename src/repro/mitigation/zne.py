"""Zero-noise extrapolation (ZNE).

The paper positions Clapton as a *pre-processing* mitigation technique that
"may be combined with other popular error mitigation methods" (Sec. 8).
This module provides the most popular such partner: evaluate the observable
at digitally amplified noise scales and extrapolate to the zero-noise limit.
The ablation bench composes it with Clapton and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..densesim.evaluator import noisy_energy
from ..noise.model import NoiseModel
from ..paulis.pauli_sum import PauliSum
from .folding import fold_gates, fold_global


def _checked_curve(scales: Sequence[float], values: Sequence[float],
                   what: str) -> tuple[np.ndarray, np.ndarray]:
    """Shared input validation: matching shapes, >= 2 finite points."""
    scales = np.asarray(scales, float)
    values = np.asarray(values, float)
    if scales.shape != values.shape or scales.ndim != 1:
        raise ValueError(
            f"{what} needs matching 1-D scales/values, got shapes "
            f"{scales.shape} and {values.shape}")
    if scales.size < 2:
        raise ValueError(
            f"{what} needs at least two scale points, got {scales.size}")
    if not (np.all(np.isfinite(scales)) and np.all(np.isfinite(values))):
        raise ValueError(f"{what} needs finite scales and values")
    return scales, values


def linear_extrapolation(scales: Sequence[float],
                         values: Sequence[float]) -> float:
    """Least-squares straight line, evaluated at scale 0."""
    scales, values = _checked_curve(scales, values, "linear extrapolation")
    coeffs = np.polyfit(scales, values, 1)
    return float(coeffs[-1])


def richardson_extrapolation(scales: Sequence[float],
                             values: Sequence[float]) -> float:
    """Exact polynomial through all points, evaluated at scale 0.

    The classic Richardson limit: with k scale points the degree-(k-1)
    interpolant's constant term.  Sensitive to noise in the values; prefer
    linear for sampled estimates.
    """
    scales, values = _checked_curve(scales, values,
                                    "Richardson extrapolation")
    if len(np.unique(scales)) != len(scales):
        raise ValueError("Richardson extrapolation needs distinct scales")
    total = 0.0
    for i, (si, vi) in enumerate(zip(scales, values)):
        weight = 1.0
        for j, sj in enumerate(scales):
            if j != i:
                weight *= sj / (sj - si)
        total += weight * vi
    return float(total)


def exponential_extrapolation(scales: Sequence[float],
                              values: Sequence[float],
                              asymptote: float = 0.0) -> float:
    """Fit ``v(s) = A * exp(-b s) + asymptote`` and evaluate at 0.

    Matches the physical decay of Pauli-channel attenuation with fold
    factor; ``asymptote`` defaults to the fully mixed limit of a traceless
    observable.

    Raises ``ValueError`` when the model cannot describe the curve: fewer
    than two distinct scales, a value sitting exactly on the asymptote, a
    sign change across scales, or magnitudes that *grow* with scale (a
    decaying exponential cannot produce any of these, and silently fitting
    one returns a garbage extrapolant).  Callers that must stay robust on
    arbitrary noisy curves (``zne_energy``, the ``zne`` mitigation
    strategy) catch the error and fall back to the straight line, which is
    always defined.
    """
    scales, raw = _checked_curve(scales, values, "exponential extrapolation")
    if len(np.unique(scales)) < 2:
        raise ValueError(
            "exponential extrapolation needs at least two distinct scales")
    values = raw - asymptote
    if np.any(values == 0.0):
        raise ValueError(
            "exponential extrapolation undefined: a value sits exactly on "
            "the asymptote")
    if np.any(values > 0) and np.any(values < 0):
        raise ValueError(
            "values change sign across scales; the exponential decay model "
            "does not apply")
    sign = 1.0 if values[0] >= 0 else -1.0
    logs = np.log(np.abs(values))
    slope, intercept = np.polyfit(scales, logs, 1)
    if slope > 0.0:
        raise ValueError(
            "values do not decay with scale (fitted growth rate "
            f"{slope:.3g} > 0); refusing a non-physical extrapolant")
    return float(sign * np.exp(intercept) + asymptote)


_EXTRAPOLATORS: dict[str, Callable] = {
    "linear": linear_extrapolation,
    "richardson": richardson_extrapolation,
    "exponential": exponential_extrapolation,
}


@dataclass
class ZNEResult:
    """Mitigated energy plus the raw scale curve behind it."""

    mitigated: float
    scales: tuple[int, ...]
    values: tuple[float, ...]
    method: str

    @property
    def unmitigated(self) -> float:
        return self.values[0]


def zne_energy(circuit: Circuit, observable: PauliSum,
               noise_model: NoiseModel, scales: Sequence[int] = (1, 3, 5),
               method: str = "linear", folding: str = "gates") -> ZNEResult:
    """Zero-noise-extrapolated device-model energy of a bound circuit.

    Args:
        circuit: Bound circuit preparing the state (e.g. an
            :meth:`InitializationResult.initial_circuit`).
        observable: Hamiltonian on the circuit's register.
        noise_model: Device model used at every scale.
        scales: Odd fold factors; must start at 1.
        method: ``"linear"``, ``"richardson"``, or ``"exponential"``.
        folding: ``"gates"`` (local, 2q-only) or ``"global"``.
    """
    if not scales or scales[0] != 1:
        raise ValueError("scales must start at 1 (the unfolded circuit)")
    if method not in _EXTRAPOLATORS:
        raise ValueError(f"unknown extrapolation method {method!r}")
    fold = fold_gates if folding == "gates" else fold_global
    if folding not in ("gates", "global"):
        raise ValueError(f"unknown folding mode {folding!r}")
    values = []
    for scale in scales:
        folded = fold(circuit, scale)
        values.append(noisy_energy(folded, observable, noise_model))
    if method == "exponential":
        asymptote = observable.identity_constant()
        try:
            mitigated = exponential_extrapolation(scales, values, asymptote)
        except ValueError:
            # degenerate curve (sign change, growth, on-asymptote point):
            # the straight line is always defined
            mitigated = linear_extrapolation(scales, values)
    else:
        mitigated = _EXTRAPOLATORS[method](scales, values)
    return ZNEResult(mitigated=mitigated, scales=tuple(scales),
                     values=tuple(values), method=method)
