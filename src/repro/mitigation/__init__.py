"""Composable error mitigation: ZNE and readout mitigation (Sec. 8 future work)."""

from .folding import fold_gates, fold_global
from .zne import (
    ZNEResult,
    exponential_extrapolation,
    linear_extrapolation,
    richardson_extrapolation,
    zne_energy,
)
from .readout import (
    confusion_matrices,
    counts_to_probabilities,
    mitigate_counts,
    mitigate_probabilities,
    z_expectation_from_probabilities,
)

__all__ = [
    "ZNEResult", "confusion_matrices", "counts_to_probabilities",
    "exponential_extrapolation", "fold_gates", "fold_global",
    "linear_extrapolation", "mitigate_counts", "mitigate_probabilities",
    "richardson_extrapolation", "z_expectation_from_probabilities",
    "zne_energy",
]
