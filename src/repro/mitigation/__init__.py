"""Composable error mitigation: a first-class experiment axis (Sec. 8).

Two layers live here:

* **Primitives** (``folding``, ``zne``, ``readout``): digital gate folding,
  extrapolation fits, confusion-matrix inversion.  Importable directly for
  one-off analysis (``zne_energy`` on a bound circuit).
* **Strategies** (``strategies``, ``registry``): the
  :class:`MitigationStrategy` protocol (``wrap(estimator) -> Estimator``)
  behind the fourth registry.  ``resolve_mitigation`` understands the
  declarative ``"zne:folds=3|readout"`` grammar, and every surface --
  ``Experiment.run(mitigation=)``, campaign ``mitigations`` grids,
  ``repro run --mitigation`` -- resolves through it.
"""

from .folding import fold_gates, fold_global, fold_template_global
from .zne import (
    ZNEResult,
    exponential_extrapolation,
    linear_extrapolation,
    richardson_extrapolation,
    zne_energy,
)
from .readout import (
    confusion_matrices,
    counts_to_probabilities,
    mitigate_counts,
    mitigate_probabilities,
    z_expectation_from_probabilities,
)
from .strategies import (
    ComposedMitigation,
    MitigationStrategy,
    NoMitigation,
    ReadoutMitigation,
    ZNEMitigation,
)
from .registry import (
    DEFAULT_MITIGATION,
    available_mitigations,
    get_mitigation,
    mitigation_names,
    parse_mitigation,
    register_mitigation,
    resolve_mitigation,
    split_mitigation_specs,
    unregister_mitigation,
)

__all__ = [
    "ComposedMitigation", "DEFAULT_MITIGATION", "MitigationStrategy",
    "NoMitigation", "ReadoutMitigation", "ZNEMitigation", "ZNEResult",
    "available_mitigations", "confusion_matrices", "counts_to_probabilities",
    "exponential_extrapolation", "fold_gates", "fold_global",
    "fold_template_global", "get_mitigation", "linear_extrapolation",
    "mitigate_counts", "mitigate_probabilities", "mitigation_names",
    "parse_mitigation", "register_mitigation", "resolve_mitigation",
    "richardson_extrapolation", "split_mitigation_specs",
    "unregister_mitigation", "z_expectation_from_probabilities",
    "zne_energy",
]
