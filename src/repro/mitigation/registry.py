"""The open mitigation registry: ``@register_mitigation`` + spec grammar.

Every consumer of the mitigation axis -- ``Experiment.run``,
``InitializationMethod.run``, campaign specs, the CLI -- resolves
mitigation selections through this module, so a strategy registered from
user code (no core edits) runs everywhere a built-in does::

    from repro.mitigation import MitigationStrategy, register_mitigation

    @register_mitigation
    class MyMitigation(MitigationStrategy):
        name = "my_mitigation"
        description = "one line for `repro mitigations`"
        ...

Beyond bare names, :func:`resolve_mitigation` understands a declarative
spec grammar::

    none                      the default (bit-identical passthrough)
    zne:folds=5,fit=exp       a parameterized stage (key=value, ','-joined)
    zne:folds=3|readout       a '|'-composed stack, leftmost outermost

Lookups of unknown names fail with a did-you-mean suggestion naming the
registered mitigations (via the shared ``repro.naming`` helper).
"""

from __future__ import annotations

import re

from ..naming import did_you_mean
from .strategies import (
    ComposedMitigation,
    MitigationStrategy,
    NoMitigation,
    ReadoutMitigation,
    ZNEMitigation,
)

#: The strategy every surface defaults to: no mitigation at all.  Campaign
#: task ids and labels omit the axis at this value, so default grids stay
#: byte-identical to pre-mitigation stores.
DEFAULT_MITIGATION = "none"

_REGISTRY: dict[str, MitigationStrategy] = {}


def register_mitigation(strategy=None, *, replace: bool = False):
    """Register a :class:`MitigationStrategy` class or instance.

    Usable as a bare decorator (``@register_mitigation``), a parameterized
    one (``@register_mitigation(replace=True)``), or a plain call
    (``register_mitigation(instance)``).  Classes are instantiated with no
    arguments; pre-built instances register as-is (use this for
    parameterized variants).  Returns the decorated object unchanged.
    """
    def _register(obj):
        instance = obj() if isinstance(obj, type) else obj
        if not isinstance(instance, MitigationStrategy):
            raise TypeError(
                f"register_mitigation needs a MitigationStrategy subclass "
                f"or instance, got {obj!r}")
        name = instance.name
        if not name:
            raise ValueError(
                f"{type(instance).__name__} has no `name`; set the class "
                f"attribute before registering")
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"mitigation {name!r} is already registered "
                f"({_REGISTRY[name]!r}); pass replace=True to override")
        _REGISTRY[name] = instance
        return obj

    if strategy is None:
        return _register
    return _register(strategy)


def unregister_mitigation(name: str) -> None:
    """Remove a registered mitigation (primarily for test cleanup)."""
    _REGISTRY.pop(name, None)


def mitigation_names() -> tuple[str, ...]:
    """Registered names, in registration order (built-ins first)."""
    return tuple(_REGISTRY)


def available_mitigations() -> dict[str, MitigationStrategy]:
    """Name -> instance snapshot of the registry."""
    return dict(_REGISTRY)


def get_mitigation(name: str) -> MitigationStrategy:
    """Look up a registered mitigation; ``KeyError`` with a did-you-mean
    hint."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown mitigation {name!r}{did_you_mean(name, _REGISTRY)}; "
            f"registered mitigations: {list(_REGISTRY)}") from None


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_mitigation(spec: str) -> MitigationStrategy:
    """Parse a declarative spec into a (possibly composed) strategy.

    Grammar: ``stage("|" stage)*`` where a stage is
    ``name(":" key "=" value ("," key "=" value)*)?``.  Stage names resolve
    through the registry (did-you-mean on typos); parameters go through the
    prototype's ``parameterize``.
    """
    stages = []
    for part in str(spec).split("|"):
        part = part.strip()
        if not part:
            raise ValueError(f"empty stage in mitigation spec {spec!r}")
        name, colon, param_text = part.partition(":")
        base = get_mitigation(name.strip())
        params = {}
        if colon:
            for fragment in param_text.split(","):
                key, eq, value = fragment.partition("=")
                if not eq or not key.strip():
                    raise ValueError(
                        f"malformed parameter {fragment!r} in mitigation "
                        f"spec {spec!r}; expected key=value")
                params[key.strip()] = _parse_value(value.strip())
        stages.append(base.parameterize(**params) if params else base)
    if len(stages) == 1:
        return stages[0]
    return ComposedMitigation(stages)


def resolve_mitigation(mitigation=None) -> MitigationStrategy:
    """Normalize a mitigation selection into a strategy instance.

    Accepts ``None`` (the ``none`` default), a registered name, a spec in
    the ``"zne:folds=3|readout"`` grammar, or a
    :class:`MitigationStrategy` instance.
    """
    if mitigation is None:
        mitigation = DEFAULT_MITIGATION
    if isinstance(mitigation, MitigationStrategy):
        return mitigation
    if isinstance(mitigation, str):
        if mitigation in _REGISTRY:
            return _REGISTRY[mitigation]
        return parse_mitigation(mitigation)
    raise TypeError(
        f"mitigation must be a registered name, a 'zne:folds=3|readout' "
        f"spec, or a MitigationStrategy instance, got {mitigation!r}")


_PARAM_FRAGMENT = re.compile(r"^[A-Za-z_]\w*=")


def split_mitigation_specs(text: str) -> list[str]:
    """Split a comma-separated CLI list of mitigation specs.

    Specs themselves contain commas (``zne:folds=3,fit=exp``), so a naive
    split would shear them apart; bare ``key=value`` fragments are glued
    back onto the preceding spec (mitigation *names* never contain ``=``)::

        "none,zne:folds=3,fit=exp,readout"
            -> ["none", "zne:folds=3,fit=exp", "readout"]
    """
    specs: list[str] = []
    for fragment in str(text).split(","):
        fragment = fragment.strip()
        if not fragment:
            continue
        if specs and _PARAM_FRAGMENT.match(fragment):
            specs[-1] += "," + fragment
        else:
            specs.append(fragment)
    return specs


# Built-ins, in the order `repro mitigations` lists them.
for _builtin in (NoMitigation, ZNEMitigation, ReadoutMitigation):
    register_mitigation(_builtin)
del _builtin
