"""Digital gate folding: noise amplification for zero-noise extrapolation.

ZNE needs circuit variants that experience the same logical operation at
amplified noise.  Digital folding achieves this without pulse control by
inserting identity-equivalent gate triplets ``G G† G``: the unitary is
unchanged, but every inserted gate carries its own noise channels, scaling
the effective error rate by the (odd) fold factor.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit, Instruction, Parameter


def _inverse_instruction(inst: Instruction) -> Instruction:
    from dataclasses import replace

    from ..circuits.circuit import _INVERSE_NAME

    if inst.spec.num_params:
        return replace(inst, params=tuple(-float(p) for p in inst.params))
    return replace(inst, name=_INVERSE_NAME.get(inst.name, inst.name))


def fold_global(circuit: Circuit, scale: int) -> Circuit:
    """Fold the whole circuit: ``C -> C (C† C)^k`` with ``scale = 2k + 1``.

    Args:
        circuit: Bound circuit to fold.
        scale: Odd noise-scale factor (1 returns a copy).
    """
    _check_scale(scale)
    folds = (scale - 1) // 2
    out = circuit.copy()
    for _ in range(folds):
        out = out.compose(circuit.inverse()).compose(circuit)
    return out


def fold_gates(circuit: Circuit, scale: int,
               two_qubit_only: bool = True) -> Circuit:
    """Fold individual gates: ``G -> G (G† G)^k`` per instruction.

    Local folding amplifies noise more uniformly through the circuit than
    global folding; restricting to two-qubit gates targets the dominant
    error source (the common practice).
    """
    _check_scale(scale)
    folds = (scale - 1) // 2
    out = Circuit(circuit.num_qubits)
    for inst in circuit.instructions:
        out.instructions.append(inst)
        if two_qubit_only and len(inst.qubits) != 2:
            continue
        for _ in range(folds):
            out.instructions.append(_inverse_instruction(inst))
            out.instructions.append(inst)
    return out


def fold_template_global(template: Circuit, scale: int) -> Circuit:
    """Globally fold a *parameterized* ansatz template.

    ``Circuit.inverse`` cannot negate symbolic :class:`Parameter` angles, so
    this variant gives every fold block its own parameter window: block ``b``
    of a ``P``-parameter template references indices ``b*P .. b*P + P - 1``.
    Binding the folded template with the tiled vector

        ``theta_ext = [theta, -theta, theta, -theta, ...]``

    (sign flipped on the inverse blocks, since ``r(-t) = r(t)^dagger`` for
    every rotation gate) reproduces ``C (C^dagger C)^k`` at ``theta``
    exactly -- see ``_ZNEEstimator``, which performs that tiling.  Bound
    circuits (``P == 0``) fold like :func:`fold_global`.
    """
    _check_scale(scale)
    from dataclasses import replace

    from ..circuits.circuit import _INVERSE_NAME

    num_params = template.num_parameters
    out = Circuit(template.num_qubits)

    def _offset(inst: Instruction, offset: int) -> Instruction:
        params = tuple(Parameter(p.index + offset) if isinstance(p, Parameter)
                       else p for p in inst.params)
        return replace(inst, params=params)

    for block in range(scale):
        offset = block * num_params
        if block % 2 == 0:
            for inst in template.instructions:
                out.instructions.append(_offset(inst, offset))
            continue
        for inst in reversed(template.instructions):
            if inst.spec.num_params:
                # symbolic angles keep their gate; the caller's sign-flipped
                # theta window supplies the inversion
                params = tuple(
                    Parameter(p.index + offset) if isinstance(p, Parameter)
                    else -float(p) for p in inst.params)
                out.instructions.append(replace(inst, params=params))
            else:
                name = _INVERSE_NAME.get(inst.name, inst.name)
                out.instructions.append(replace(inst, name=name))
    return out


def _check_scale(scale: int) -> None:
    if scale < 1 or scale % 2 == 0:
        raise ValueError("fold scale must be an odd integer >= 1")
