"""Digital gate folding: noise amplification for zero-noise extrapolation.

ZNE needs circuit variants that experience the same logical operation at
amplified noise.  Digital folding achieves this without pulse control by
inserting identity-equivalent gate triplets ``G G† G``: the unitary is
unchanged, but every inserted gate carries its own noise channels, scaling
the effective error rate by the (odd) fold factor.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit, Instruction


def _inverse_instruction(inst: Instruction) -> Instruction:
    from dataclasses import replace

    from ..circuits.circuit import _INVERSE_NAME

    if inst.spec.num_params:
        return replace(inst, params=tuple(-float(p) for p in inst.params))
    return replace(inst, name=_INVERSE_NAME.get(inst.name, inst.name))


def fold_global(circuit: Circuit, scale: int) -> Circuit:
    """Fold the whole circuit: ``C -> C (C† C)^k`` with ``scale = 2k + 1``.

    Args:
        circuit: Bound circuit to fold.
        scale: Odd noise-scale factor (1 returns a copy).
    """
    _check_scale(scale)
    folds = (scale - 1) // 2
    out = circuit.copy()
    for _ in range(folds):
        out = out.compose(circuit.inverse()).compose(circuit)
    return out


def fold_gates(circuit: Circuit, scale: int,
               two_qubit_only: bool = True) -> Circuit:
    """Fold individual gates: ``G -> G (G† G)^k`` per instruction.

    Local folding amplifies noise more uniformly through the circuit than
    global folding; restricting to two-qubit gates targets the dominant
    error source (the common practice).
    """
    _check_scale(scale)
    folds = (scale - 1) // 2
    out = Circuit(circuit.num_qubits)
    for inst in circuit.instructions:
        out.instructions.append(inst)
        if two_qubit_only and len(inst.qubits) != 2:
            continue
        for _ in range(folds):
            out.instructions.append(_inverse_instruction(inst))
            out.instructions.append(inst)
    return out


def _check_scale(scale: int) -> None:
    if scale < 1 or scale % 2 == 0:
        raise ValueError("fold scale must be an odd integer >= 1")
