"""Layout, routing, and the transpile pipeline."""

from .layout import find_chain_layout, find_line_layout, path_score, trivial_layout
from .routing import RoutingResult, decompose_swaps, route_circuit
from .transpile import TranspileResult, embed_pauli_sum, transpile

__all__ = [
    "RoutingResult", "TranspileResult", "decompose_swaps", "embed_pauli_sum",
    "find_chain_layout", "find_line_layout", "path_score", "route_circuit", "transpile",
    "trivial_layout",
]
