"""Routing: make every two-qubit gate act on coupled physical qubits.

A greedy shortest-path router in the spirit of (a simplified) SABRE: walk
the circuit in order while tracking the logical-to-physical mapping; when a
two-qubit gate spans non-adjacent physical qubits, insert SWAPs along a
shortest path (preferring low-error edges via the backend's error weights)
until the pair is adjacent, updating the mapping as qubits move.

Works on *unbound* circuits -- rotation parameters ride along untouched --
so the VQE ansatz is routed once and bound per iteration, exactly like the
paper's flow (transpile first, then feed ``A'`` to Clapton, Sec. 5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..circuits.circuit import Circuit


@dataclass
class RoutingResult:
    """Physical circuit plus the evolving qubit maps.

    Attributes:
        circuit: Circuit on the physical register (same width as the device
            graph; compaction happens in :func:`repro.transpiler.transpile`).
        initial_layout: logical qubit -> physical qubit before the circuit.
        final_layout: logical qubit -> physical qubit after the circuit
            (SWAPs move logical qubits; measurements use this map).
        num_swaps: SWAPs inserted.
    """

    circuit: Circuit
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    num_swaps: int


def route_circuit(circuit: Circuit, graph: nx.Graph,
                  initial_layout: dict[int, int],
                  edge_weight: dict[tuple[int, int], float] | None = None
                  ) -> RoutingResult:
    """Insert SWAPs so every 2-qubit gate is on an edge of ``graph``.

    Args:
        circuit: Logical circuit (may contain symbolic parameters).
        graph: Physical coupling graph.
        initial_layout: Placement of each logical qubit.
        edge_weight: Optional per-edge cost used to pick among shortest
            paths (two-qubit error rates); unweighted hops when omitted.
    """
    placed = set(initial_layout.values())
    if len(placed) != len(initial_layout):
        raise ValueError("initial layout maps two logical qubits to one physical")
    for phys in placed:
        if phys not in graph:
            raise ValueError(f"physical qubit {phys} not in coupling graph")

    log_to_phys = dict(initial_layout)
    phys_to_log = {p: l for l, p in log_to_phys.items()}
    # width by max physical id: `graph` may be an induced subgraph whose
    # node ids are sparse (compaction happens in the transpile pipeline)
    num_device_qubits = max(graph.nodes) + 1
    out = Circuit(num_device_qubits)

    def weight(a: int, b: int) -> float:
        if edge_weight is None:
            return 1.0
        return 1.0 + edge_weight.get(tuple(sorted((a, b))), 0.0)

    num_swaps = 0
    for inst in circuit.instructions:
        if len(inst.qubits) == 1:
            out.append(inst.name, [log_to_phys[inst.qubits[0]]], inst.params)
            continue
        la, lb = inst.qubits
        pa, pb = log_to_phys[la], log_to_phys[lb]
        if not graph.has_edge(pa, pb):
            path = nx.shortest_path(graph, pa, pb,
                                    weight=lambda u, v, d: weight(u, v))
            # swap the first qubit down the path until adjacent to pb
            for hop in path[1:-1]:
                out.swap(pa, hop)
                num_swaps += 1
                moved = phys_to_log.get(hop)
                phys_to_log[hop] = phys_to_log.pop(pa)
                if moved is not None:
                    phys_to_log[pa] = moved
                    log_to_phys[moved] = pa
                log_to_phys[phys_to_log[hop]] = hop
                pa = hop
        out.append(inst.name, [pa, pb], inst.params)
    return RoutingResult(circuit=out, initial_layout=dict(initial_layout),
                         final_layout=dict(log_to_phys), num_swaps=num_swaps)


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Replace each SWAP with its 3-CX implementation (IBM native cost)."""
    out = Circuit(circuit.num_qubits)
    for inst in circuit.instructions:
        if inst.name == "swap":
            a, b = inst.qubits
            out.cx(a, b).cx(b, a).cx(a, b)
        else:
            out.instructions.append(inst)
    return out
