"""The transpilation pipeline: layout -> routing -> SWAP decomposition -> compaction.

Mirrors what the paper gets from Qiskit's transpiler before handing the
ansatz to Clapton (Sec. 5.2.2): the ansatz circuit is mapped onto a
noise-aware line of physical qubits, the wrap-around CX of the circular
entangler is routed with SWAPs, SWAPs are decomposed into the 3-CX native
form, and the result is compacted onto the register of actually-used
physical qubits so downstream density-matrix simulation stays affordable.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..backends.backend import Backend
from ..circuits.circuit import Circuit
from ..noise.model import NoiseModel
from ..paulis.pauli_sum import PauliSum
from .layout import find_chain_layout
from .routing import decompose_swaps, route_circuit


@dataclass
class TranspileResult:
    """A hardware-ready circuit plus everything needed to evaluate energies.

    Attributes:
        circuit: The routed circuit on the compact register (width =
            ``len(physical_qubits)``), parameters still symbolic if the
            input had symbolic parameters.
        physical_qubits: Compact index -> physical qubit id on the backend.
        initial_layout: logical qubit -> compact index at circuit start.
        final_layout: logical qubit -> compact index at circuit end (where
            measurement happens; Hamiltonians map through this).
        backend: The target device.
        num_swaps: SWAPs the router inserted (before 3-CX decomposition).
    """

    circuit: Circuit
    physical_qubits: list[int]
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    backend: Backend
    num_swaps: int

    @property
    def num_qubits(self) -> int:
        return len(self.physical_qubits)

    def noise_model(self) -> NoiseModel:
        """Calibration-derived model on the compact register."""
        return self.backend.noise_model(self.physical_qubits)

    def hardware_noise_model(self) -> NoiseModel:
        """Twin model (only meaningful when backend is a hardware twin)."""
        return self.backend.twin_noise_model(self.physical_qubits)

    def map_hamiltonian(self, hamiltonian: PauliSum) -> PauliSum:
        """Re-express a logical Hamiltonian on the compact register.

        Logical qubit ``q``'s Pauli factor lands on compact index
        ``final_layout[q]`` -- the physical residence at measurement time.
        """
        positions = [self.final_layout[q]
                     for q in range(hamiltonian.num_qubits)]
        return embed_pauli_sum(hamiltonian, positions, self.num_qubits)


def embed_pauli_sum(hamiltonian: PauliSum, positions: list[int],
                    num_qubits: int) -> PauliSum:
    """Place each logical qubit's factors at ``positions[q]`` of a wider register."""
    if len(set(positions)) != len(positions):
        raise ValueError("positions must be distinct")
    from ..core.transformation import embed_table

    table = embed_table(hamiltonian.table, positions, num_qubits)
    return PauliSum(table, hamiltonian.coefficients.copy())


def transpile(circuit: Circuit, backend: Backend,
              layout: list[int] | None = None,
              decompose_swap_gates: bool = True,
              restrict_to_layout: bool = True) -> TranspileResult:
    """Map and route a logical circuit onto a backend.

    Args:
        circuit: Logical circuit (chain-plus-wraparound ansatz or anything
            else; routing is generic).
        backend: Target device.
        layout: Optional explicit physical line (logical qubit ``q`` starts
            at ``layout[q]``); found with the noise-aware search otherwise.
        decompose_swap_gates: Lower SWAPs to 3 CX (native cost accounting).
        restrict_to_layout: Route only within the subgraph induced by the
            layout qubits (when it is connected).  This keeps the physical
            register width equal to the logical width so downstream
            density-matrix evaluation stays affordable; disable to let the
            router borrow neighbouring ancilla qubits for shortcuts.
    """
    if layout is None:
        layout = find_chain_layout(backend, circuit.num_qubits)
    if len(layout) != circuit.num_qubits:
        raise ValueError("layout length must equal the logical qubit count")
    initial = {q: p for q, p in enumerate(layout)}
    weights = {k: float(v) for k, v in backend.calibration.error_2q.items()}
    graph = backend.graph
    if restrict_to_layout:
        induced = graph.subgraph(layout)
        import networkx as nx

        if nx.is_connected(induced):
            graph = induced
    routed = route_circuit(circuit, graph, initial, edge_weight=weights)
    physical_circuit = (decompose_swaps(routed.circuit)
                        if decompose_swap_gates else routed.circuit)

    used = sorted({q for inst in physical_circuit.instructions
                   for q in inst.qubits}
                  | set(routed.final_layout.values())
                  | set(initial.values()))
    compact_of = {phys: i for i, phys in enumerate(used)}
    compact = Circuit(len(used))
    for inst in physical_circuit.instructions:
        compact.append(inst.name, [compact_of[q] for q in inst.qubits],
                       inst.params)
    return TranspileResult(
        circuit=compact,
        physical_qubits=used,
        initial_layout={q: compact_of[p] for q, p in initial.items()},
        final_layout={q: compact_of[p]
                      for q, p in routed.final_layout.items()},
        backend=backend,
        num_swaps=routed.num_swaps,
    )
