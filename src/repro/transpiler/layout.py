"""Initial layout search: place the ansatz chain on good physical qubits.

The circular hardware-efficient ansatz is a nearest-neighbour chain plus one
wrap-around pair, so the natural layout is a simple path in the coupling
graph.  Heavy-hex lattices contain no length-10 cycles that would absorb the
wrap-around link, so the wrap CX is left to the router.

The search is a noise-aware depth-first enumeration: paths are scored by the
summed two-qubit error along their edges plus the readout error of their
qubits (the dominant costs for the theta = 0 skeleton), and the best-scoring
path wins.  A node budget keeps worst-case work bounded on larger graphs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..backends.backend import Backend


def path_score(backend: Backend, path: list[int]) -> float:
    """Lower is better: accumulated 2q gate error + readout error."""
    cal = backend.calibration
    error = sum(cal.error_2q[tuple(sorted((a, b)))]
                for a, b in zip(path, path[1:]))
    error += float(np.sum(cal.readout_p01[path] + cal.readout_p10[path]) / 2)
    return error


def find_line_layout(backend: Backend, length: int,
                     max_nodes_expanded: int = 200_000) -> list[int]:
    """Best simple path of ``length`` qubits in the coupling graph.

    Raises:
        ValueError: if the graph has no simple path of that length.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if length > backend.num_qubits:
        raise ValueError(
            f"cannot place {length} logical qubits on {backend.num_qubits}")
    if length == 1:
        readout = backend.calibration.readout_p01 + backend.calibration.readout_p10
        return [int(np.argmin(readout))]

    graph = backend.graph
    best_path: list[int] | None = None
    best_score = float("inf")
    expanded = 0

    def dfs(path: list[int], used: set[int]) -> None:
        nonlocal best_path, best_score, expanded
        if expanded >= max_nodes_expanded:
            return
        expanded += 1
        if len(path) == length:
            score = path_score(backend, path)
            if score < best_score:
                best_score = score
                best_path = list(path)
            return
        # visit lower-error edges first so early complete paths are good
        # ones even if the node budget cuts the search short
        neighbors = [v for v in graph.neighbors(path[-1]) if v not in used]
        neighbors.sort(key=lambda v: backend.calibration.error_2q[
            tuple(sorted((path[-1], v)))])
        for v in neighbors:
            path.append(v)
            used.add(v)
            dfs(path, used)
            used.remove(v)
            path.pop()

    for start in graph.nodes:
        dfs([start], {start})
    if best_path is None:
        raise ValueError(f"no simple path of length {length} in {backend.name}")
    return best_path


def trivial_layout(num_qubits: int) -> list[int]:
    """Identity placement (used when the topology is already a line)."""
    return list(range(num_qubits))


def find_chain_layout(backend: Backend, length: int) -> list[int]:
    """Line layout when one exists, DFS-order placement otherwise.

    Heavy-hex devices cannot always host a full-length simple path (nairobi
    has none of length 7), so the fallback orders a DFS traversal of the
    coupling graph and lets the router bridge the non-adjacent consecutive
    pairs with SWAPs -- the same thing Qiskit's layout+routing stack ends up
    doing for the paper's 7-qubit nairobi runs.
    """
    try:
        return find_line_layout(backend, length)
    except ValueError:
        pass
    graph = backend.graph
    cal = backend.calibration
    best: list[int] | None = None
    best_score = float("inf")
    for start in graph.nodes:
        order = list(nx.dfs_preorder_nodes(graph, source=start))[:length]
        if len(order) < length:
            continue
        score = sum(nx.shortest_path_length(graph, a, b)
                    for a, b in zip(order, order[1:]))
        score += float(np.sum(cal.readout_p01[order] + cal.readout_p10[order]) / 2)
        if score < best_score:
            best_score = score
            best = order
    if best is None:
        raise ValueError(
            f"backend {backend.name} cannot host {length} connected qubits")
    return best
