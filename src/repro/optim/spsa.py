"""Simultaneous Perturbation Stochastic Approximation (Spall 1998).

The classical optimizer of the paper's online VQE phase (Sec. 5.2): each
iteration estimates the gradient from exactly two loss evaluations at a
random simultaneous perturbation, making it robust to the sampling noise of
quantum energy estimates.  Gain schedules and the initial-step calibration
follow the common (Qiskit-style) practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass
class SPSAConfig:
    """Gain schedule ``a_k = a / (k + 1 + A)^alpha``, ``c_k = c / (k + 1)^gamma``."""

    maxiter: int = 300
    a: float | None = None        # calibrated from the loss when None
    c: float = 0.1
    alpha: float = 0.602
    gamma: float = 0.101
    stability_constant: float | None = None  # A; default maxiter / 10
    target_first_step: float = 0.2
    calibration_samples: int = 10
    bounds: tuple[float, float] | None = None
    seed: int | None = None
    #: trust region: per-iteration update clipped to this infinity norm.
    #: Guards against exploding calibrated gains when the starting point is
    #: nearly stationary (exactly the situation good initializations create:
    #: gradients at a Clifford optimum are tiny, so 1/|g| calibration would
    #: otherwise produce catastrophic first steps).  ``None`` disables.
    max_step_size: float | None = 0.3
    #: lower bound on the gradient magnitude used by the gain calibration.
    #: A well-initialized VQE starts near a stationary point where measured
    #: gradients say nothing about the landscape's curvature scale; without
    #: a floor the calibrated learning rate is inversely proportional to
    #: noise.  Units: loss change per radian.
    calibration_gradient_floor: float = 1.0


@dataclass
class SPSAResult:
    x: np.ndarray
    loss: float
    history: list[float] = field(default_factory=list)
    num_evaluations: int = 0


def minimize_spsa(loss_fn: Callable[[np.ndarray], float], x0: np.ndarray,
                  config: SPSAConfig | None = None,
                  callback: Callable[[int, np.ndarray, float], None] | None = None
                  ) -> SPSAResult:
    """Minimize a noisy loss with SPSA.

    Args:
        loss_fn: Possibly stochastic objective.
        x0: Starting parameters (the initialization whose quality the whole
            paper is about).
        config: Hyperparameters.
        callback: Called as ``callback(iteration, x, loss_estimate)`` each
            iteration; the loss estimate is the mean of the two perturbed
            evaluations (the standard convergence-trace proxy, avoiding a
            third evaluation per step).
    """
    cfg = config or SPSAConfig()
    rng = np.random.default_rng(cfg.seed)
    x = np.asarray(x0, dtype=float).copy()
    dim = len(x)
    big_a = (cfg.stability_constant if cfg.stability_constant is not None
             else 0.1 * cfg.maxiter)
    evaluations = 0

    def evaluate(point: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        return float(loss_fn(point))

    a = cfg.a
    if a is None:
        # Calibrate so the very first update step has the target magnitude,
        # using a handful of gradient-magnitude probes at x0.
        magnitudes = []
        for _ in range(cfg.calibration_samples):
            delta = rng.choice([-1.0, 1.0], size=dim)
            g = (evaluate(x + cfg.c * delta) - evaluate(x - cfg.c * delta)) \
                / (2 * cfg.c)
            magnitudes.append(abs(g))
        mean_mag = float(np.mean(magnitudes))
        a = (cfg.target_first_step * (big_a + 1) ** cfg.alpha
             / max(mean_mag, cfg.calibration_gradient_floor, 1e-10))

    history: list[float] = []
    for k in range(cfg.maxiter):
        ak = a / (k + 1 + big_a) ** cfg.alpha
        ck = cfg.c / (k + 1) ** cfg.gamma
        delta = rng.choice([-1.0, 1.0], size=dim)
        loss_plus = evaluate(x + ck * delta)
        loss_minus = evaluate(x - ck * delta)
        gradient = (loss_plus - loss_minus) / (2 * ck) * delta
        update = ak * gradient
        if cfg.max_step_size is not None:
            largest = float(np.abs(update).max())
            if largest > cfg.max_step_size:
                update = update * (cfg.max_step_size / largest)
        x = x - update
        if cfg.bounds is not None:
            x = np.clip(x, cfg.bounds[0], cfg.bounds[1])
        estimate = 0.5 * (loss_plus + loss_minus)
        history.append(estimate)
        if callback is not None:
            callback(k, x, estimate)

    final_loss = evaluate(x)
    return SPSAResult(x=x, loss=final_loss, history=history,
                      num_evaluations=evaluations)
