"""The multi-GA optimization engine of Figure 4.

Clapton spawns ``s`` GA instances from random populations, runs each for
``m`` generations, pools the top ``k`` solutions of every instance, shuffles
the pool into ``s`` fresh starting populations topped up with new random
guesses, and repeats rounds until the global loss stops decreasing (with a
configurable number of retry rounds -- the paper allows two).

The same engine drives Clapton, CAFQA, and nCAFQA (Sec. 5.2 builds the
baselines on "an optimization engine similar to the one shown in Figure 4"),
so method comparisons isolate the *cost function*, not the optimizer.

Round-level parallelism (the axis the paper parallelizes, Sec. 6.3) is a
one-argument switch: pass any :mod:`repro.execution` executor as
``executor=``.  Under :class:`~repro.execution.SerialExecutor` (the
default) the engine keeps its legacy schedule -- one rng threaded through
every GA instance and the mixing step -- so serial results are bit-
identical across versions.  Thread/process executors give every instance
its own deterministic seed stream instead, so parallel runs reproduce
other parallel runs with the same seed (but not the serial schedule), and
the shared loss cache travels with the jobs: each worker starts from the
current table snapshot and the parent merges the discoveries back, so
repeated genomes never re-pay a full evaluation in any mode.

``EngineConfig.parallel_axis = "population"`` selects a second parallel
unit: GA instances stay on the serial schedule and each generation's
deduped loss batch is sharded across the executor's workers instead
(:class:`_ShardedBatchLoss`), combining parallel loss evaluation with
results bit-identical to the serial engine.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..execution.cache import memoize_loss
from ..execution.executor import (
    Executor,
    SerialExecutor,
    resolve_executor,
    spawn_seeds,
)
from ..obs import get_tracer
from ..obs.kernel import KERNEL
from .genetic import GAConfig, GeneticAlgorithm


@dataclass
class EngineConfig:
    """Hyperparameters of the Figure-4 engine.

    The defaults are the paper's working point: ``s = 10`` instances,
    ``m = 100`` iterations, top ``k = 20`` pooled per instance, population
    ``|S| = 100``, and two retry rounds before declaring convergence.
    Benchmarks shrink these (documented per-bench) to keep runtimes civil.
    """

    num_instances: int = 10          # s
    generations_per_round: int = 100  # m
    top_k: int = 20                   # k
    population_size: int = 100        # |S|
    retry_rounds: int = 2
    max_rounds: int = 50
    pool_fraction: float = 0.5
    ga: GAConfig = field(default_factory=GAConfig)
    seed: int | None = None
    #: Which axis a parallel executor fans out: ``"instances"`` ships whole
    #: GA instances to workers (each with its own seed stream -- fast, but
    #: a different schedule than serial); ``"population"`` keeps the exact
    #: serial schedule and instead shards each generation's deduped loss
    #: batch across the workers, so results stay bit-identical to the
    #: serial engine while the loss evaluations -- the dominant cost --
    #: run in parallel.  Ignored under a serial executor.
    parallel_axis: str = "instances"
    #: Deprecated: pass ``executor=ProcessExecutor(n)`` to
    #: :func:`multi_ga_minimize` instead.  Kept as a compatibility knob;
    #: values > 1 select a process executor with a deprecation warning.
    num_processes: int = 1

    def validate(self) -> None:
        """Reject configurations the round loop cannot run to completion.

        Called by :func:`multi_ga_minimize` before any evaluation is spent,
        so a bad working point fails fast instead of burning a full round
        and then crashing in the mix step.
        """
        for name in ("num_instances", "population_size", "max_rounds"):
            if getattr(self, name) < 1:
                raise ValueError(f"EngineConfig.{name} must be >= 1")
        for name in ("generations_per_round", "top_k", "retry_rounds",
                     "num_processes"):
            if getattr(self, name) < 0:
                raise ValueError(f"EngineConfig.{name} must be >= 0")
        if not 0.0 <= self.pool_fraction <= 1.0:
            raise ValueError("EngineConfig.pool_fraction must be in [0, 1]")
        if self.parallel_axis not in ("instances", "population"):
            raise ValueError("EngineConfig.parallel_axis must be "
                             "'instances' or 'population'")


@dataclass
class RoundRecord:
    """Bookkeeping for one engine round (feeds the Fig. 9 scaling study)."""

    best_loss: float
    duration_seconds: float
    num_evaluations: int


@dataclass
class EngineResult:
    best_genome: np.ndarray
    best_loss: float
    rounds: list[RoundRecord]
    num_evaluations: int
    total_seconds: float
    #: Aggregated memo-cache accounting across every GA instance of every
    #: round -- including instances that ran in child processes, whose
    #: counters would otherwise be dropped on the wire (each worker reports
    #: its own deltas and the parent sums them here).
    cache_stats: dict | None = None

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def seconds_per_round(self) -> float:
        return self.total_seconds / max(1, len(self.rounds))


def _run_one_instance(job) -> tuple[list[tuple[float, np.ndarray]],
                                    float, np.ndarray, int,
                                    dict[bytes, float], int, int, dict]:
    """Worker: one GA instance of one round (top-level for pickling).

    ``job`` is ``(loss_fn, genome_length, num_values, ga_config,
    rng_or_seed, population, top_k, cache, collect_new)``.  ``rng_or_seed``
    is the engine's shared generator under the serial schedule and a
    per-instance ``SeedSequence`` under parallel executors.  ``cache`` is
    the live memo table (serial) or a round-start snapshot (parallel);
    with ``collect_new`` set, entries discovered by this instance are
    returned for the parent to merge.  The trailing ``(cache_hits,
    cache_dedups, kernel_delta)`` carry the instance's memo accounting
    and packed-kernel counter advance back explicitly -- counters
    mutated inside a child process would otherwise be lost (the parent
    folds ``kernel_delta`` into its own ``KERNEL`` singleton only for
    out-of-process executors; in-process instances already bumped it).
    """
    (loss_fn, genome_length, num_values, ga_config, rng_or_seed,
     population, top_k, cache, collect_new) = job
    rng = (rng_or_seed if isinstance(rng_or_seed, np.random.Generator)
           else np.random.default_rng(rng_or_seed))
    known = set(cache) if collect_new else ()
    kernel_before = KERNEL.snapshot()
    ga = GeneticAlgorithm(loss_fn, genome_length, num_values,
                          config=ga_config, rng=rng, cache=cache)
    result = ga.run(initial_population=population)
    top = [(float(result.losses[j]), result.population[j].copy())
           for j in range(min(top_k, len(result.population)))]
    new_entries = ({k: cache[k] for k in cache.keys() - known}
                   if collect_new else {})
    return (top, result.best_loss, result.best_genome.copy(),
            result.num_evaluations, new_entries,
            result.cache_hits, result.cache_dedups,
            KERNEL.delta(kernel_before))


def _evaluate_shard(job) -> np.ndarray:
    """Worker: losses of one population shard (top-level for pickling)."""
    loss_fn, genomes = job
    batch_fn = getattr(loss_fn, "evaluate_many", None)
    if batch_fn is not None:
        return np.asarray(batch_fn(genomes), dtype=float)
    return np.array([float(loss_fn(g)) for g in genomes])


def _evaluate_shard_timed(job) -> tuple[np.ndarray, float, dict]:
    """Worker: one shard plus its in-worker wall time and kernel delta.

    Process-pool children fall back to the null tracer, so per-shard
    durations and packed-kernel counter advances are measured here and
    *returned*; the parent re-emits them as ``loss.shard`` events under
    its ``executor.map_shards`` span and folds the kernel delta into
    its own ``KERNEL`` singleton.
    """
    kernel_before = KERNEL.snapshot()
    start = time.perf_counter()
    values = _evaluate_shard(job)
    return (values, time.perf_counter() - start,
            KERNEL.delta(kernel_before))


class _ShardedBatchLoss:
    """Loss adapter fanning each generation's miss batch over an executor.

    The ``parallel_axis = "population"`` engine mode keeps the legacy
    serial schedule (one rng, live cache, instances run inline) and makes
    the *loss evaluations* the parallel unit instead: the deduped batch a
    GA generation produces is split into one shard per worker and shipped
    through ``executor.map``.  Shard results concatenate in genome order
    and every per-genome value is computed by the same batched arithmetic,
    so results are bit-identical to the serial engine.
    """

    def __init__(self, loss_fn, executor: Executor, num_shards: int):
        self.loss_fn = loss_fn
        self.executor = executor
        self.num_shards = max(1, int(num_shards))

    def __call__(self, genome) -> float:
        return float(self.loss_fn(genome))

    def evaluate_many(self, genomes) -> np.ndarray:
        genomes = np.asarray(genomes)
        num_shards = min(self.num_shards, len(genomes))
        if num_shards <= 1:
            return _evaluate_shard((self.loss_fn, genomes))
        shards = np.array_split(genomes, num_shards)
        jobs = [(self.loss_fn, shard) for shard in shards]
        tracer = get_tracer()
        # In-process workers (threads) record their own loss spans; only
        # out-of-process workers need in-worker timings shipped back.
        if not tracer.enabled or getattr(self.executor, "in_process", True):
            parts = self.executor.map(_evaluate_shard, jobs)
            return np.concatenate(parts)
        with tracer.span("executor.map_shards", shards=num_shards,
                         batch=len(genomes)):
            timed = self.executor.map(_evaluate_shard_timed, jobs)
            for (_, seconds, kernel_delta), shard in zip(timed, shards):
                KERNEL.add(kernel_delta)
                tracer.event("loss.shard", seconds, batch=len(shard),
                             kernel_words=kernel_delta.get("words", 0))
        return np.concatenate([values for values, _, _ in timed])


def multi_ga_minimize(loss_fn: Callable[[np.ndarray], float],
                      genome_length: int, num_values: int = 4,
                      config: EngineConfig | None = None,
                      executor: Executor | None = None) -> EngineResult:
    """Run the Figure-4 engine to convergence and return the best genome.

    Args:
        loss_fn: Maps a genome (1-D int array) to a float loss.  Must be
            picklable when a process executor fans the instances out.
        genome_length: Number of genes.
        num_values: Genes take values ``0..num_values-1``.
        config: Engine hyperparameters.
        executor: Execution backend for the GA instances of each round;
            defaults to :class:`~repro.execution.SerialExecutor` (or, for
            backward compatibility, a process pool when the deprecated
            ``config.num_processes`` exceeds 1).
    """
    cfg = config or EngineConfig()
    cfg.validate()
    if executor is None and cfg.num_processes > 1:
        warnings.warn(
            "EngineConfig.num_processes is deprecated; pass "
            "executor=ProcessExecutor(n) to multi_ga_minimize instead",
            DeprecationWarning, stacklevel=2)
    executor, owned = resolve_executor(executor, cfg.num_processes)
    try:
        return _minimize_rounds(loss_fn, genome_length, num_values, cfg,
                                executor)
    finally:
        if owned:
            executor.close()


def _minimize_rounds(loss_fn, genome_length: int, num_values: int,
                     cfg: EngineConfig, executor: Executor) -> EngineResult:
    """The single round loop shared by every execution backend."""
    population_axis = (cfg.parallel_axis == "population"
                       and not executor.in_process_sequential)
    if population_axis:
        # Population sharding: instances run inline on the serial
        # schedule; the executor parallelizes each generation's deduped
        # loss batch instead (bit-identical to the serial engine).
        # Executors outside this package may not expose max_workers;
        # shard by core count then, so batches still go through map.
        num_shards = (getattr(executor, "max_workers", None)
                      or os.cpu_count() or 1)
        loss_fn = _ShardedBatchLoss(loss_fn, executor, num_shards)
        instance_executor: Executor = SerialExecutor()
        sequential = True
    else:
        instance_executor = executor
        sequential = executor.in_process_sequential
    memo = memoize_loss(loss_fn)
    if sequential:
        # Legacy serial schedule: one rng threads through the GA instances
        # and the mixing step, and every instance shares the live cache.
        rng = np.random.default_rng(cfg.seed)
        seed_seq = None
    else:
        seed_seq = np.random.SeedSequence(cfg.seed)
        rng = np.random.default_rng(spawn_seeds(seed_seq, 1)[0])
    ga_config = GAConfig(
        population_size=cfg.population_size,
        num_generations=cfg.generations_per_round,
        tournament_size=cfg.ga.tournament_size,
        crossover_rate=cfg.ga.crossover_rate,
        mutation_rate=cfg.ga.mutation_rate,
        elite_count=cfg.ga.elite_count,
    )

    populations: list[np.ndarray | None] = [None] * cfg.num_instances
    best_genome: np.ndarray | None = None
    best_loss = float("inf")
    retries_left = cfg.retry_rounds
    rounds: list[RoundRecord] = []
    total_evals = 0
    cache_hits = 0
    cache_dedups = 0
    tracer = get_tracer()
    start_time = time.perf_counter()

    for _ in range(cfg.max_rounds):
        # One real span per round (the RoundRecord keeps its own
        # perf_counter bookkeeping -- spans are additive, never a source
        # of record fields).  Loss spans from the instances nest inside.
        with tracer.span("engine.round", round=len(rounds),
                         instances=cfg.num_instances) as round_span:
            round_start = time.perf_counter()
            if sequential:
                jobs = [(loss_fn, genome_length, num_values, ga_config, rng,
                         populations[i], cfg.top_k, memo.cache, False)
                        for i in range(cfg.num_instances)]
            else:
                seeds = spawn_seeds(seed_seq, cfg.num_instances)
                jobs = [(loss_fn, genome_length, num_values, ga_config,
                         seeds[i], populations[i], cfg.top_k,
                         memo.snapshot(), True)
                        for i in range(cfg.num_instances)]
            outcomes = instance_executor.map(_run_one_instance, jobs)

            round_evals = 0
            pool: list[tuple[float, np.ndarray]] = []
            # in-process instances bumped the parent's KERNEL directly;
            # only out-of-process deltas need folding in
            fold_kernel = not getattr(instance_executor, "in_process",
                                      True)
            for (top, instance_best, instance_genome, evals, entries,
                 instance_hits, instance_dedups,
                 instance_kernel) in outcomes:
                memo.merge(entries)
                round_evals += evals
                cache_hits += instance_hits
                cache_dedups += instance_dedups
                if fold_kernel:
                    KERNEL.add(instance_kernel)
                pool.extend(top)
                if instance_best < best_loss - 1e-12:
                    best_loss = instance_best
                    best_genome = instance_genome
            total_evals += round_evals
            rounds.append(RoundRecord(
                best_loss=best_loss,
                duration_seconds=time.perf_counter() - round_start,
                num_evaluations=round_evals))
            round_span.tag(evaluations=round_evals, best_loss=best_loss)

            improved = (len(rounds) < 2
                        or rounds[-1].best_loss
                        < rounds[-2].best_loss - 1e-12)
            if improved:
                retries_left = cfg.retry_rounds
            else:
                retries_left -= 1
                if retries_left < 0:
                    break

            # Mix: shuffle the pooled elites into fresh seed populations,
            # topping up with brand-new random guesses (Figure 4, right).
            if not pool:
                # top_k = 0 leaves nothing to pool; reseed every instance
                # from fresh random guesses instead of crashing in
                # rng.choice.
                populations = [None] * cfg.num_instances
                continue
            pool_genomes = np.array([g for _, g in pool])
            draw = max(1, int(cfg.pool_fraction * cfg.population_size))
            for i in range(cfg.num_instances):
                take = min(draw, len(pool_genomes))
                picks = rng.choice(len(pool_genomes), size=take,
                                   replace=False)
                populations[i] = pool_genomes[picks].copy()

    return EngineResult(
        best_genome=best_genome, best_loss=best_loss, rounds=rounds,
        num_evaluations=total_evals,
        total_seconds=time.perf_counter() - start_time,
        cache_stats={"hits": cache_hits, "misses": total_evals,
                     "dedups": cache_dedups, "entries": len(memo)})
