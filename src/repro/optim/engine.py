"""The multi-GA optimization engine of Figure 4.

Clapton spawns ``s`` GA instances from random populations, runs each for
``m`` generations, pools the top ``k`` solutions of every instance, shuffles
the pool into ``s`` fresh starting populations topped up with new random
guesses, and repeats rounds until the global loss stops decreasing (with a
configurable number of retry rounds -- the paper allows two).

The same engine drives Clapton, CAFQA, and nCAFQA (Sec. 5.2 builds the
baselines on "an optimization engine similar to the one shown in Figure 4"),
so method comparisons isolate the *cost function*, not the optimizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .genetic import GAConfig, GeneticAlgorithm


@dataclass
class EngineConfig:
    """Hyperparameters of the Figure-4 engine.

    The defaults are the paper's working point: ``s = 10`` instances,
    ``m = 100`` iterations, top ``k = 20`` pooled per instance, population
    ``|S| = 100``, and two retry rounds before declaring convergence.
    Benchmarks shrink these (documented per-bench) to keep runtimes civil.
    """

    num_instances: int = 10          # s
    generations_per_round: int = 100  # m
    top_k: int = 20                   # k
    population_size: int = 100        # |S|
    retry_rounds: int = 2
    max_rounds: int = 50
    pool_fraction: float = 0.5
    ga: GAConfig = field(default_factory=GAConfig)
    seed: int | None = None
    #: worker processes for the GA instances of each round (the paper
    #: parallelizes exactly this axis, Sec. 6.3).  1 = sequential; parallel
    #: runs use per-instance seed streams, so results match other parallel
    #: runs with the same seed but not the sequential schedule.
    num_processes: int = 1


@dataclass
class RoundRecord:
    """Bookkeeping for one engine round (feeds the Fig. 9 scaling study)."""

    best_loss: float
    duration_seconds: float
    num_evaluations: int


@dataclass
class EngineResult:
    best_genome: np.ndarray
    best_loss: float
    rounds: list[RoundRecord]
    num_evaluations: int
    total_seconds: float

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def seconds_per_round(self) -> float:
        return self.total_seconds / max(1, len(self.rounds))


def _run_one_instance(args) -> tuple[list[tuple[float, np.ndarray]],
                                     float, np.ndarray, int]:
    """Worker: one GA instance of one round (top-level for pickling)."""
    loss_fn, genome_length, num_values, ga_config, seed, population, top_k = args
    ga = GeneticAlgorithm(loss_fn, genome_length, num_values,
                          config=ga_config,
                          rng=np.random.default_rng(seed))
    result = ga.run(initial_population=population)
    top = [(float(result.losses[j]), result.population[j].copy())
           for j in range(min(top_k, len(result.population)))]
    return top, result.best_loss, result.best_genome.copy(), result.num_evaluations


def multi_ga_minimize(loss_fn: Callable[[np.ndarray], float],
                      genome_length: int, num_values: int = 4,
                      config: EngineConfig | None = None) -> EngineResult:
    """Run the Figure-4 engine to convergence and return the best genome."""
    cfg = config or EngineConfig()
    rng = np.random.default_rng(cfg.seed)
    cache: dict[bytes, float] = {}
    ga_config = GAConfig(
        population_size=cfg.population_size,
        num_generations=cfg.generations_per_round,
        tournament_size=cfg.ga.tournament_size,
        crossover_rate=cfg.ga.crossover_rate,
        mutation_rate=cfg.ga.mutation_rate,
        elite_count=cfg.ga.elite_count,
    )
    if cfg.num_processes > 1:
        return _minimize_parallel(loss_fn, genome_length, num_values, cfg,
                                  ga_config)

    populations: list[np.ndarray | None] = [None] * cfg.num_instances
    best_genome: np.ndarray | None = None
    best_loss = float("inf")
    retries_left = cfg.retry_rounds
    rounds: list[RoundRecord] = []
    total_evals = 0
    start_time = time.perf_counter()

    for _ in range(cfg.max_rounds):
        round_start = time.perf_counter()
        round_evals = 0
        pool: list[tuple[float, np.ndarray]] = []
        for i in range(cfg.num_instances):
            ga = GeneticAlgorithm(loss_fn, genome_length, num_values,
                                  config=ga_config, rng=rng, cache=cache)
            result = ga.run(initial_population=populations[i])
            round_evals += result.num_evaluations
            for j in range(min(cfg.top_k, len(result.population))):
                pool.append((float(result.losses[j]), result.population[j]))
            if result.best_loss < best_loss - 1e-12:
                pending_best = (result.best_loss, result.best_genome.copy())
                best_loss, best_genome = pending_best
        total_evals += round_evals
        rounds.append(RoundRecord(
            best_loss=best_loss,
            duration_seconds=time.perf_counter() - round_start,
            num_evaluations=round_evals))

        improved = len(rounds) < 2 or rounds[-1].best_loss < rounds[-2].best_loss - 1e-12
        if improved:
            retries_left = cfg.retry_rounds
        else:
            retries_left -= 1
            if retries_left < 0:
                break

        # Mix: shuffle the pooled elites into fresh seed populations,
        # topping up with brand-new random guesses (Figure 4, right side).
        pool_genomes = np.array([g for _, g in pool])
        draw = max(1, int(cfg.pool_fraction * cfg.population_size))
        for i in range(cfg.num_instances):
            take = min(draw, len(pool_genomes))
            picks = rng.choice(len(pool_genomes), size=take, replace=False)
            populations[i] = pool_genomes[picks].copy()

    return EngineResult(
        best_genome=best_genome, best_loss=best_loss, rounds=rounds,
        num_evaluations=total_evals,
        total_seconds=time.perf_counter() - start_time)


def _minimize_parallel(loss_fn, genome_length: int, num_values: int,
                       cfg: EngineConfig, ga_config: GAConfig) -> EngineResult:
    """Engine rounds with GA instances fanned out over worker processes.

    Requires ``loss_fn`` to be picklable (the package's loss objects are).
    Each instance gets its own deterministic seed stream from the engine
    seed, so parallel runs are reproducible against each other.
    """
    from concurrent.futures import ProcessPoolExecutor

    seed_seq = np.random.SeedSequence(cfg.seed)
    rng = np.random.default_rng(seed_seq.spawn(1)[0])
    populations: list[np.ndarray | None] = [None] * cfg.num_instances
    best_genome: np.ndarray | None = None
    best_loss = float("inf")
    retries_left = cfg.retry_rounds
    rounds: list[RoundRecord] = []
    total_evals = 0
    start_time = time.perf_counter()

    with ProcessPoolExecutor(max_workers=cfg.num_processes) as pool:
        for round_index in range(cfg.max_rounds):
            round_start = time.perf_counter()
            seeds = seed_seq.spawn(cfg.num_instances)
            jobs = [(loss_fn, genome_length, num_values, ga_config,
                     seeds[i], populations[i], cfg.top_k)
                    for i in range(cfg.num_instances)]
            outcomes = list(pool.map(_run_one_instance, jobs))
            round_evals = 0
            pool_entries: list[tuple[float, np.ndarray]] = []
            for top, instance_best, instance_genome, evals in outcomes:
                round_evals += evals
                pool_entries.extend(top)
                if instance_best < best_loss - 1e-12:
                    best_loss = instance_best
                    best_genome = instance_genome
            total_evals += round_evals
            rounds.append(RoundRecord(
                best_loss=best_loss,
                duration_seconds=time.perf_counter() - round_start,
                num_evaluations=round_evals))

            improved = (len(rounds) < 2
                        or rounds[-1].best_loss < rounds[-2].best_loss - 1e-12)
            if improved:
                retries_left = cfg.retry_rounds
            else:
                retries_left -= 1
                if retries_left < 0:
                    break

            pool_genomes = np.array([g for _, g in pool_entries])
            draw = max(1, int(cfg.pool_fraction * cfg.population_size))
            for i in range(cfg.num_instances):
                take = min(draw, len(pool_genomes))
                picks = rng.choice(len(pool_genomes), size=take, replace=False)
                populations[i] = pool_genomes[picks].copy()

    return EngineResult(
        best_genome=best_genome, best_loss=best_loss, rounds=rounds,
        num_evaluations=total_evals,
        total_seconds=time.perf_counter() - start_time)
