"""Optimizers: genetic algorithm, Figure-4 multi-GA engine, SPSA."""

from .genetic import GAConfig, GAResult, GeneticAlgorithm
from .engine import EngineConfig, EngineResult, RoundRecord, multi_ga_minimize
from .spsa import SPSAConfig, SPSAResult, minimize_spsa

__all__ = [
    "EngineConfig", "EngineResult", "GAConfig", "GAResult",
    "GeneticAlgorithm", "RoundRecord", "SPSAConfig", "SPSAResult",
    "minimize_spsa", "multi_ga_minimize",
]
