"""Integer-genome genetic algorithm (the package's PyGAD substitute).

Clapton and the CAFQA baselines search discrete spaces ``{0,1,2,3}^d``
(Sec. 4.1): genomes are integer vectors, fitness is the negated loss.  The
operator set matches what the paper's PyGAD configuration provides:
tournament selection, uniform crossover, per-gene random-reset mutation, and
elitism.  Loss evaluations are memoised because converging populations
re-propose identical genomes constantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass
class GAConfig:
    """Hyperparameters of one GA instance.

    Defaults follow the paper's working point (population |S| = 100); the
    generation count is supplied by the engine (its ``m``).
    """

    population_size: int = 100
    num_generations: int = 100
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float | None = None  # default: 1.5 / genome_length
    elite_count: int = 2


@dataclass
class GAResult:
    """Final state of a GA run, sorted best-first."""

    population: np.ndarray
    losses: np.ndarray
    best_genome: np.ndarray
    best_loss: float
    history: list[float] = field(default_factory=list)
    num_evaluations: int = 0


class GeneticAlgorithm:
    """Minimize ``loss_fn`` over integer genomes.

    Args:
        loss_fn: Maps a genome (1-D int array) to a float loss.
        genome_length: Number of genes.
        num_values: Genes take values ``0..num_values-1`` (4 throughout the
            paper: Clifford rotation levels / two-qubit slot choices).
        config: Hyperparameters.
        rng: Random generator (owned by the caller for reproducibility).
        cache: Optional shared memo table ``genome-bytes -> loss`` so that
            multiple GA instances in the engine never re-evaluate a genome.
    """

    def __init__(self, loss_fn: Callable[[np.ndarray], float],
                 genome_length: int, num_values: int = 4,
                 config: GAConfig | None = None,
                 rng: np.random.Generator | None = None,
                 cache: dict[bytes, float] | None = None):
        if genome_length < 1:
            raise ValueError("genome_length must be positive")
        self.loss_fn = loss_fn
        self.genome_length = genome_length
        self.num_values = num_values
        self.config = config or GAConfig()
        self.rng = rng or np.random.default_rng()
        self.cache = cache if cache is not None else {}
        self.num_evaluations = 0
        rate = self.config.mutation_rate
        self._mutation_rate = (min(1.0, 1.5 / genome_length)
                               if rate is None else rate)

    # ------------------------------------------------------------------
    # Population utilities
    # ------------------------------------------------------------------
    def random_population(self, size: int) -> np.ndarray:
        return self.rng.integers(0, self.num_values,
                                 size=(size, self.genome_length))

    def evaluate(self, genome: np.ndarray) -> float:
        key = np.ascontiguousarray(genome, dtype=np.int64).tobytes()
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = float(self.loss_fn(genome))
        self.cache[key] = value
        self.num_evaluations += 1
        return value

    def _evaluate_population(self, population: np.ndarray) -> np.ndarray:
        return np.array([self.evaluate(g) for g in population])

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _tournament_pick(self, losses: np.ndarray) -> int:
        contenders = self.rng.integers(0, len(losses),
                                       size=self.config.tournament_size)
        return int(contenders[np.argmin(losses[contenders])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray
                   ) -> np.ndarray:
        if self.rng.random() >= self.config.crossover_rate:
            return parent_a.copy()
        mask = self.rng.random(self.genome_length) < 0.5
        child = np.where(mask, parent_a, parent_b)
        return child

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        mask = self.rng.random(self.genome_length) < self._mutation_rate
        if mask.any():
            genome = genome.copy()
            genome[mask] = self.rng.integers(0, self.num_values,
                                             size=int(mask.sum()))
        return genome

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, initial_population: np.ndarray | None = None) -> GAResult:
        cfg = self.config
        if initial_population is None:
            population = self.random_population(cfg.population_size)
        else:
            population = np.asarray(initial_population, dtype=np.int64)
            if population.ndim != 2 or population.shape[1] != self.genome_length:
                raise ValueError("initial population has wrong shape")
            if len(population) < cfg.population_size:
                filler = self.random_population(
                    cfg.population_size - len(population))
                population = np.vstack([population, filler])
        losses = self._evaluate_population(population)
        history = [float(losses.min())]

        for _ in range(cfg.num_generations):
            order = np.argsort(losses)
            population = population[order]
            losses = losses[order]
            next_population = [population[i].copy()
                               for i in range(cfg.elite_count)]
            while len(next_population) < cfg.population_size:
                pa = population[self._tournament_pick(losses)]
                pb = population[self._tournament_pick(losses)]
                child = self._mutate(self._crossover(pa, pb))
                next_population.append(child)
            population = np.array(next_population)
            losses = self._evaluate_population(population)
            history.append(min(history[-1], float(losses.min())))

        order = np.argsort(losses)
        population = population[order]
        losses = losses[order]
        return GAResult(population=population, losses=losses,
                        best_genome=population[0].copy(),
                        best_loss=float(losses[0]), history=history,
                        num_evaluations=self.num_evaluations)
