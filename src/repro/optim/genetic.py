"""Integer-genome genetic algorithm (the package's PyGAD substitute).

Clapton and the CAFQA baselines search discrete spaces ``{0,1,2,3}^d``
(Sec. 4.1): genomes are integer vectors, fitness is the negated loss.  The
operator set matches what the paper's PyGAD configuration provides:
tournament selection, uniform crossover, per-gene random-reset mutation, and
elitism.  Loss evaluations are memoised through the shared
:class:`~repro.execution.cache.MemoizedLoss` wrapper (converging populations
re-propose identical genomes constantly), and each generation is evaluated
as **one batch**: the wrapper dedupes the population within the batch and
against the cache, then dispatches only the distinct misses -- through the
loss's population-batched ``evaluate_many`` when it provides one (all the
Clifford losses do), else one call per miss.  Values and evaluation counts
are bit-identical to the historical per-genome loop either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..execution.cache import MemoizedLoss, memoize_loss


@dataclass
class GAConfig:
    """Hyperparameters of one GA instance.

    Defaults follow the paper's working point (population |S| = 100); the
    generation count is supplied by the engine (its ``m``).
    """

    population_size: int = 100
    num_generations: int = 100
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float | None = None  # default: 1.5 / genome_length
    elite_count: int = 2


@dataclass
class GAResult:
    """Final state of a GA run, sorted best-first."""

    population: np.ndarray
    losses: np.ndarray
    best_genome: np.ndarray
    best_loss: float
    history: list[float] = field(default_factory=list)
    num_evaluations: int = 0
    cache_hits: int = 0
    cache_dedups: int = 0


class GeneticAlgorithm:
    """Minimize ``loss_fn`` over integer genomes.

    Args:
        loss_fn: Maps a genome (1-D int array) to a float loss.  A loss
            exposing a population-batched ``evaluate_many(genomes)`` is
            dispatched one deduped batch per generation instead of one
            call per genome.
        genome_length: Number of genes.
        num_values: Genes take values ``0..num_values-1`` (4 throughout the
            paper: Clifford rotation levels / two-qubit slot choices).
        config: Hyperparameters.
        rng: Random generator (owned by the caller for reproducibility).
        cache: Optional shared memo table ``genome-bytes -> loss`` so that
            multiple GA instances in the engine never re-evaluate a genome.
            Memoisation always goes through one
            :class:`~repro.execution.cache.MemoizedLoss` wrapper (adopted
            when ``loss_fn`` already is one and no separate ``cache`` is
            supplied), so hit/miss accounting has exactly one home.
    """

    def __init__(self, loss_fn: Callable[[np.ndarray], float],
                 genome_length: int, num_values: int = 4,
                 config: GAConfig | None = None,
                 rng: np.random.Generator | None = None,
                 cache: dict[bytes, float] | None = None):
        if genome_length < 1:
            raise ValueError("genome_length must be positive")
        self.loss_fn = loss_fn
        if isinstance(loss_fn, MemoizedLoss) and (cache is None
                                                  or cache is loss_fn.cache):
            self._memo = loss_fn
        else:
            self._memo = memoize_loss(loss_fn, cache)
        self.cache = self._memo.cache
        self._misses_at_start = self._memo.misses
        self._hits_at_start = self._memo.hits
        self._dedups_at_start = self._memo.dedups
        self.genome_length = genome_length
        self.num_values = num_values
        self.config = config or GAConfig()
        self.rng = rng or np.random.default_rng()
        rate = self.config.mutation_rate
        self._mutation_rate = (min(1.0, 1.5 / genome_length)
                               if rate is None else rate)

    @property
    def num_evaluations(self) -> int:
        """Distinct loss evaluations this instance paid (cache misses)."""
        return self._memo.misses - self._misses_at_start

    @property
    def cache_hits(self) -> int:
        """Lookups this instance served from the shared memo table."""
        return self._memo.hits - self._hits_at_start

    @property
    def cache_dedups(self) -> int:
        """Within-batch duplicates collapsed by this instance's batches."""
        return self._memo.dedups - self._dedups_at_start

    # ------------------------------------------------------------------
    # Population utilities
    # ------------------------------------------------------------------
    def random_population(self, size: int) -> np.ndarray:
        return self.rng.integers(0, self.num_values,
                                 size=(size, self.genome_length))

    def evaluate(self, genome: np.ndarray) -> float:
        return self._memo(genome)

    def _evaluate_population(self, population: np.ndarray) -> np.ndarray:
        return self._memo.evaluate_many(population)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _tournament_pick(self, losses: np.ndarray) -> int:
        contenders = self.rng.integers(0, len(losses),
                                       size=self.config.tournament_size)
        return int(contenders[np.argmin(losses[contenders])])

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray
                   ) -> np.ndarray:
        if self.rng.random() >= self.config.crossover_rate:
            return parent_a.copy()
        mask = self.rng.random(self.genome_length) < 0.5
        child = np.where(mask, parent_a, parent_b)
        return child

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        mask = self.rng.random(self.genome_length) < self._mutation_rate
        if mask.any():
            genome = genome.copy()
            genome[mask] = self.rng.integers(0, self.num_values,
                                             size=int(mask.sum()))
        return genome

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, initial_population: np.ndarray | None = None) -> GAResult:
        cfg = self.config
        if initial_population is None:
            population = self.random_population(cfg.population_size)
        else:
            population = np.asarray(initial_population, dtype=np.int64)
            if population.ndim != 2 or population.shape[1] != self.genome_length:
                raise ValueError("initial population has wrong shape")
            if len(population) < cfg.population_size:
                filler = self.random_population(
                    cfg.population_size - len(population))
                population = np.vstack([population, filler])
        losses = self._evaluate_population(population)
        history = [float(losses.min())]

        for _ in range(cfg.num_generations):
            order = np.argsort(losses)
            population = population[order]
            losses = losses[order]
            next_population = [population[i].copy()
                               for i in range(cfg.elite_count)]
            while len(next_population) < cfg.population_size:
                pa = population[self._tournament_pick(losses)]
                pb = population[self._tournament_pick(losses)]
                child = self._mutate(self._crossover(pa, pb))
                next_population.append(child)
            population = np.array(next_population)
            losses = self._evaluate_population(population)
            history.append(min(history[-1], float(losses.min())))

        order = np.argsort(losses)
        population = population[order]
        losses = losses[order]
        return GAResult(population=population, losses=losses,
                        best_genome=population[0].copy(),
                        best_loss=float(losses[0]), history=history,
                        num_evaluations=self.num_evaluations,
                        cache_hits=self.cache_hits,
                        cache_dedups=self.cache_dedups)
