"""Problem bundle shared by Clapton and the CAFQA baselines.

Collects what every method needs: the logical Hamiltonian, the (possibly
transpiled) VQE ansatz, the theta = 0 Clifford skeleton, the logical-to-
register qubit positions, and the device noise model on that register.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.backend import Backend
from ..circuits.ansatz import (
    drop_identity_rotations,
    hardware_efficient_ansatz,
    num_transformation_parameters,
)
from ..circuits.circuit import Circuit
from ..noise.model import NoiseModel
from ..paulis.pauli_sum import PauliSum
from ..transpiler.transpile import TranspileResult, transpile
from .transformation import embed_table


@dataclass
class VQEProblem:
    """One VQE instance, ready for initialization-method optimization.

    Attributes:
        hamiltonian: Logical problem ``H`` on ``N`` qubits.
        eval_ansatz: Parameterized ansatz on the evaluation register (the
            transpiled ``A'`` when a backend is involved, the logical ``A``
            otherwise); ``4N`` symbolic parameters.
        positions: ``positions[q]`` is the evaluation-register index holding
            logical qubit ``q`` at measurement time (the transpiler's final
            layout; identity when untranspiled).
        noise_model: Device model on the evaluation register.
        hardware_noise_model: Optional second model used only for "real
            hardware" evaluation (the hanoi twin); ``None`` elsewhere.
        entanglement: Ansatz entanglement pattern.
        transpiled: The full transpile result when a backend was used.
    """

    hamiltonian: PauliSum
    eval_ansatz: Circuit
    positions: list[int]
    noise_model: NoiseModel
    hardware_noise_model: NoiseModel | None = None
    entanglement: str = "circular"
    transpiled: TranspileResult | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_backend(cls, hamiltonian: PauliSum, backend: Backend,
                     entanglement: str = "circular",
                     layout: list[int] | None = None,
                     hardware: Backend | None = None) -> "VQEProblem":
        """Transpile the ansatz onto a backend (the paper's main flow).

        Args:
            hamiltonian: Logical problem.
            backend: Device whose *calibration model* the optimization sees.
            entanglement: Ansatz entanglement pattern.
            layout: Optional explicit initial placement.
            hardware: Optional "actual device" (typically
                ``backend.hardware_twin()``); its jittered rates and
                unmodeled coherent errors define the hardware evaluation
                tier, reproducing the paper's hanoi experiments.
        """
        ansatz = hardware_efficient_ansatz(hamiltonian.num_qubits, entanglement)
        result = transpile(ansatz, backend, layout=layout)
        hardware_nm = None
        if hardware is not None:
            hardware_nm = hardware.twin_noise_model(result.physical_qubits)
        elif backend.is_hardware:
            hardware_nm = backend.twin_noise_model(result.physical_qubits)
        return cls(
            hamiltonian=hamiltonian,
            eval_ansatz=result.circuit,
            positions=[result.final_layout[q]
                       for q in range(hamiltonian.num_qubits)],
            noise_model=result.noise_model(),
            hardware_noise_model=hardware_nm,
            entanglement=entanglement,
            transpiled=result,
        )

    @classmethod
    def logical(cls, hamiltonian: PauliSum,
                noise_model: NoiseModel | None = None,
                entanglement: str = "circular") -> "VQEProblem":
        """Untranspiled problem (Fig. 7/8 sweeps, Fig. 9 scaling study)."""
        n = hamiltonian.num_qubits
        if noise_model is None:
            noise_model = NoiseModel.noiseless(n)
        if noise_model.num_qubits != n:
            raise ValueError("noise model width must match the Hamiltonian")
        return cls(
            hamiltonian=hamiltonian,
            eval_ansatz=hardware_efficient_ansatz(n, entanglement),
            positions=list(range(n)),
            noise_model=noise_model,
            entanglement=entanglement,
        )

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    @property
    def num_logical_qubits(self) -> int:
        return self.hamiltonian.num_qubits

    @property
    def num_eval_qubits(self) -> int:
        return self.eval_ansatz.num_qubits

    @property
    def num_vqe_parameters(self) -> int:
        return self.eval_ansatz.num_parameters

    @property
    def num_transformation_parameters(self) -> int:
        return num_transformation_parameters(self.num_logical_qubits,
                                              self.entanglement)

    def skeleton(self) -> Circuit:
        """``A'(0)``: the bound, identity-free Clifford skeleton."""
        zero = np.zeros(self.eval_ansatz.num_parameters)
        return drop_identity_rotations(self.eval_ansatz.bind(zero))

    def bound_ansatz(self, theta) -> Circuit:
        """``A'(theta)`` with exact-identity rotations removed."""
        return drop_identity_rotations(self.eval_ansatz.bind(theta))

    def mapped_hamiltonian(self) -> PauliSum:
        """The logical Hamiltonian re-indexed onto the evaluation register."""
        table = embed_table(self.hamiltonian.table, self.positions,
                            self.num_eval_qubits)
        return PauliSum(table, self.hamiltonian.coefficients.copy())
