"""Three-tier evaluation of initialization results (Figure 5's markers).

For an initial point the paper reports three energies:

1. noise-free (diamond) -- exact stabilizer evaluation, the algorithmic
   lower bound every method optimizes against;
2. Clifford noise model (circle) -- what Clapton/nCAFQA's L_N sees;
3. device model or hardware (x) -- full density-matrix evolution with
   non-Clifford relaxation (and, for hardware twins, parameters the
   optimizer never saw).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..densesim.evaluator import noisy_energy
from ..noise.clifford_model import CliffordNoiseModel
from ..stabilizer.simulator import clifford_state_expectation
from .clapton import InitializationResult


@dataclass
class PointEvaluation:
    """Energies of one prepared state under the three noise tiers."""

    noiseless: float
    clifford_model: float
    device_model: float
    hardware: float | None = None

    def model_gap(self) -> float:
        """|clifford model - device model|: the discrepancy the paper shows
        shrinking under Clapton (Fig. 2)."""
        return abs(self.clifford_model - self.device_model)


def evaluate_initial_point(result: InitializationResult,
                           include_hardware: bool = True) -> PointEvaluation:
    """Evaluate an initialization under all available noise tiers."""
    problem = result.problem
    circuit = result.initial_circuit()
    observable = result.initial_observable()
    noiseless = clifford_state_expectation(circuit, observable)
    clifford_model = CliffordNoiseModel(problem.noise_model) \
        .noisy_zero_state_energy(circuit, observable)
    device_model = noisy_energy(circuit, observable, problem.noise_model)
    hardware = None
    if include_hardware and problem.hardware_noise_model is not None:
        hardware = noisy_energy(circuit, observable,
                                problem.hardware_noise_model)
    return PointEvaluation(noiseless=noiseless,
                           clifford_model=clifford_model,
                           device_model=device_model,
                           hardware=hardware)
