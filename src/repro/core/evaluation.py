"""Three-tier evaluation of initialization results (Figure 5's markers).

For an initial point the paper reports three energies:

1. noise-free (diamond) -- exact stabilizer evaluation, the algorithmic
   lower bound every method optimizes against;
2. Clifford noise model (circle) -- what Clapton/nCAFQA's L_N sees;
3. device model or hardware (x) -- full density-matrix evolution with
   non-Clifford relaxation (and, for hardware twins, parameters the
   optimizer never saw).

With a mitigation strategy (``repro.mitigation``), the noisy tiers (device
model and hardware) are re-estimated through the wrapped estimator --
folded-scale batches, extrapolation, readout inversion -- while the
noiseless and Clifford-model tiers stay raw, since mitigation acts on
measured energies, not on the optimizer's internal cost.  The raw device
energy is kept alongside (``device_model_raw``) so reports can show the
mitigation delta.  ``mitigation="none"`` (the default) takes the original
code path untouched and is bit-identical to pre-mitigation runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as _dc_replace

import numpy as np

from ..densesim.evaluator import noisy_energy
from ..noise.clifford_model import CliffordNoiseModel
from ..stabilizer.simulator import clifford_state_expectation
from .clapton import InitializationResult


@dataclass
class PointEvaluation:
    """Energies of one prepared state under the three noise tiers.

    Attributes:
        noiseless / clifford_model / device_model / hardware: The paper's
            tiers.  Under a mitigation strategy, ``device_model`` and
            ``hardware`` are the *mitigated* estimates.
        device_model_raw: The unmitigated device-model energy when a
            mitigation strategy re-estimated ``device_model``; ``None``
            otherwise (then ``device_model`` *is* the raw value).
    """

    noiseless: float
    clifford_model: float
    device_model: float
    hardware: float | None = None
    device_model_raw: float | None = None

    def model_gap(self) -> float:
        """|clifford model - device model|: the discrepancy the paper shows
        shrinking under Clapton (Fig. 2)."""
        return abs(self.clifford_model - self.device_model)


def _mitigated_energy(result: InitializationResult, circuit, observable,
                      noise_model, strategy) -> float:
    """Device-tier energy through a wrapped estimator.

    The estimator is built over the *bound* initial circuit (a zero-
    parameter template), which keeps custom-``init_circuit`` methods and
    theta-based methods on one uniform path and lets ZNE fold the exact
    prepared circuit.
    """
    from ..execution.estimator import ExactEstimator

    problem = _dc_replace(result.problem, eval_ansatz=circuit)
    estimator = strategy.wrap(
        ExactEstimator(problem, observable, noise_model=noise_model))
    return float(estimator.energy(np.zeros(0)))


def evaluate_initial_point(result: InitializationResult,
                           include_hardware: bool = True,
                           mitigation=None) -> PointEvaluation:
    """Evaluate an initialization under all available noise tiers.

    Args:
        result: The initialization to evaluate.
        include_hardware: Also evaluate the hardware twin when present.
        mitigation: Registered mitigation name, ``"zne:folds=3|readout"``
            spec, or strategy instance applied to the noisy tiers; ``None``
            falls back to the mitigation recorded on ``result`` (if any),
            then to ``"none"``.
    """
    from ..mitigation import resolve_mitigation

    problem = result.problem
    circuit = result.initial_circuit()
    observable = result.initial_observable()
    noiseless = clifford_state_expectation(circuit, observable)
    clifford_model = CliffordNoiseModel(problem.noise_model) \
        .noisy_zero_state_energy(circuit, observable)
    device_model = noisy_energy(circuit, observable, problem.noise_model)
    hardware = None
    if include_hardware and problem.hardware_noise_model is not None:
        hardware = noisy_energy(circuit, observable,
                                problem.hardware_noise_model)

    if mitigation is None:
        mitigation = getattr(result, "mitigation", None)
    strategy = resolve_mitigation(mitigation)
    device_model_raw = None
    if strategy.name != "none":
        device_model_raw = device_model
        device_model = _mitigated_energy(
            result, circuit, observable, problem.noise_model, strategy)
        if hardware is not None:
            hardware = _mitigated_energy(
                result, circuit, observable, problem.hardware_noise_model,
                strategy)
    return PointEvaluation(noiseless=noiseless,
                           clifford_model=clifford_model,
                           device_model=device_model,
                           hardware=hardware,
                           device_model_raw=device_model_raw)
