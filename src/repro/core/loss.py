"""The cost functions of Clapton, CAFQA, and noise-aware CAFQA (Sec. 4.1, 5.2).

* Clapton:  ``L(gamma) = L_N(gamma) + L_0(gamma)`` over transformation
  genomes ``gamma in {0,1,2,3}^{5N}``; the Hamiltonian moves, the circuit is
  the fixed skeleton ``A'(0)``.
* CAFQA:    ``L(theta) = L_0(theta)`` over Clifford rotation genomes
  ``theta in {0,1,2,3}^{4N}`` (angles ``theta * pi/2``); the circuit moves,
  the Hamiltonian is fixed, and there is no noise term (its blind spot).
* nCAFQA:   ``L(theta) = L_N(theta) + L_0(theta)`` -- CAFQA plus this
  work's noise modeling, isolating the value of the *transformation* step
  when compared against Clapton.

Both noise-aware losses evaluate L_N with the exact Pauli-channel Clifford
noise model on the transpiled circuit; both L_0 terms are exact noiseless
stabilizer evaluations.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits.ansatz import cafqa_angles
from ..noise.clifford_model import CliffordCircuitPlan, CliffordNoiseModel
from ..obs import REGISTRY, get_tracer
from .problem import VQEProblem
from .transformation import embed_table, transform_table, transform_table_many

_LOSS_BATCHES = REGISTRY.counter(
    "repro_loss_batches_total", "Batched loss evaluate_many calls")
_LOSS_EVALS = REGISTRY.counter(
    "repro_loss_evaluations_total",
    "Genomes evaluated through batched losses")


class ClaptonLoss:
    """``gamma -> L_N + L_0`` for the Clapton transformation search.

    Args:
        problem: The VQE problem bundle.
        clifford_model: Noise model projection used for L_N (defaults to the
            paper's depolarizing + readout model on the problem's device).
        noisy_weight / noiseless_weight: Term weights; the paper uses 1 + 1,
            the ablation bench sweeps them.
        packed: Run the conjugation/walk on the word-packed Pauli layout
            (default).  ``packed=False`` keeps the boolean-matrix oracle;
            both produce bit-identical losses.
    """

    def __init__(self, problem: VQEProblem,
                 clifford_model: CliffordNoiseModel | None = None,
                 noisy_weight: float = 1.0, noiseless_weight: float = 1.0,
                 packed: bool = True):
        self.problem = problem
        self.clifford_model = clifford_model or CliffordNoiseModel(
            problem.noise_model)
        self.noisy_weight = noisy_weight
        self.noiseless_weight = noiseless_weight
        self.packed = packed
        self._skeleton = problem.skeleton()

    def components(self, gamma) -> tuple[float, float]:
        """``(L_N, L_0)`` at a transformation genome."""
        problem = self.problem
        table = transform_table(problem.hamiltonian, gamma,
                                problem.entanglement, packed=self.packed)
        coeffs = problem.hamiltonian.coefficients
        noiseless = float(coeffs @ table.expectation_all_zeros())
        eval_table = embed_table(table, problem.positions,
                                 problem.num_eval_qubits)
        noisy = self.clifford_model.noisy_zero_state_energy_table(
            self._skeleton, eval_table, coeffs)
        return noisy, noiseless

    def __call__(self, gamma) -> float:
        noisy, noiseless = self.components(gamma)
        return self.noisy_weight * noisy + self.noiseless_weight * noiseless

    def components_many(self, gammas) -> tuple[np.ndarray, np.ndarray]:
        """``(L_N, L_0)`` arrays for a whole ``(P, d)`` genome population.

        One stacked ``(P*M, n)`` transformation pass plus one stacked
        backward noise walk through the shared skeleton replace ``P``
        per-genome circuit rebuilds; per-genome values are bit-identical
        to :meth:`components`.
        """
        problem = self.problem
        coeffs = problem.hamiltonian.coefficients
        num_terms = len(coeffs)
        stacked = transform_table_many(problem.hamiltonian,
                                       np.asarray(gammas, dtype=np.int64),
                                       problem.entanglement,
                                       packed=self.packed)
        num_genomes = stacked.num_rows // num_terms
        zeros = stacked.expectation_all_zeros()
        noiseless = np.array(
            [float(coeffs @ zeros[p * num_terms:(p + 1) * num_terms])
             for p in range(num_genomes)])
        eval_stack = embed_table(stacked, problem.positions,
                                 problem.num_eval_qubits)
        values = self.clifford_model.noisy_zero_state_term_values(
            self._skeleton, eval_stack)
        noisy = np.array(
            [float(coeffs @ values[p * num_terms:(p + 1) * num_terms])
             for p in range(num_genomes)])
        return noisy, noiseless

    def evaluate_many(self, gammas) -> np.ndarray:
        """``(P,)`` losses of a genome population in one batched pass."""
        gammas = np.asarray(gammas, dtype=np.int64)
        with get_tracer().span("loss.evaluate_many", loss="clapton",
                               batch=len(gammas),
                               qubits=self.problem.num_logical_qubits):
            noisy, noiseless = self.components_many(gammas)
        _LOSS_BATCHES.inc()
        _LOSS_EVALS.inc(len(gammas))
        return self.noisy_weight * noisy + self.noiseless_weight * noiseless


class CafqaLoss:
    """``theta-genome -> L_0`` (CAFQA) or ``L_N + L_0`` (nCAFQA).

    Genomes have length ``4N`` with values 0..3 encoding rotation angles
    ``k * pi/2``.  The noiseless term always uses the *logical* ansatz (the
    algorithmic quantity CAFQA optimizes); the noisy term, when enabled,
    uses the transpiled circuit exactly like Clapton's L_N.
    """

    def __init__(self, problem: VQEProblem, noise_aware: bool = False,
                 clifford_model: CliffordNoiseModel | None = None,
                 packed: bool = True):
        self.problem = problem
        self.noise_aware = noise_aware
        self.clifford_model = clifford_model or CliffordNoiseModel(
            problem.noise_model)
        self.packed = packed
        from ..circuits.ansatz import hardware_efficient_ansatz

        self._logical_ansatz = hardware_efficient_ansatz(
            problem.num_logical_qubits, problem.entanglement)
        self._mapped = problem.mapped_hamiltonian()
        self._logical_plan: CliffordCircuitPlan | None = None
        self._eval_plan: CliffordCircuitPlan | None = None
        if packed:
            from ..paulis.packed_table import PackedPauliTable

            # packed masters, packed once and tiled/copied per evaluation
            self._ham_master = PackedPauliTable.from_table(
                problem.hamiltonian.table)
            self._mapped_master = PackedPauliTable.from_table(
                self._mapped.table)
        else:
            self._ham_master = problem.hamiltonian.table
            self._mapped_master = self._mapped.table

    def components(self, genome) -> tuple[float, float]:
        problem = self.problem
        theta = cafqa_angles(genome)
        from ..circuits.ansatz import drop_identity_rotations
        from ..noise.clifford_model import _inverse_gate_tableau
        from ..stabilizer.tableau import apply_gate_to_table

        logical_circuit = drop_identity_rotations(
            self._logical_ansatz.bind(theta))
        # <0|A† H A|0>: pull every term backward through the bound ansatz
        conj = self._ham_master.copy()
        for inst in reversed(logical_circuit.instructions):
            apply_gate_to_table(conj, _inverse_gate_tableau(inst), inst.qubits)
        noiseless = float(problem.hamiltonian.coefficients
                          @ conj.expectation_all_zeros())
        if not self.noise_aware:
            return 0.0, noiseless
        bound = problem.bound_ansatz(theta)
        noisy = self.clifford_model.noisy_zero_state_energy_table(
            bound, self._mapped_master, self._mapped.coefficients)
        return noisy, noiseless

    def __call__(self, genome) -> float:
        noisy, noiseless = self.components(genome)
        return noisy + noiseless

    def components_many(self, genomes) -> tuple[np.ndarray, np.ndarray]:
        """``(L_N, L_0)`` arrays for a whole ``(P, d)`` genome population.

        The population's Pauli tables are stacked into one ``(P*M, n)``
        bit tensor and conjugated through per-genome row masks (grouped by
        rotation level per ansatz slot); the noisy term, when enabled,
        runs the same stacked backward walk through the transpiled
        circuit's noise locations.  Per-genome values are bit-identical
        to :meth:`components`.
        """
        from ..noise.clifford_model import _inverse_gate_tableau
        from ..stabilizer.tableau import apply_gate_to_table

        genomes = np.asarray(genomes, dtype=np.int64)
        if genomes.ndim != 2:
            raise ValueError("genomes must be a (P, d) integer matrix")
        if np.any((genomes < 0) | (genomes > 3)):
            raise ValueError("genome entries must be in {0, 1, 2, 3}")
        thetas = genomes * (math.pi / 2)
        problem = self.problem
        num_genomes = len(genomes)
        coeffs = problem.hamiltonian.coefficients
        num_terms = len(coeffs)
        if self._logical_plan is None:
            self._logical_plan = CliffordCircuitPlan(self._logical_ansatz)
        conj = self._ham_master.tile(num_genomes)
        if self.packed:
            import time as _time

            from ..obs.kernel import KERNEL
            from ..stabilizer.tableau import apply_gate_levels_to_table

            tracer = get_tracer()
            before = KERNEL.snapshot() if tracer.enabled else None
            t0 = _time.perf_counter() if tracer.enabled else 0.0
            # packed fast path: each rotation slot's angle groups fuse
            # into one unmasked leveled-LUT pass (bit-identical per row)
            for item in self._logical_plan.reverse_leveled_schedule(
                    thetas, num_terms):
                if item[0] == "gate":
                    _, inst, rows = item
                    apply_gate_to_table(conj, _inverse_gate_tableau(inst),
                                        inst.qubits, rows=rows)
                else:
                    _, bound_insts, qubits, level_of_row = item
                    entries = [None] + [(_inverse_gate_tableau(b), False)
                                        for b in bound_insts]
                    apply_gate_levels_to_table(conj, entries, qubits,
                                               level_of_row)
            if before is not None:
                # one aggregated kernel event per batched plan walk
                delta = KERNEL.delta(before)
                tracer.event("kernel.fused_levels",
                             _time.perf_counter() - t0,
                             words=delta["words"], rows=delta["rows"],
                             passes=delta["fused_passes"])
        else:
            for inst, rows in self._logical_plan.reverse_schedule(thetas,
                                                                  num_terms):
                apply_gate_to_table(conj, _inverse_gate_tableau(inst),
                                    inst.qubits, rows=rows)
        zeros = conj.expectation_all_zeros()
        noiseless = np.array(
            [float(coeffs @ zeros[p * num_terms:(p + 1) * num_terms])
             for p in range(num_genomes)])
        if not self.noise_aware:
            return np.zeros(num_genomes), noiseless
        mapped = self._mapped
        if self._eval_plan is None:
            self._eval_plan = CliffordCircuitPlan(problem.eval_ansatz)
        schedule = self._eval_plan.reverse_schedule(thetas,
                                                    mapped.table.num_rows)
        values = self.clifford_model.noisy_zero_state_term_values_steps(
            schedule, self._mapped_master.tile(num_genomes))
        rows_per = mapped.table.num_rows
        noisy = np.array(
            [float(mapped.coefficients @ values[p * rows_per:
                                                (p + 1) * rows_per])
             for p in range(num_genomes)])
        return noisy, noiseless

    def evaluate_many(self, genomes) -> np.ndarray:
        """``(P,)`` losses of a genome population in one batched pass."""
        genomes = np.asarray(genomes, dtype=np.int64)
        with get_tracer().span(
                "loss.evaluate_many",
                loss="ncafqa" if self.noise_aware else "cafqa",
                batch=len(genomes),
                qubits=self.problem.num_logical_qubits):
            noisy, noiseless = self.components_many(genomes)
        _LOSS_BATCHES.inc()
        _LOSS_EVALS.inc(len(genomes))
        return noisy + noiseless


class NcafqaLoss(CafqaLoss):
    """``theta-genome -> L_N + L_0``: CAFQA's search under this work's
    noise modeling (Sec. 5.2), as a named loss.

    Identical to ``CafqaLoss(problem, noise_aware=True)``; exists so the
    three methods of the paper each have a first-class loss type with the
    same batched :meth:`~CafqaLoss.evaluate_many` surface.
    """

    def __init__(self, problem: VQEProblem,
                 clifford_model: CliffordNoiseModel | None = None,
                 packed: bool = True):
        super().__init__(problem, noise_aware=True,
                         clifford_model=clifford_model, packed=packed)
