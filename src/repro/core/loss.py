"""The cost functions of Clapton, CAFQA, and noise-aware CAFQA (Sec. 4.1, 5.2).

* Clapton:  ``L(gamma) = L_N(gamma) + L_0(gamma)`` over transformation
  genomes ``gamma in {0,1,2,3}^{5N}``; the Hamiltonian moves, the circuit is
  the fixed skeleton ``A'(0)``.
* CAFQA:    ``L(theta) = L_0(theta)`` over Clifford rotation genomes
  ``theta in {0,1,2,3}^{4N}`` (angles ``theta * pi/2``); the circuit moves,
  the Hamiltonian is fixed, and there is no noise term (its blind spot).
* nCAFQA:   ``L(theta) = L_N(theta) + L_0(theta)`` -- CAFQA plus this
  work's noise modeling, isolating the value of the *transformation* step
  when compared against Clapton.

Both noise-aware losses evaluate L_N with the exact Pauli-channel Clifford
noise model on the transpiled circuit; both L_0 terms are exact noiseless
stabilizer evaluations.
"""

from __future__ import annotations



from ..circuits.ansatz import cafqa_angles
from ..noise.clifford_model import CliffordNoiseModel
from .problem import VQEProblem
from .transformation import embed_table, transform_table


class ClaptonLoss:
    """``gamma -> L_N + L_0`` for the Clapton transformation search.

    Args:
        problem: The VQE problem bundle.
        clifford_model: Noise model projection used for L_N (defaults to the
            paper's depolarizing + readout model on the problem's device).
        noisy_weight / noiseless_weight: Term weights; the paper uses 1 + 1,
            the ablation bench sweeps them.
    """

    def __init__(self, problem: VQEProblem,
                 clifford_model: CliffordNoiseModel | None = None,
                 noisy_weight: float = 1.0, noiseless_weight: float = 1.0):
        self.problem = problem
        self.clifford_model = clifford_model or CliffordNoiseModel(
            problem.noise_model)
        self.noisy_weight = noisy_weight
        self.noiseless_weight = noiseless_weight
        self._skeleton = problem.skeleton()

    def components(self, gamma) -> tuple[float, float]:
        """``(L_N, L_0)`` at a transformation genome."""
        problem = self.problem
        table = transform_table(problem.hamiltonian, gamma,
                                problem.entanglement)
        coeffs = problem.hamiltonian.coefficients
        noiseless = float(coeffs @ table.expectation_all_zeros())
        eval_table = embed_table(table, problem.positions,
                                 problem.num_eval_qubits)
        noisy = self.clifford_model.noisy_zero_state_energy_table(
            self._skeleton, eval_table, coeffs)
        return noisy, noiseless

    def __call__(self, gamma) -> float:
        noisy, noiseless = self.components(gamma)
        return self.noisy_weight * noisy + self.noiseless_weight * noiseless


class CafqaLoss:
    """``theta-genome -> L_0`` (CAFQA) or ``L_N + L_0`` (nCAFQA).

    Genomes have length ``4N`` with values 0..3 encoding rotation angles
    ``k * pi/2``.  The noiseless term always uses the *logical* ansatz (the
    algorithmic quantity CAFQA optimizes); the noisy term, when enabled,
    uses the transpiled circuit exactly like Clapton's L_N.
    """

    def __init__(self, problem: VQEProblem, noise_aware: bool = False,
                 clifford_model: CliffordNoiseModel | None = None):
        self.problem = problem
        self.noise_aware = noise_aware
        self.clifford_model = clifford_model or CliffordNoiseModel(
            problem.noise_model)
        from ..circuits.ansatz import hardware_efficient_ansatz

        self._logical_ansatz = hardware_efficient_ansatz(
            problem.num_logical_qubits, problem.entanglement)
        self._mapped = problem.mapped_hamiltonian()

    def components(self, genome) -> tuple[float, float]:
        problem = self.problem
        theta = cafqa_angles(genome)
        from ..circuits.ansatz import drop_identity_rotations
        from ..noise.clifford_model import _inverse_gate_tableau
        from ..stabilizer.tableau import apply_gate_to_table

        logical_circuit = drop_identity_rotations(
            self._logical_ansatz.bind(theta))
        # <0|A† H A|0>: pull every term backward through the bound ansatz
        conj = problem.hamiltonian.table.copy()
        for inst in reversed(logical_circuit.instructions):
            apply_gate_to_table(conj, _inverse_gate_tableau(inst), inst.qubits)
        noiseless = float(problem.hamiltonian.coefficients
                          @ conj.expectation_all_zeros())
        if not self.noise_aware:
            return 0.0, noiseless
        bound = problem.bound_ansatz(theta)
        noisy = self.clifford_model.noisy_zero_state_energy_table(
            bound, self._mapped.table, self._mapped.coefficients)
        return noisy, noiseless

    def __call__(self, genome) -> float:
        noisy, noiseless = self.components(genome)
        return noisy + noiseless
