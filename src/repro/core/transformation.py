"""The Clapton problem transformation (Sec. 3.2).

A genome ``gamma`` decodes to a Clifford circuit ``C(gamma)``; the VQE
problem transforms by anticonjugation, ``H -> H(gamma) = C†(gamma) H C(gamma)``
(Eq. 5/6), with conjugation signs absorbed into the coefficients so the
transformed problem is again a plain weighted Pauli sum -- directly
implementable in the VQE framework, as the paper emphasizes.
"""

from __future__ import annotations

import numpy as np

from ..circuits.ansatz import clapton_transformation_circuit
from ..circuits.circuit import Circuit
from ..paulis.pauli_sum import PauliSum
from ..paulis.table import PauliTable
from ..stabilizer.tableau import CliffordTableau


def transformation_tableau(gamma, num_qubits: int,
                           entanglement: str = "circular") -> CliffordTableau:
    """Tableau of ``C†(gamma)`` (the anticonjugation direction)."""
    circuit = clapton_transformation_circuit(gamma, num_qubits, entanglement)
    return CliffordTableau.from_circuit(circuit.inverse())


def transform_table(hamiltonian: PauliSum, gamma,
                    entanglement: str = "circular") -> PauliTable:
    """Anticonjugated term table (rows carry +-1 signs; hot-loop form).

    Applies the inverse transformation circuit gate by gate through the
    LUT-based batch conjugation -- the fastest path for the GA inner loop.
    """
    from ..noise.clifford_model import _inverse_gate_tableau
    from ..stabilizer.tableau import apply_gate_to_table

    circuit = clapton_transformation_circuit(gamma, hamiltonian.num_qubits,
                                             entanglement)
    table = hamiltonian.table.copy()
    # C† P C: pull P through the inverse circuit's gates front to back
    for inst in reversed(circuit.instructions):
        apply_gate_to_table(table, _inverse_gate_tableau(inst), inst.qubits)
    return table


def transform_hamiltonian(hamiltonian: PauliSum, gamma,
                          entanglement: str = "circular") -> PauliSum:
    """The transformed problem ``H(gamma)`` as a canonical PauliSum."""
    table = transform_table(hamiltonian, gamma, entanglement)
    return PauliSum(table, hamiltonian.coefficients.copy())


def untransform_state_circuit(gamma, num_qubits: int, vqe_circuit: Circuit,
                              entanglement: str = "circular") -> Circuit:
    """Circuit preparing the *original*-problem state from a post-Clapton one.

    Running VQE on ``H(gamma)`` produces ``|psi_hat> = A(theta)|0>``; the
    equivalent state for the original ``H`` is ``C(gamma)|psi_hat>``
    (Sec. 3.2), so the returned circuit is ``A(theta)`` followed by
    ``C(gamma)`` -- cheap to realize in experiment because ``C`` uses only
    1- and 2-qubit Clifford gates.
    """
    transform = clapton_transformation_circuit(gamma, num_qubits, entanglement)
    return vqe_circuit.compose(transform)


def embed_table(table: PauliTable, positions: list[int], num_qubits: int
                ) -> PauliTable:
    """Scatter table columns onto a wider register (logical -> physical)."""
    m = table.num_rows
    x = np.zeros((m, num_qubits), dtype=bool)
    z = np.zeros((m, num_qubits), dtype=bool)
    for logical, target in enumerate(positions):
        x[:, target] = table.x[:, logical]
        z[:, target] = table.z[:, logical]
    return PauliTable(x, z, table.phase_exp.copy())
