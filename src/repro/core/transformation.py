"""The Clapton problem transformation (Sec. 3.2).

A genome ``gamma`` decodes to a Clifford circuit ``C(gamma)``; the VQE
problem transforms by anticonjugation, ``H -> H(gamma) = C†(gamma) H C(gamma)``
(Eq. 5/6), with conjugation signs absorbed into the coefficients so the
transformed problem is again a plain weighted Pauli sum -- directly
implementable in the VQE framework, as the paper emphasizes.
"""

from __future__ import annotations

import numpy as np

from ..circuits.ansatz import clapton_transformation_circuit
from ..circuits.circuit import Circuit
from ..paulis.packed_table import PackedPauliTable
from ..paulis.pauli_sum import PauliSum
from ..paulis.table import PauliTable
from ..stabilizer.tableau import CliffordTableau


def transformation_tableau(gamma, num_qubits: int,
                           entanglement: str = "circular") -> CliffordTableau:
    """Tableau of ``C†(gamma)`` (the anticonjugation direction)."""
    circuit = clapton_transformation_circuit(gamma, num_qubits, entanglement)
    return CliffordTableau.from_circuit(circuit.inverse())


def transform_table(hamiltonian: PauliSum, gamma,
                    entanglement: str = "circular", packed: bool = True):
    """Anticonjugated term table (rows carry +-1 signs; hot-loop form).

    Applies the inverse transformation circuit gate by gate through the
    LUT-based batch conjugation -- the fastest path for the GA inner loop.
    ``packed=True`` (the default) runs the gate loop on the word-packed
    layout and returns a :class:`PackedPauliTable`; ``packed=False`` keeps
    the boolean-matrix oracle.  Both yield bit-identical term tables.
    """
    from ..noise.clifford_model import _inverse_gate_tableau
    from ..stabilizer.tableau import apply_gate_to_table

    circuit = clapton_transformation_circuit(gamma, hamiltonian.num_qubits,
                                             entanglement)
    table = (PackedPauliTable.from_table(hamiltonian.table) if packed
             else hamiltonian.table.copy())
    # C† P C: pull P through the inverse circuit's gates front to back
    for inst in reversed(circuit.instructions):
        apply_gate_to_table(table, _inverse_gate_tableau(inst), inst.qubits)
    return table


def transform_table_many(hamiltonian: PauliSum, gammas,
                         entanglement: str = "circular",
                         packed: bool = True):
    """Anticonjugated term tables of a whole genome population, stacked.

    The population-batched counterpart of :func:`transform_table`: one
    Hamiltonian table copy per genome is stacked into a ``(P*M, n)`` table
    (genome ``p`` owns rows ``[p*M, (p+1)*M)``) and every transformation
    slot is applied through per-genome row masks -- four masked LUT
    conjugations per slot instead of ``P`` per-genome gate loops.  Each
    genome's rows see exactly the gate sequence and arithmetic of the
    serial path, so the stacked rows are bit-identical to ``P`` separate
    :func:`transform_table` calls.  ``packed=True`` stacks uint64 words
    instead of boolean matrices -- same bits, 8x less memory traffic.
    """
    import math

    from ..circuits.ansatz import transformation_slots
    from ..stabilizer.tableau import apply_gate_to_table, gate_tableau

    gammas = np.asarray(gammas, dtype=np.int64)
    if gammas.ndim != 2:
        raise ValueError("gammas must be a (P, d) integer matrix")
    slots = transformation_slots(hamiltonian.num_qubits, entanglement)
    if gammas.shape[1] != len(slots):
        raise ValueError(f"gamma must have length {len(slots)}, "
                         f"got {gammas.shape[1]}")
    if np.any((gammas < 0) | (gammas > 3)):
        raise ValueError("gamma entries must be in {0, 1, 2, 3}")

    num_genomes = len(gammas)
    table = hamiltonian.table
    num_terms = table.num_rows
    if packed:
        import time as _time

        from ..obs import get_tracer
        from ..obs.kernel import KERNEL
        from ..stabilizer.tableau import apply_gate_levels_to_table

        tracer = get_tracer()
        before = KERNEL.snapshot() if tracer.enabled else None
        t0 = _time.perf_counter() if tracer.enabled else 0.0
        stacked = PackedPauliTable.from_table(table).tile(num_genomes)
        # packed fast path: the level choice becomes a LUT dimension, so
        # each slot is ONE unmasked pass over the stacked words instead
        # of three boolean-mask passes (identical per-row arithmetic;
        # level 0 resolves to the identity entry, exactly the gates the
        # serial decode never emits)
        for kind, qubits, gene in reversed(slots):
            if kind == "pair":
                entries = [None,
                           (gate_tableau("cx"), False),
                           (gate_tableau("cx"), True),
                           (gate_tableau("swap"), False)]
            else:
                entries = [None] + [
                    (gate_tableau(kind, (-float(level * (math.pi / 2)),)),
                     False)
                    for level in (1, 2, 3)]
            level_of_row = np.repeat(gammas[:, gene], num_terms)
            apply_gate_levels_to_table(stacked, entries, qubits,
                                       level_of_row)
        if before is not None:
            # one aggregated kernel event per transformation (per-slot
            # events would multiply span counts ~20x for no insight)
            delta = KERNEL.delta(before)
            tracer.event("kernel.fused_levels",
                         _time.perf_counter() - t0,
                         words=delta["words"], rows=delta["rows"],
                         passes=delta["fused_passes"])
        return stacked
    genome_of_row = np.repeat(np.arange(num_genomes), num_terms)
    stacked = table.tile(num_genomes)
    # C† P C: pull P through the inverse circuit's gates front to back;
    # level 0 is the identity slot and conjugates nothing (exactly the
    # gates the serial decode never emits).
    for kind, qubits, gene in reversed(slots):
        levels = gammas[:, gene]
        for level in (1, 2, 3):
            members = levels == level
            if not members.any():
                continue
            rows = members[genome_of_row]
            if kind == "pair":
                k, l = qubits
                if level == 1:
                    gate, targets = gate_tableau("cx"), (k, l)
                elif level == 2:
                    gate, targets = gate_tableau("cx"), (l, k)
                else:
                    gate, targets = gate_tableau("swap"), (k, l)
            else:
                gate = gate_tableau(kind, (-float(level * (math.pi / 2)),))
                targets = qubits
            apply_gate_to_table(stacked, gate, targets, rows=rows)
    return stacked


def transform_hamiltonian(hamiltonian: PauliSum, gamma,
                          entanglement: str = "circular") -> PauliSum:
    """The transformed problem ``H(gamma)`` as a canonical PauliSum."""
    table = transform_table(hamiltonian, gamma, entanglement)
    if isinstance(table, PackedPauliTable):
        table = table.to_table()
    return PauliSum(table, hamiltonian.coefficients.copy())


def untransform_state_circuit(gamma, num_qubits: int, vqe_circuit: Circuit,
                              entanglement: str = "circular") -> Circuit:
    """Circuit preparing the *original*-problem state from a post-Clapton one.

    Running VQE on ``H(gamma)`` produces ``|psi_hat> = A(theta)|0>``; the
    equivalent state for the original ``H`` is ``C(gamma)|psi_hat>``
    (Sec. 3.2), so the returned circuit is ``A(theta)`` followed by
    ``C(gamma)`` -- cheap to realize in experiment because ``C`` uses only
    1- and 2-qubit Clifford gates.
    """
    transform = clapton_transformation_circuit(gamma, num_qubits, entanglement)
    return vqe_circuit.compose(transform)


def embed_table(table, positions: list[int], num_qubits: int):
    """Scatter table columns onto a wider register (logical -> physical).

    Accepts either representation and returns the same kind.  The trivial
    embedding (identity layout at equal width) is a plain copy -- the
    common case for untranspiled problems, and free of any bit shuffling
    on the packed layout.
    """
    if (num_qubits == table.num_qubits
            and list(positions) == list(range(num_qubits))):
        return table.copy()
    if isinstance(table, PackedPauliTable):
        from ..paulis import bitops

        m = table.num_rows
        bx = bitops.unpack_bits(table.x, table.num_qubits)
        bz = bitops.unpack_bits(table.z, table.num_qubits)
        x = np.zeros((m, num_qubits), dtype=bool)
        z = np.zeros((m, num_qubits), dtype=bool)
        for logical, target in enumerate(positions):
            x[:, target] = bx[:, logical]
            z[:, target] = bz[:, logical]
        return PackedPauliTable(bitops.pack_bits(x, num_qubits),
                                bitops.pack_bits(z, num_qubits),
                                num_qubits, table.phase_exp.copy())
    m = table.num_rows
    x = np.zeros((m, num_qubits), dtype=bool)
    z = np.zeros((m, num_qubits), dtype=bool)
    for logical, target in enumerate(positions):
        x[:, target] = table.x[:, logical]
        z[:, target] = table.z[:, logical]
    return PauliTable(x, z, table.phase_exp.copy())
